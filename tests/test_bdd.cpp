#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "bdd/bdd.hpp"
#include "core/cutwidth.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "util/rng.hpp"

namespace cwatpg::bdd {
namespace {

TEST(Bdd, Terminals) {
  Manager m(2);
  EXPECT_EQ(m.ite(kTrue, kTrue, kFalse), kTrue);
  EXPECT_EQ(m.negate(kTrue), kFalse);
  EXPECT_EQ(m.negate(kFalse), kTrue);
}

TEST(Bdd, VarAndEval) {
  Manager m(3);
  const Ref x1 = m.var(1);
  const bool a0[] = {false, true, false};
  const bool a1[] = {true, false, true};
  EXPECT_TRUE(m.eval(x1, a0));
  EXPECT_FALSE(m.eval(x1, a1));
}

TEST(Bdd, VarOutOfRangeThrows) {
  Manager m(2);
  EXPECT_THROW(m.var(5), std::invalid_argument);
}

TEST(Bdd, HashConsingSharesNodes) {
  Manager m(2);
  const Ref a = m.apply_and(m.var(0), m.var(1));
  const Ref b = m.apply_and(m.var(0), m.var(1));
  EXPECT_EQ(a, b);
}

TEST(Bdd, BooleanAlgebraTruthTables) {
  Manager m(2);
  const Ref x = m.var(0);
  const Ref y = m.var(1);
  const Ref ops[] = {m.apply_and(x, y), m.apply_or(x, y), m.apply_xor(x, y)};
  for (int v = 0; v < 4; ++v) {
    const bool a[] = {(v & 1) != 0, (v & 2) != 0};
    EXPECT_EQ(m.eval(ops[0], a), a[0] && a[1]);
    EXPECT_EQ(m.eval(ops[1], a), a[0] || a[1]);
    EXPECT_EQ(m.eval(ops[2], a), a[0] != a[1]);
  }
}

TEST(Bdd, IteIsIfThenElse) {
  Manager m(3);
  const Ref f = m.ite(m.var(0), m.var(1), m.var(2));
  for (int v = 0; v < 8; ++v) {
    const bool a[] = {(v & 1) != 0, (v & 2) != 0, (v & 4) != 0};
    EXPECT_EQ(m.eval(f, a), a[0] ? a[1] : a[2]);
  }
}

TEST(Bdd, SizeCountsDistinctNodes) {
  Manager m(2);
  EXPECT_EQ(m.size(kTrue), 1u);
  EXPECT_EQ(m.size(m.var(0)), 3u);  // node + 2 terminals
  const Ref xor2 = m.apply_xor(m.var(0), m.var(1));
  EXPECT_EQ(m.size(xor2), 5u);  // 3 decision nodes + 2 terminals
}

TEST(Bdd, SatCount) {
  Manager m(3);
  EXPECT_DOUBLE_EQ(m.sat_count(kTrue), 8.0);
  EXPECT_DOUBLE_EQ(m.sat_count(kFalse), 0.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.var(1)), 4.0);
  const Ref f = m.apply_and(m.var(0), m.var(2));
  EXPECT_DOUBLE_EQ(m.sat_count(f), 2.0);
  const Ref g = m.apply_xor(m.var(0), m.var(1));
  EXPECT_DOUBLE_EQ(m.sat_count(g), 4.0);
}

TEST(Bdd, NodeLimitThrows) {
  Manager m(24, 40);
  Ref acc = kFalse;
  EXPECT_THROW(
      {
        for (std::uint32_t v = 0; v + 1 < 24; v += 2)
          acc = m.apply_or(acc, m.apply_and(m.var(v), m.var(v + 1)));
      },
      Manager::NodeLimitExceeded);
}

TEST(Bdd, CircuitBddMatchesSimulation) {
  for (const net::Network& n :
       {gen::c17(), gen::fig4a_network(),
        net::decompose(gen::ripple_carry_adder(4)),
        net::decompose(gen::comparator(3))}) {
    Manager m(static_cast<std::uint32_t>(n.inputs().size()));
    const auto outs = build_output_bdds(m, n);
    ASSERT_EQ(outs.size(), n.outputs().size());
    Rng rng(3);
    const std::size_t trials =
        n.inputs().size() <= 10 ? (1u << n.inputs().size()) : 128;
    for (std::size_t t = 0; t < trials; ++t) {
      std::vector<bool> pattern(n.inputs().size());
      for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = n.inputs().size() <= 10 ? ((t >> i) & 1)
                                             : rng.chance(0.5);
      const auto values = n.eval(pattern);
      std::vector<bool> unpacked(pattern.begin(), pattern.end());
      std::unique_ptr<bool[]> buf(new bool[pattern.size()]);
      for (std::size_t i = 0; i < pattern.size(); ++i) buf[i] = pattern[i];
      for (std::size_t o = 0; o < outs.size(); ++o)
        ASSERT_EQ(m.eval(outs[o],
                         std::span<const bool>(buf.get(), pattern.size())),
                  values[n.outputs()[o]])
            << n.name() << " output " << o;
    }
  }
}

TEST(Bdd, CustomInputOrderStillCorrect) {
  const net::Network n = net::decompose(gen::parity_tree(6));
  const std::size_t pis = n.inputs().size();
  std::vector<std::uint32_t> reversed(pis);
  for (std::size_t i = 0; i < pis; ++i)
    reversed[i] = static_cast<std::uint32_t>(pis - 1 - i);
  Manager m(static_cast<std::uint32_t>(pis));
  const auto outs = build_output_bdds(m, n, reversed);
  for (int t = 0; t < (1 << 6); ++t) {
    std::unique_ptr<bool[]> buf(new bool[pis]);
    std::vector<bool> pattern(pis);
    for (std::size_t i = 0; i < pis; ++i) pattern[i] = (t >> i) & 1;
    // BDD level of input i is reversed[i].
    for (std::size_t i = 0; i < pis; ++i) buf[reversed[i]] = pattern[i];
    const auto values = n.eval(pattern);
    ASSERT_EQ(m.eval(outs[0], std::span<const bool>(buf.get(), pis)),
              values[n.outputs()[0]]);
  }
}

TEST(Bdd, OrderSensitivity) {
  // The classic 2-level function x0 x1 + x2 x3 + x4 x5: interleaved order
  // is linear, separated order (all "left" vars first) is exponential.
  const std::uint32_t pairs = 6;
  Manager good(2 * pairs);
  Manager bad(2 * pairs);
  Ref g = kFalse, b = kFalse;
  for (std::uint32_t i = 0; i < pairs; ++i) {
    g = good.apply_or(g, good.apply_and(good.var(2 * i), good.var(2 * i + 1)));
    b = bad.apply_or(b, bad.apply_and(bad.var(i), bad.var(i + pairs)));
  }
  EXPECT_LT(good.size(g) * 4, bad.size(b));
}

TEST(Bdd, ParityIsLinearInAnyOrder) {
  const net::Network n = net::decompose(gen::parity_tree(12));
  Manager m(12);
  const auto outs = build_output_bdds(m, n);
  EXPECT_LE(m.size(outs[0]), 2u * 12u + 2u);
}

// ------------------------------------------------------- directed widths

TEST(DirectedWidths, TopologicalOrderHasNoReverse) {
  const net::Network n = net::decompose(gen::comparator(4));
  const auto order = core::identity_ordering(n.node_count());
  const DirectedWidths w = directed_widths(n, order);
  EXPECT_EQ(w.reverse, 0u);
  EXPECT_GT(w.forward, 0u);
}

TEST(DirectedWidths, ReversedOrderSwapsRoles) {
  const net::Network n = gen::c17();
  auto order = core::identity_ordering(n.node_count());
  const DirectedWidths fwd = directed_widths(n, order);
  std::reverse(order.begin(), order.end());
  const DirectedWidths rev = directed_widths(n, order);
  EXPECT_EQ(fwd.forward, rev.reverse);
  EXPECT_EQ(fwd.reverse, rev.forward);
}

TEST(DirectedWidths, SumBoundsUndirectedCut) {
  // Every undirected crossing is either forward or reverse, but a signal
  // hyperedge may be split into several driver->sink edges: per gap,
  // undirected hyperedge cut <= fwd + rev edge cut.
  const net::Network n = net::decompose(gen::ripple_carry_adder(4));
  Rng rng(5);
  core::Ordering order = core::identity_ordering(n.node_count());
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.below(i)]);
  const DirectedWidths w = directed_widths(n, order);
  const std::uint32_t undirected = core::cut_width(n, order);
  EXPECT_LE(undirected, w.forward + w.reverse);
}

TEST(DirectedWidths, RejectsBadOrder) {
  const net::Network n = gen::c17();
  EXPECT_THROW(directed_widths(n, std::vector<net::NodeId>{0, 1}),
               std::invalid_argument);
}

TEST(DirectedWidths, McMillanBoundShape) {
  DirectedWidths w;
  w.forward = 3;
  w.reverse = 0;
  EXPECT_DOUBLE_EQ(mcmillan_log2_bound(16, w), 4.0 + 3.0);
  w.reverse = 2;
  EXPECT_DOUBLE_EQ(mcmillan_log2_bound(16, w), 4.0 + 3.0 * 4.0);
}

TEST(DirectedWidths, McMillanBoundHoldsOnSmallCircuits) {
  // Under a topological arrangement (w_r = 0) the BDD built with the
  // corresponding PI order must respect n * 2^(w_f).
  for (const net::Network& n :
       {gen::c17(), net::decompose(gen::ripple_carry_adder(3))}) {
    const auto order = core::identity_ordering(n.node_count());
    const DirectedWidths w = directed_widths(n, order);
    Manager m(static_cast<std::uint32_t>(n.inputs().size()));
    const auto outs = build_output_bdds(m, n);
    for (Ref r : outs) {
      const double log2_size =
          std::log2(static_cast<double>(m.size(r)));
      EXPECT_LE(log2_size, mcmillan_log2_bound(n.inputs().size(), w) + 1.0);
    }
  }
}

}  // namespace
}  // namespace cwatpg::bdd
