#include <gtest/gtest.h>

#include "core/mla.hpp"
#include "core/refine.hpp"
#include "gen/hutton.hpp"
#include "gen/structured.hpp"
#include "netlist/decompose.hpp"
#include "util/rng.hpp"

namespace cwatpg::core {
namespace {

net::Hypergraph path_graph(std::size_t n) {
  net::Hypergraph hg;
  hg.num_vertices = n;
  for (net::NodeId v = 0; v + 1 < n; ++v) hg.edges.push_back({v, v + 1});
  return hg;
}

TEST(Refine, NeverWorsens) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    net::Hypergraph hg;
    hg.num_vertices = 20;
    for (int e = 0; e < 35; ++e) {
      const auto u = static_cast<net::NodeId>(rng.below(20));
      const auto v = static_cast<net::NodeId>(rng.below(20));
      if (u != v) hg.edges.push_back({std::min(u, v), std::max(u, v)});
    }
    Ordering order = identity_ordering(20);
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);
    const RefineResult r = refine_ordering(hg, order);
    EXPECT_LE(r.width_after, r.width_before);
    EXPECT_EQ(r.width_after, cut_width(hg, r.order));
    EXPECT_NO_THROW(positions_of(r.order, 20));
  }
}

TEST(Refine, FixesLocalBlemishOnPath) {
  // Path 0-1-2-3-4 with 1 and 2 swapped: width 2; one adjacent swap
  // restores the optimal width 1.
  const net::Hypergraph hg = path_graph(5);
  const Ordering blemished = {0, 2, 1, 3, 4};
  EXPECT_EQ(cut_width(hg, blemished), 3u);
  const RefineResult r = refine_ordering(hg, blemished);
  EXPECT_EQ(r.width_after, 1u);
  EXPECT_GT(r.swaps_accepted, 0u);
}

TEST(Refine, OptimalOrderUntouched) {
  const net::Hypergraph hg = path_graph(8);
  const RefineResult r = refine_ordering(hg, identity_ordering(8));
  EXPECT_EQ(r.swaps_accepted, 0u);
  EXPECT_EQ(r.width_after, 1u);
}

TEST(Refine, TrivialGraphs) {
  net::Hypergraph empty;
  const RefineResult r0 = refine_ordering(empty, {});
  EXPECT_TRUE(r0.order.empty());

  net::Hypergraph one;
  one.num_vertices = 1;
  const RefineResult r1 = refine_ordering(one, {0});
  EXPECT_EQ(r1.order.size(), 1u);
}

TEST(Refine, ZeroPassesIsIdentity) {
  const net::Hypergraph hg = path_graph(6);
  const Ordering scrambled = {5, 0, 3, 1, 4, 2};
  RefineConfig cfg;
  cfg.max_passes = 0;
  const RefineResult r = refine_ordering(hg, scrambled, cfg);
  EXPECT_EQ(r.order, scrambled);
  EXPECT_EQ(r.width_after, r.width_before);
}

TEST(Refine, ImprovesMlaOnRealCircuits) {
  // Statistically, refinement tightens raw (unrefined) MLA widths on
  // circuit hypergraphs; verify monotonicity and at least one improvement
  // across a family.
  std::size_t improved = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    gen::HuttonParams p;
    p.num_gates = 120;
    p.num_inputs = 12;
    p.num_outputs = 6;
    p.seed = seed;
    const net::Network n = net::decompose(gen::hutton_random(p));
    MlaConfig raw;
    raw.refine_passes = 0;
    const MlaResult unrefined = mla(n, raw);
    const RefineResult r =
        refine_ordering(net::to_hypergraph(n), unrefined.order);
    EXPECT_LE(r.width_after, unrefined.width);
    if (r.width_after < unrefined.width) ++improved;
  }
  EXPECT_GT(improved, 0u);
}

TEST(Refine, MlaDefaultIncludesRefinement) {
  const net::Network n = net::decompose(gen::comparator(6));
  MlaConfig with;  // default refine_passes = 4
  MlaConfig without;
  without.refine_passes = 0;
  EXPECT_LE(mla(n, with).width, mla(n, without).width);
}

}  // namespace
}  // namespace cwatpg::core
