#include <gtest/gtest.h>

#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/hypergraph.hpp"
#include "netlist/simulate.hpp"
#include "util/rng.hpp"

namespace cwatpg::net {
namespace {

TEST(Simulate, MatchesSinglePatternEval) {
  const Network n = gen::simple_alu(3);
  Rng rng(1);
  for (int t = 0; t < 20; ++t) {
    std::vector<bool> pattern(n.inputs().size());
    for (auto&& b : pattern) b = rng.chance(0.5);
    const auto scalar = n.eval(pattern);
    const auto words = to_words(pattern);
    const SimFrame frame = simulate64(n, words);
    for (NodeId id = 0; id < n.node_count(); ++id)
      ASSERT_EQ((frame[id] & 1) != 0, scalar[id]) << "node " << id;
  }
}

TEST(Simulate, SixtyFourLanesIndependent) {
  const Network n = gen::ripple_carry_adder(3);
  Rng rng(2);
  const auto words = random_pi_words(n, rng);
  const SimFrame frame = simulate64(n, words);
  // Each lane must equal a scalar simulation of that lane's pattern.
  for (int lane = 0; lane < 64; lane += 7) {
    std::vector<bool> pattern(n.inputs().size());
    for (std::size_t i = 0; i < pattern.size(); ++i)
      pattern[i] = (words[i] >> lane) & 1;
    const auto scalar = n.eval(pattern);
    for (NodeId po : n.outputs())
      ASSERT_EQ((frame[po] >> lane) & 1, scalar[po] ? 1u : 0u);
  }
}

TEST(Simulate, AdderAddsIntegers) {
  const std::size_t bits = 6;
  const Network n = gen::ripple_carry_adder(bits);
  Rng rng(3);
  for (int t = 0; t < 200; ++t) {
    const std::uint64_t a = rng.below(1ULL << bits);
    const std::uint64_t b = rng.below(1ULL << bits);
    const std::uint64_t cin = rng.below(2);
    std::vector<bool> pattern;
    for (std::size_t i = 0; i < bits; ++i) pattern.push_back((a >> i) & 1);
    for (std::size_t i = 0; i < bits; ++i) pattern.push_back((b >> i) & 1);
    pattern.push_back(cin != 0);
    const auto values = n.eval(pattern);
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i <= bits; ++i)
      if (values[n.outputs()[i]]) sum |= 1ULL << i;
    EXPECT_EQ(sum, a + b + cin);
  }
}

TEST(Simulate, MultiplierMultiplies) {
  const std::size_t bits = 4;
  const Network n = gen::array_multiplier(bits);
  for (std::uint64_t a = 0; a < (1u << bits); ++a) {
    for (std::uint64_t b = 0; b < (1u << bits); ++b) {
      std::vector<bool> pattern;
      for (std::size_t i = 0; i < bits; ++i) pattern.push_back((a >> i) & 1);
      for (std::size_t i = 0; i < bits; ++i) pattern.push_back((b >> i) & 1);
      const auto values = n.eval(pattern);
      std::uint64_t prod = 0;
      for (std::size_t i = 0; i < 2 * bits; ++i)
        if (values[n.outputs()[i]]) prod |= 1ULL << i;
      ASSERT_EQ(prod, a * b) << a << " * " << b;
    }
  }
}

TEST(Simulate, StuckFaultForcesNode) {
  const Network n = gen::c17();
  Rng rng(4);
  const auto words = random_pi_words(n, rng);
  const NodeId g11 = *n.find("11");
  const SimFrame f0 = simulate64_fault(n, words, g11, false);
  const SimFrame f1 = simulate64_fault(n, words, g11, true);
  EXPECT_EQ(f0[g11], 0ULL);
  EXPECT_EQ(f1[g11], ~0ULL);
}

TEST(Simulate, FaultDownstreamOnly) {
  const Network n = gen::c17();
  Rng rng(5);
  const auto words = random_pi_words(n, rng);
  const SimFrame good = simulate64(n, words);
  const NodeId g11 = *n.find("11");
  const SimFrame faulty = simulate64_fault(n, words, g11, true);
  // Upstream and disjoint nodes unchanged.
  EXPECT_EQ(faulty[*n.find("10")], good[*n.find("10")]);
  EXPECT_EQ(faulty[*n.find("1")], good[*n.find("1")]);
}

TEST(Simulate, FaultOnPi) {
  const Network n = gen::c17();
  std::vector<std::uint64_t> words(5, 0);
  const NodeId pi = n.inputs()[0];
  const SimFrame f = simulate64_fault(n, words, pi, true);
  EXPECT_EQ(f[pi], ~0ULL);
}

TEST(Simulate, WrongWidthThrows) {
  const Network n = gen::c17();
  std::vector<std::uint64_t> words(2, 0);
  EXPECT_THROW(simulate64(n, words), std::invalid_argument);
  EXPECT_THROW(simulate64_fault(n, words, 0, false), std::invalid_argument);
}

TEST(Simulate, BadFaultSiteThrows) {
  const Network n = gen::c17();
  std::vector<std::uint64_t> words(5, 0);
  EXPECT_THROW(simulate64_fault(n, words, 999, false),
               std::invalid_argument);
}

TEST(Simulate, ToWordsSetsBitZero) {
  const bool pattern[] = {true, false, true};
  const auto words = to_words(pattern);
  EXPECT_EQ(words[0], 1ULL);
  EXPECT_EQ(words[1], 0ULL);
  EXPECT_EQ(words[2], 1ULL);
}

// ------------------------------------------------------------- hypergraph

TEST(Hypergraph, C17Shape) {
  const Network n = gen::c17();
  const Hypergraph hg = to_hypergraph(n);
  EXPECT_EQ(hg.num_vertices, n.node_count());
  // Every driven signal with sinks: 5 PIs + 6 gates = 11 nets, but each
  // PO-marker net counts through its gate driver; gates 22/23 drive
  // markers. All 5 PIs drive gates; all 6 gates drive something => 11.
  EXPECT_EQ(hg.num_edges(), 11u);
  EXPECT_NO_THROW(hg.validate());
}

TEST(Hypergraph, EdgeContainsDriverAndSinks) {
  const Network n = gen::c17();
  const Hypergraph hg = to_hypergraph(n);
  const NodeId g11 = *n.find("11");
  bool found = false;
  for (const auto& e : hg.edges) {
    if (e.front() == g11) {
      found = true;
      EXPECT_EQ(e.size(), 3u);  // driver + two sinks (16, 19)
    }
  }
  EXPECT_TRUE(found);
}

TEST(Hypergraph, DuplicatePinsCollapse) {
  Network n;
  const NodeId a = n.add_input("a");
  const NodeId g = n.add_gate(GateType::kAnd, {a, a});  // same signal twice
  n.add_output(g, "o");
  const Hypergraph hg = to_hypergraph(n);
  EXPECT_NO_THROW(hg.validate());
  EXPECT_EQ(hg.edges[0].size(), 2u);  // {a, g} despite two pins
}

TEST(Hypergraph, PinCount) {
  Hypergraph hg;
  hg.num_vertices = 4;
  hg.edges = {{0, 1}, {1, 2, 3}};
  EXPECT_EQ(hg.num_pins(), 5u);
}

TEST(Hypergraph, ValidateCatchesBadEdges) {
  Hypergraph hg;
  hg.num_vertices = 2;
  hg.edges = {{0, 5}};
  EXPECT_THROW(hg.validate(), std::logic_error);
  hg.edges = {{0, 0}};
  EXPECT_THROW(hg.validate(), std::logic_error);
  hg.edges = {{}};
  EXPECT_THROW(hg.validate(), std::logic_error);
}

}  // namespace
}  // namespace cwatpg::net
