// Fault-parallel engine: thread-pool behaviour and the headline guarantee
// that run_atpg_parallel is byte-identical to run_atpg at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "fault/parallel_atpg.hpp"
#include "fault/tegus.hpp"
#include "gen/structured.hpp"
#include "gen/suites.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace cwatpg::fault {
namespace {

// ---------------------------------------------------------------- pool --

TEST(ThreadPool, RunsTenThousandNoOpTasks) {
  ThreadPool pool(4);
  std::atomic<std::size_t> counter{0};
  for (std::size_t i = 0; i < 10000; ++i)
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 10000u);
}

TEST(ThreadPool, WaitIdleCoversTasksSpawnedByTasks) {
  ThreadPool pool(3);
  std::atomic<std::size_t> counter{0};
  for (std::size_t i = 0; i < 64; ++i) {
    pool.submit([&pool, &counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
      pool.submit(
          [&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 128u);
}

TEST(ThreadPool, WorkerIndexIsInRangeInsideAndSentinelOutside) {
  EXPECT_EQ(ThreadPool::worker_index(), ThreadPool::kNotAWorker);
  ThreadPool pool(2);
  std::atomic<bool> in_range{true};
  for (std::size_t i = 0; i < 100; ++i) {
    pool.submit([&pool, &in_range] {
      if (ThreadPool::worker_index() >= pool.size()) in_range = false;
    });
  }
  pool.wait_idle();
  EXPECT_TRUE(in_range.load());
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), 7, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 100, 3,
                        [](std::size_t lo, std::size_t) {
                          if (lo >= 50) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  pool.wait_idle();  // pool must stay usable after a throwing body
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran = 1; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, SubmitTaskExceptionRethrownAtWaitIdle) {
  ThreadPool pool(2);
  std::atomic<std::size_t> ran{0};
  for (std::size_t i = 0; i < 16; ++i) {
    pool.submit([&ran, i] {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i == 7) throw std::runtime_error("task boom");
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 16u);  // one throwing task never stalls the drain
  // The error is consumed: the pool stays usable and a second wait_idle
  // does not rethrow.
  std::atomic<int> after{0};
  pool.submit([&after] { after = 1; });
  pool.wait_idle();
  EXPECT_EQ(after.load(), 1);
}

TEST(ThreadPool, OnlyFirstSubmitExceptionIsKept) {
  ThreadPool pool(2);
  for (std::size_t i = 0; i < 8; ++i)
    pool.submit([] { throw std::runtime_error("each task throws"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  pool.wait_idle();  // later captures were dropped, nothing left to throw
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<std::size_t> counter{0};
  {
    ThreadPool pool(2);
    for (std::size_t i = 0; i < 500; ++i)
      pool.submit(
          [&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    // no wait_idle: the destructor must drain, not drop
  }
  EXPECT_EQ(counter.load(), 500u);
}

TEST(SplitSeed, StreamsAreDistinctAndDeterministic) {
  EXPECT_EQ(split_seed(42, 3), split_seed(42, 3));
  EXPECT_NE(split_seed(42, 0), split_seed(42, 1));
  EXPECT_NE(split_seed(42, 0), split_seed(43, 0));
}

// ------------------------------------------------- serial == parallel --

void expect_byte_identical(const AtpgResult& serial,
                           const AtpgResult& parallel) {
  ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
  for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
    const FaultOutcome& s = serial.outcomes[i];
    const FaultOutcome& p = parallel.outcomes[i];
    EXPECT_EQ(s.fault, p.fault) << "fault " << i;
    EXPECT_EQ(s.status, p.status) << "fault " << i;
    EXPECT_EQ(s.engine, p.engine) << "fault " << i;
    EXPECT_EQ(s.attempts, p.attempts) << "fault " << i;
    EXPECT_EQ(s.test_index, p.test_index) << "fault " << i;
    EXPECT_EQ(s.sat_vars, p.sat_vars) << "fault " << i;
    EXPECT_EQ(s.sat_clauses, p.sat_clauses) << "fault " << i;
    EXPECT_EQ(s.solver_stats.conflicts, p.solver_stats.conflicts)
        << "fault " << i;
    EXPECT_EQ(s.solver_stats.decisions, p.solver_stats.decisions)
        << "fault " << i;
    EXPECT_EQ(s.solver_stats.stop_reason, p.solver_stats.stop_reason)
        << "fault " << i;
  }
  ASSERT_EQ(serial.tests.size(), parallel.tests.size());
  for (std::size_t t = 0; t < serial.tests.size(); ++t)
    EXPECT_EQ(serial.tests[t], parallel.tests[t]) << "test " << t;
  EXPECT_EQ(serial.num_detected, parallel.num_detected);
  EXPECT_EQ(serial.num_untestable, parallel.num_untestable);
  EXPECT_EQ(serial.num_aborted, parallel.num_aborted);
  EXPECT_EQ(serial.num_unreachable, parallel.num_unreachable);
  EXPECT_EQ(serial.num_undetermined, parallel.num_undetermined);
  EXPECT_EQ(serial.num_escalated, parallel.num_escalated);
  EXPECT_EQ(serial.interrupted, parallel.interrupted);
}

void check_serial_vs_parallel(const net::Network& n) {
  const AtpgResult serial = run_atpg(n);
  const std::vector<StuckAtFault> faults = collapsed_fault_list(n);
  for (std::size_t threads : {2u, 4u}) {
    ParallelAtpgOptions opts;
    opts.num_threads = threads;
    ParallelStats stats;
    const AtpgResult parallel = run_atpg_parallel(n, opts, &stats);
    SCOPED_TRACE(n.name() + " @ " + std::to_string(threads) + " threads");
    expect_byte_identical(serial, parallel);
    // The ISSUE-level contract: identical classification counts and
    // identical fault coverage of the emitted test set.
    EXPECT_DOUBLE_EQ(coverage(n, faults, serial.tests),
                     coverage(n, faults, parallel.tests));
    // Telemetry bookkeeping: every dispatched solve is either committed
    // into the result or discarded as speculative waste, and per-worker
    // counts sum to the dispatch total.
    EXPECT_EQ(stats.dispatched, stats.committed + stats.wasted);
    ASSERT_EQ(stats.workers.size(), threads);
    std::size_t solved = 0;
    for (const WorkerStats& w : stats.workers) solved += w.solved;
    EXPECT_EQ(solved, stats.dispatched);
  }
}

TEST(ParallelAtpg, ByteIdenticalOnC17) { check_serial_vs_parallel(gen::c17()); }

TEST(ParallelAtpg, ByteIdenticalOnIscasLikeMembers) {
  gen::SuiteOptions suite_opts;
  suite_opts.scale = 0.08;
  const std::vector<net::Network> suite = gen::iscas85_like_suite(suite_opts);
  ASSERT_GE(suite.size(), 2u);
  check_serial_vs_parallel(suite.front());
  check_serial_vs_parallel(suite[1]);
}

TEST(ParallelAtpg, DeterministicAcrossRepeatedRunsSameThreadCount) {
  const net::Network n = gen::c17();
  ParallelAtpgOptions opts;
  opts.num_threads = 3;
  const AtpgResult a = run_atpg_parallel(n, opts);
  const AtpgResult b = run_atpg_parallel(n, opts);
  expect_byte_identical(a, b);
}

TEST(ParallelAtpg, NoRandomPhaseNoDroppingIsEmbarrassinglyParallel) {
  // The Figure-1 configuration: one SAT instance per fault, no coupling.
  const net::Network n = gen::c17();
  AtpgOptions base;
  base.random_blocks = 0;
  base.drop_by_simulation = false;
  ParallelAtpgOptions opts;
  opts.base = base;
  opts.num_threads = 4;
  ParallelStats stats;
  const AtpgResult parallel = run_atpg_parallel(n, opts, &stats);
  expect_byte_identical(run_atpg(n, base), parallel);
  EXPECT_EQ(stats.wasted, 0u);  // nothing drops, so nothing is discarded
}

TEST(ParallelAtpg, SingleThreadPoolMatchesSerial) {
  const net::Network n = gen::c17();
  ParallelAtpgOptions opts;
  opts.num_threads = 1;
  expect_byte_identical(run_atpg(n), run_atpg_parallel(n, opts));
}

TEST(ParallelAtpg, EscalationLadderStaysByteIdentical) {
  // The ladder runs on the pipeline thread in both engines; a tiny conflict
  // cap forces it to fire, and the retried/PODEM-rescued classifications —
  // including engine and attempt attribution — must still match serial
  // bit for bit at any thread count.
  const net::Network n = net::decompose(gen::array_multiplier(4));
  AtpgOptions base;
  base.random_blocks = 0;
  base.solver.max_conflicts = 1;
  const AtpgResult serial = run_atpg(n, base);
  EXPECT_GE(serial.num_escalated, 1u);
  for (std::size_t threads : {2u, 4u}) {
    ParallelAtpgOptions opts;
    opts.base = base;
    opts.num_threads = threads;
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_byte_identical(serial, run_atpg_parallel(n, opts));
  }
}

TEST(ParallelAtpg, HasTestAccessorAgreesWithStatus) {
  const net::Network n = gen::c17();
  const AtpgResult r = run_atpg_parallel(n);
  for (const FaultOutcome& o : r.outcomes) {
    if (o.status == FaultStatus::kDetected ||
        o.status == FaultStatus::kDroppedBySim) {
      ASSERT_TRUE(o.has_test());
      EXPECT_LT(o.test(), r.tests.size());
      EXPECT_TRUE(detects(n, o.fault, r.tests[o.test()]))
          << to_string(n, o.fault);
    } else {
      EXPECT_FALSE(o.has_test());
    }
  }
}

}  // namespace
}  // namespace cwatpg::fault
