// End-to-end integration tests: the full pipelines the benches exercise,
// at test-friendly scale.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "core/mla.hpp"
#include "fault/tegus.hpp"
#include "gen/structured.hpp"
#include "gen/suites.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "sat/cache_sat.hpp"
#include "sat/encode.hpp"
#include "util/curvefit.hpp"

namespace cwatpg {
namespace {

TEST(Integration, AtpgOverMiniSuite) {
  // The Figure 1 pipeline end to end: suite -> ATPG -> per-instance stats.
  gen::SuiteOptions opts;
  opts.scale = 0.1;
  std::size_t instances = 0;
  for (const net::Network& n : gen::iscas85_like_suite(opts)) {
    fault::AtpgOptions atpg;
    atpg.random_blocks = 1;
    const fault::AtpgResult r = fault::run_atpg(n, atpg);
    EXPECT_EQ(r.num_aborted, 0u) << n.name();
    EXPECT_GE(r.fault_efficiency(), 1.0) << n.name();
    for (const auto& o : r.outcomes)
      if (o.sat_vars > 0) ++instances;
  }
  EXPECT_GT(instances, 20u);
}

TEST(Integration, Figure8PipelinePerFaultWidths) {
  // Per-fault cone -> MLA width -> log fit: the Figure 8 pipeline.
  gen::SuiteOptions opts;
  opts.scale = 0.15;
  std::vector<double> sizes, widths;
  for (const net::Network& n : gen::mcnc_like_suite(opts)) {
    const auto faults = fault::collapsed_fault_list(n);
    for (std::size_t i = 0; i < faults.size(); i += 16) {
      try {
        const net::SubCircuit cone =
            net::fault_cone(n, fault::fault_cone_root(faults[i]));
        const core::MlaResult r = core::mla(cone.circuit);
        sizes.push_back(static_cast<double>(cone.circuit.node_count()));
        widths.push_back(static_cast<double>(r.width));
      } catch (const std::invalid_argument&) {
        // unobservable fault site — excluded, as in the paper
      }
    }
  }
  ASSERT_GT(sizes.size(), 50u);
  const auto fits = fit_all(sizes, widths);
  ASSERT_FALSE(fits.empty());
  // The winning fit must be sub-linear (log, or power/linear with gentle
  // growth — at this miniature scale absolute slopes are inflated).
  const Fit& best = fits.front();
  const bool sublinear =
      best.model == FitModel::kLogarithmic ||
      (best.model == FitModel::kPower && best.b < 1.0) ||
      (best.model == FitModel::kLinear && best.a < 0.12);
  EXPECT_TRUE(sublinear) << best.describe();
}

TEST(Integration, CacheSatWithMlaOrderOnAtpgInstances) {
  // Algorithm 1 + Lemma 4.2 transferred MLA ordering on real ATPG-SAT
  // miters: must agree with the CDCL solver.
  const net::Network n = net::decompose(gen::ripple_carry_adder(3));
  const core::MlaResult circuit_mla = core::mla(n);
  const auto faults = fault::collapsed_fault_list(n);
  std::size_t checked = 0;
  for (std::size_t i = 0; i < faults.size() && checked < 12; i += 3) {
    const fault::AtpgCircuit atpg = fault::build_atpg_circuit(n, faults[i]);
    const auto h_psi = fault::transfer_ordering(n, atpg, circuit_mla.order);
    const sat::Cnf f = sat::encode_circuit_sat(atpg.miter);
    const std::vector<sat::Var> order(h_psi.begin(), h_psi.end());
    const auto cached = sat::cache_sat(f, order);
    const auto cdcl = sat::solve_cnf(f);
    ASSERT_EQ(cached.status, cdcl.status)
        << fault::to_string(n, faults[i]);
    ++checked;
  }
  EXPECT_GE(checked, 8u);
}

TEST(Integration, Theorem41BoundHoldsOnAtpgMiters) {
  const net::Network n = gen::fig4a_network();
  const core::MlaResult circuit_mla = core::mla(n);
  for (const auto& f : fault::collapsed_fault_list(n)) {
    const fault::AtpgCircuit atpg = fault::build_atpg_circuit(n, f);
    const auto h_psi = fault::transfer_ordering(n, atpg, circuit_mla.order);
    const std::uint32_t w = core::cut_width(atpg.miter, h_psi);
    const sat::Cnf cnf = sat::encode_circuit_sat(atpg.miter);
    const std::vector<sat::Var> order(h_psi.begin(), h_psi.end());
    sat::CacheSatConfig cfg;
    cfg.early_sat = false;
    const auto r = sat::cache_sat(cnf, order, cfg);
    const double bound = core::theorem41_log2_bound(
        atpg.miter.node_count(), atpg.miter.max_fanout(), w);
    EXPECT_LE(std::log2(static_cast<double>(r.stats.nodes)), bound)
        << fault::to_string(n, f);
  }
}

TEST(Integration, TestSetFromAtpgAchievesCoverageOnRecheck) {
  // Generate tests, then *independently* fault-simulate the final test
  // set: coverage must match the engine's claim.
  const net::Network n = net::decompose(gen::simple_alu(3));
  const fault::AtpgResult r = fault::run_atpg(n);
  const auto faults = fault::collapsed_fault_list(n);
  const double recheck = fault::coverage(n, faults, r.tests);
  EXPECT_DOUBLE_EQ(recheck, r.fault_coverage());
}

TEST(Integration, WidthPredictsCacheSatTreeSize) {
  // The qualitative heart of the paper: a good (low-width) ordering gives
  // a smaller backtracking tree than a bad one on the same formula.
  const net::Network n = gen::and_or_tree(24, 2);
  const sat::Cnf f = sat::encode_circuit_sat(n);
  const core::Ordering good = core::tree_ordering(n);
  core::Ordering bad = core::identity_ordering(n.node_count());
  // Interleave ends to maximize spread (a deliberately terrible order).
  core::Ordering worst;
  std::size_t lo = 0, hi = bad.size();
  while (lo < hi) {
    worst.push_back(bad[lo++]);
    if (lo < hi) worst.push_back(bad[--hi]);
  }
  sat::CacheSatConfig cfg;
  cfg.early_sat = false;
  const auto good_run =
      sat::cache_sat(f, std::vector<sat::Var>(good.begin(), good.end()), cfg);
  const auto bad_run = sat::cache_sat(
      f, std::vector<sat::Var>(worst.begin(), worst.end()), cfg);
  EXPECT_EQ(good_run.status, bad_run.status);
  EXPECT_LT(good_run.stats.nodes, bad_run.stats.nodes);
}

TEST(Integration, SuiteAtpgSatInstancesAreEasy) {
  // Mini Figure 1: the overwhelming share of instances solve with few
  // conflicts.
  gen::SuiteOptions opts;
  opts.scale = 0.15;
  const auto suite = gen::iscas85_like_suite(opts);
  std::size_t easy = 0, total = 0;
  for (const net::Network& n : suite) {
    fault::AtpgOptions atpg;
    atpg.random_blocks = 0;
    atpg.drop_by_simulation = false;
    const fault::AtpgResult r = fault::run_atpg(n, atpg);
    for (const auto& o : r.outcomes) {
      if (o.sat_vars == 0) continue;
      ++total;
      if (o.solver_stats.conflicts < 100) ++easy;
    }
  }
  ASSERT_GT(total, 100u);
  EXPECT_GT(static_cast<double>(easy) / static_cast<double>(total), 0.9);
}

}  // namespace
}  // namespace cwatpg
