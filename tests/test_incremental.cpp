// Incremental engine: solver assumptions, the shared select-instrumented
// miter (stems AND branches), and the SolveEngine::kIncremental pipeline
// integration — classification identity against the per-fault engine,
// serial-vs-parallel byte identity at matched stream counts, clause-reuse
// observability, and thread-safety of per-worker miter clones.
#include <gtest/gtest.h>

#include <thread>

#include "fault/incremental.hpp"
#include "fault/parallel_atpg.hpp"
#include "fault/tegus.hpp"
#include "gen/hutton.hpp"
#include "gen/structured.hpp"
#include "gen/suites.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "obs/metrics.hpp"
#include "sat/encode.hpp"

namespace cwatpg::fault {
namespace {

// ----------------------------------------------------- solver assumptions

TEST(Assumptions, ForceVariableValues) {
  sat::Cnf f(2);
  f.add_clause({sat::pos(0), sat::pos(1)});
  sat::Solver solver(f);
  const sat::Lit a0[] = {sat::neg(0)};
  ASSERT_EQ(solver.solve(a0), sat::SolveStatus::kSat);
  EXPECT_FALSE(solver.model()[0]);
  EXPECT_TRUE(solver.model()[1]);
  const sat::Lit a1[] = {sat::neg(0), sat::neg(1)};
  EXPECT_EQ(solver.solve(a1), sat::SolveStatus::kUnsat);
  // Not globally UNSAT: a later call without assumptions is SAT.
  EXPECT_EQ(solver.solve(), sat::SolveStatus::kSat);
}

TEST(Assumptions, ConflictingAssumptionsUnsat) {
  sat::Cnf f(1);
  f.add_clause({sat::pos(0), sat::neg(0)});  // tautology dropped; empty cnf
  sat::Solver solver(sat::Cnf(1));
  const sat::Lit a[] = {sat::pos(0), sat::neg(0)};
  EXPECT_EQ(solver.solve(a), sat::SolveStatus::kUnsat);
}

TEST(Assumptions, OutOfRangeThrows) {
  sat::Solver solver(sat::Cnf(1));
  const sat::Lit a[] = {sat::pos(9)};
  EXPECT_THROW(solver.solve(a), std::invalid_argument);
}

TEST(Assumptions, ManySequentialQueriesConsistent) {
  // Same instance queried under every single-literal assumption; results
  // must match fresh solves of the constrained formula.
  const net::Network n = gen::c17();
  const sat::Cnf f = sat::encode_circuit_sat(n);
  sat::Solver incremental(f);
  for (sat::Var v = 0; v < f.num_vars(); ++v) {
    for (const bool value : {false, true}) {
      const sat::Lit a[] = {sat::Lit(v, !value)};
      const auto inc = incremental.solve(a);
      sat::Cnf constrained = f;
      constrained.add_clause({sat::Lit(v, !value)});
      const auto fresh = sat::solve_cnf(constrained);
      ASSERT_EQ(inc, fresh.status) << "var " << v << " value " << value;
    }
  }
}

TEST(Assumptions, QueryStatsAreDeltasAndSumToCumulative) {
  const net::Network n = net::decompose(gen::comparator(4));
  sat::Solver solver(sat::encode_circuit_sat(n));
  sat::SolverStats summed;
  for (sat::Var v = 0; v < 6; ++v) {
    const sat::Lit a[] = {sat::pos(v)};
    solver.solve(a);
    const sat::SolverStats q = solver.query_stats();
    // The delta never exceeds the running total.
    EXPECT_LE(q.conflicts, solver.stats().conflicts);
    EXPECT_LE(q.propagations, solver.stats().propagations);
    summed += q;
  }
  // Per-query deltas partition the cumulative counters exactly.
  EXPECT_EQ(summed.decisions, solver.stats().decisions);
  EXPECT_EQ(summed.propagations, solver.stats().propagations);
  EXPECT_EQ(summed.conflicts, solver.stats().conflicts);
  EXPECT_EQ(summed.learnt_clauses, solver.stats().learnt_clauses);
}

TEST(Assumptions, ConflictCapIsPerCallNotCumulative) {
  // A capped solver must get the FULL cap on every call: with a cumulative
  // reading, the second query would abort instantly once the first spent
  // the budget.
  const net::Network n = net::decompose(gen::array_multiplier(3));
  sat::SolverConfig config;
  config.max_conflicts = 20;
  sat::Solver solver(sat::encode_circuit_sat(n), config);
  const net::NodeId po_src = n.fanins(n.outputs()[0])[0];
  for (int i = 0; i < 3; ++i) {
    const sat::Lit a[] = {sat::pos(static_cast<sat::Var>(po_src))};
    solver.solve(a);
    EXPECT_LE(solver.query_stats().conflicts, 20u) << "call " << i;
  }
}

TEST(Assumptions, EmptyAssumptionsBitIdenticalToOneShot) {
  // solve({}) on a fresh solver must match solve_cnf exactly — the
  // per-query bookkeeping may not perturb the one-shot path.
  const net::Network n = net::decompose(gen::ripple_carry_adder(4));
  const sat::Cnf f = sat::encode_circuit_sat(n);
  sat::Solver fresh(f);
  const auto status = fresh.solve();
  const sat::SolveResult one_shot = sat::solve_cnf(f);
  EXPECT_EQ(status, one_shot.status);
  EXPECT_EQ(fresh.stats(), one_shot.stats);
  EXPECT_EQ(fresh.query_stats(), one_shot.stats);
  EXPECT_EQ(fresh.stats().reused_implications, 0u);
  if (status == sat::SolveStatus::kSat) {
    EXPECT_EQ(fresh.model(), one_shot.model);
  }
}

// --------------------------------------------------------- shared miter

TEST(SharedMiter, CoversEntireCollapsedFaultList) {
  for (const net::Network& n :
       {gen::c17(), net::decompose(gen::simple_alu(2))}) {
    const SharedMiterCnf encoding(n);
    for (const StuckAtFault& f : all_faults(n))
      EXPECT_TRUE(encoding.covers(f)) << n.name() << " " << to_string(n, f);
    for (const StuckAtFault& f : collapsed_fault_list(n))
      EXPECT_TRUE(encoding.covers(f)) << n.name() << " " << to_string(n, f);
  }
}

TEST(SharedMiter, AgreesWithPerFaultEngineOnC17) {
  const net::Network n = gen::c17();
  SharedMiter miter(n);
  for (const StuckAtFault& f : collapsed_fault_list(n)) {
    Pattern inc_test, ref_test;
    const auto inc = miter.solve_fault(f, inc_test);
    const FaultOutcome ref = generate_test(n, f, {}, ref_test);
    if (ref.status == FaultStatus::kDetected) {
      ASSERT_EQ(inc, sat::SolveStatus::kSat) << to_string(n, f);
      EXPECT_TRUE(detects(n, f, inc_test)) << to_string(n, f);
    } else if (ref.status == FaultStatus::kUntestable) {
      ASSERT_EQ(inc, sat::SolveStatus::kUnsat) << to_string(n, f);
    }
  }
}

TEST(SharedMiter, BranchFaultsAgreeOnFanoutHeavyLogic) {
  // c17 plus the decomposed ALU have true fanout stems, so the collapsed
  // list keeps genuine branch faults; every one must classify like the
  // per-fault engine — the encoding serves the whole list, no fallback.
  for (const net::Network& n :
       {gen::c17(), net::decompose(gen::simple_alu(2))}) {
    SharedMiter miter(n);
    std::size_t branches = 0;
    for (const StuckAtFault& f : collapsed_fault_list(n)) {
      if (f.is_stem()) continue;
      ++branches;
      Pattern inc_test, ref_test;
      const auto inc = miter.solve_fault(f, inc_test);
      const FaultOutcome ref = generate_test(n, f, {}, ref_test);
      if (ref.status == FaultStatus::kDetected) {
        ASSERT_EQ(inc, sat::SolveStatus::kSat)
            << n.name() << " " << to_string(n, f);
        EXPECT_TRUE(detects(n, f, inc_test))
            << n.name() << " " << to_string(n, f);
      } else if (ref.status == FaultStatus::kUntestable) {
        ASSERT_EQ(inc, sat::SolveStatus::kUnsat)
            << n.name() << " " << to_string(n, f);
      }
    }
    EXPECT_GT(branches, 0u) << n.name();
  }
}

TEST(SharedMiter, RedundantFaultUnsat) {
  net::Network n;
  const auto a = n.add_input("a");
  const auto na = n.add_gate(net::GateType::kNot, {a});
  const auto g = n.add_gate(net::GateType::kOr, {a, na});
  const auto b = n.add_input("b");
  n.add_output(n.add_gate(net::GateType::kAnd, {g, b}), "o");
  SharedMiter miter(n);
  Pattern test;
  EXPECT_EQ(miter.solve_fault(g, true, test), sat::SolveStatus::kUnsat);
  EXPECT_EQ(miter.solve_fault(g, false, test), sat::SolveStatus::kSat);
}

TEST(SharedMiter, ConeRestrictionPinsOffConeInputs) {
  // Two disjoint output cones: a query rooted in one cone pins the other
  // cone's inputs to 0 (they cannot affect excitation or any output
  // diff), keeping the search cone-local. Answers must be unaffected.
  net::Network n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto g1 = n.add_gate(net::GateType::kAnd, {a, b});
  n.add_output(g1, "o1");
  const auto c = n.add_input("c");
  const auto d = n.add_input("d");
  const auto g2 = n.add_gate(net::GateType::kOr, {c, d});
  n.add_output(g2, "o2");

  const auto encoding = std::make_shared<const SharedMiterCnf>(n);
  // The AND cone's support is {a, b, g1, o1}: inputs c and d get pinned.
  const auto& pinned = encoding->pinned_inputs_of(g1);
  EXPECT_EQ(pinned.size(), 2u);
  EXPECT_NE(std::find(pinned.begin(), pinned.end(),
                      static_cast<sat::Var>(c)),
            pinned.end());
  EXPECT_NE(std::find(pinned.begin(), pinned.end(),
                      static_cast<sat::Var>(d)),
            pinned.end());
  // ... and the pin literals ride along in the assumptions.
  const auto assumptions =
      encoding->assumptions_for(StuckAtFault{g1, StuckAtFault::kStem, false});
  EXPECT_NE(std::find(assumptions.begin(), assumptions.end(),
                      sat::Lit(static_cast<sat::Var>(c), true)),
            assumptions.end());

  // Classification is untouched: every collapsed fault agrees with the
  // per-fault engine despite the restriction.
  SharedMiter miter(encoding);
  Pattern test;
  for (const StuckAtFault& f : collapsed_fault_list(n)) {
    Pattern ref_test;
    const FaultOutcome ref = generate_test(n, f, {}, ref_test);
    const sat::SolveStatus inc = miter.solve_fault(f, test);
    if (ref.status == FaultStatus::kDetected) {
      EXPECT_EQ(inc, sat::SolveStatus::kSat) << to_string(n, f);
      EXPECT_TRUE(detects(n, f, test)) << to_string(n, f);
    } else {
      EXPECT_EQ(inc, sat::SolveStatus::kUnsat) << to_string(n, f);
    }
  }
}

TEST(SharedMiter, InvalidSiteThrows) {
  const net::Network n = gen::c17();
  SharedMiter miter(n);
  Pattern test;
  EXPECT_THROW(miter.solve_fault(999, true, test), std::invalid_argument);
  // kOutput markers have no stem selects.
  EXPECT_THROW(miter.solve_fault(n.outputs()[0], true, test),
               std::invalid_argument);
}

TEST(SharedMiter, StatsAccumulateAcrossQueries) {
  const net::Network n = net::decompose(gen::comparator(3));
  SharedMiter miter(n);
  Pattern test;
  const auto faults = collapsed_fault_list(n);
  std::size_t queries = 0;
  for (const auto& f : faults) {
    miter.solve_fault(f, test);
    if (++queries == 6) break;
  }
  EXPECT_GT(miter.stats().propagations, 0u);
}

TEST(SharedMiter, LearntClausesAreReusedAcrossQueries) {
  // The whole point of the shared miter: implications driven by clauses
  // learnt on earlier faults. Over a full collapsed list on real logic the
  // reuse counter must move.
  const net::Network n = net::decompose(gen::comparator(4));
  SharedMiter miter(n);
  Pattern test;
  for (const StuckAtFault& f : collapsed_fault_list(n))
    miter.solve_fault(f, test);
  EXPECT_GT(miter.stats().reused_implications, 0u);
  EXPECT_GT(miter.stats().learnt_clauses, 0u);
}

TEST(SharedMiter, PrebuiltEncodingSeedsIdenticalSessions) {
  const net::Network n = gen::c17();
  const auto encoding = std::make_shared<const SharedMiterCnf>(n);
  SharedMiter direct(n);
  SharedMiter seeded(encoding);
  EXPECT_EQ(direct.num_vars(), seeded.num_vars());
  for (const StuckAtFault& f : collapsed_fault_list(n)) {
    Pattern td, ts;
    ASSERT_EQ(direct.solve_fault(f, td), seeded.solve_fault(f, ts))
        << to_string(n, f);
    EXPECT_EQ(td, ts) << to_string(n, f);
  }
  EXPECT_EQ(direct.stats(), seeded.stats());
}

TEST(RunIncremental, MatchesPerFaultAcrossFamilies) {
  for (const net::Network& n :
       {net::decompose(gen::ripple_carry_adder(3)),
        net::decompose(gen::simple_alu(2)), gen::fig4a_network()}) {
    const auto faults = collapsed_fault_list(n);
    const auto outcomes = run_atpg_incremental(n, faults);
    ASSERT_EQ(outcomes.size(), faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
      Pattern ref_test;
      const FaultOutcome ref = generate_test(n, faults[i], {}, ref_test);
      if (ref.status == FaultStatus::kDetected) {
        ASSERT_EQ(outcomes[i].status, sat::SolveStatus::kSat)
            << n.name() << " " << to_string(n, faults[i]);
        EXPECT_TRUE(detects(n, faults[i], outcomes[i].test));
      } else if (ref.status == FaultStatus::kUntestable) {
        ASSERT_EQ(outcomes[i].status, sat::SolveStatus::kUnsat);
      }
    }
  }
}

class IncrementalRandomSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(IncrementalRandomSweep, AgreesOnRandomLogic) {
  gen::HuttonParams p;
  p.num_gates = 50;
  p.num_inputs = 8;
  p.num_outputs = 4;
  p.seed = GetParam();
  const net::Network n = net::decompose(gen::hutton_random(p));
  const auto faults = collapsed_fault_list(n);
  const auto outcomes = run_atpg_incremental(n, faults);
  for (std::size_t i = 0; i < faults.size(); i += 2) {
    Pattern ref_test;
    const FaultOutcome ref = generate_test(n, faults[i], {}, ref_test);
    const bool ref_testable = ref.status == FaultStatus::kDetected;
    const bool inc_testable =
        outcomes[i].status == sat::SolveStatus::kSat;
    // kUnreachable maps to UNSAT in the low-level shared miter (the
    // pipeline providers mask it before querying).
    if (ref.status == FaultStatus::kUnreachable) {
      EXPECT_EQ(outcomes[i].status, sat::SolveStatus::kUnsat);
    } else {
      EXPECT_EQ(inc_testable, ref_testable)
          << to_string(n, faults[i]) << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalRandomSweep,
                         ::testing::Range<std::uint64_t>(1, 7));

// ------------------------------------------- pipeline engine integration

/// "Was the fault found testable" irrespective of which mechanism found it
/// — detected by SAT, dropped by a simulated test, or dropped in the
/// random phase. Engines may legitimately differ on WHICH mechanism (their
/// test patterns differ, so drop order differs); they must agree on this.
bool is_detected_class(FaultStatus s) {
  return s == FaultStatus::kDetected || s == FaultStatus::kDroppedBySim ||
         s == FaultStatus::kDroppedRandom;
}

void expect_same_classification(const net::Network& n, const AtpgResult& a,
                                const AtpgResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const FaultOutcome& x = a.outcomes[i];
    const FaultOutcome& y = b.outcomes[i];
    ASSERT_EQ(x.fault, y.fault);
    EXPECT_EQ(is_detected_class(x.status), is_detected_class(y.status))
        << n.name() << " " << to_string(n, x.fault);
    EXPECT_EQ(x.status == FaultStatus::kUntestable,
              y.status == FaultStatus::kUntestable)
        << n.name() << " " << to_string(n, x.fault);
    EXPECT_EQ(x.status == FaultStatus::kUnreachable,
              y.status == FaultStatus::kUnreachable)
        << n.name() << " " << to_string(n, x.fault);
  }
  EXPECT_EQ(a.num_detected, b.num_detected);
  EXPECT_EQ(a.num_untestable, b.num_untestable);
  EXPECT_EQ(a.num_unreachable, b.num_unreachable);
}

TEST(IncrementalEngine, ClassifiesLikePerFaultOnSuiteMembers) {
  gen::SuiteOptions suite_opts;
  suite_opts.scale = 0.08;
  std::vector<net::Network> circuits = {gen::c17()};
  const auto iscas = gen::iscas85_like_suite(suite_opts);
  const auto mcnc = gen::mcnc_like_suite(suite_opts);
  circuits.push_back(iscas.front());
  circuits.push_back(mcnc.front());
  for (const net::Network& n : circuits) {
    AtpgOptions per_fault;
    AtpgOptions incremental;
    incremental.engine = AtpgEngine::kIncremental;
    const AtpgResult ref = run_atpg(n, per_fault);
    const AtpgResult inc = run_atpg(n, incremental);
    SCOPED_TRACE(n.name());
    expect_same_classification(n, ref, inc);
    // And at N threads, against the same serial reference.
    ParallelAtpgOptions popts;
    popts.base = incremental;
    popts.num_threads = 3;
    expect_same_classification(n, ref, run_atpg_parallel(n, popts));
  }
}

TEST(IncrementalEngine, OutcomesCarryIncrementalAttribution) {
  const net::Network n = gen::c17();
  AtpgOptions opts;
  opts.engine = AtpgEngine::kIncremental;
  opts.random_blocks = 0;
  opts.drop_by_simulation = false;
  const AtpgResult r = run_atpg(n, opts);
  for (const FaultOutcome& o : r.outcomes) {
    if (o.status == FaultStatus::kDetected ||
        o.status == FaultStatus::kUntestable) {
      EXPECT_EQ(o.engine, SolveEngine::kIncremental) << to_string(n, o.fault);
      EXPECT_GE(o.attempts, 1u);
    }
    if (o.status == FaultStatus::kUnreachable) {
      EXPECT_EQ(o.engine, SolveEngine::kNone);
      EXPECT_EQ(o.attempts, 0u);
    }
  }
}

TEST(IncrementalEngine, UnreachableFaultsClassifiedWithoutQueries) {
  net::Network n;
  const auto a = n.add_input("a");
  const auto dangle = n.add_gate(net::GateType::kNot, {a});
  n.add_gate(net::GateType::kNot, {dangle});  // consumes, still dangling
  n.add_output(n.add_gate(net::GateType::kBuf, {a}), "o");
  AtpgOptions opts;
  opts.engine = AtpgEngine::kIncremental;
  const AtpgResult inc = run_atpg(n, opts);
  const AtpgResult ref = run_atpg(n);
  expect_same_classification(n, ref, inc);
  EXPECT_GT(inc.num_unreachable, 0u);
}

void expect_byte_identical(const AtpgResult& a, const AtpgResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const FaultOutcome& s = a.outcomes[i];
    const FaultOutcome& p = b.outcomes[i];
    EXPECT_EQ(s.fault, p.fault) << "fault " << i;
    EXPECT_EQ(s.status, p.status) << "fault " << i;
    EXPECT_EQ(s.engine, p.engine) << "fault " << i;
    EXPECT_EQ(s.attempts, p.attempts) << "fault " << i;
    EXPECT_EQ(s.test_index, p.test_index) << "fault " << i;
    EXPECT_EQ(s.sat_vars, p.sat_vars) << "fault " << i;
    EXPECT_EQ(s.sat_clauses, p.sat_clauses) << "fault " << i;
    EXPECT_EQ(s.solver_stats, p.solver_stats) << "fault " << i;
  }
  ASSERT_EQ(a.tests.size(), b.tests.size());
  for (std::size_t t = 0; t < a.tests.size(); ++t)
    EXPECT_EQ(a.tests[t], b.tests[t]) << "test " << t;
  EXPECT_EQ(a.num_detected, b.num_detected);
  EXPECT_EQ(a.num_untestable, b.num_untestable);
  EXPECT_EQ(a.num_aborted, b.num_aborted);
  EXPECT_EQ(a.num_unreachable, b.num_unreachable);
  EXPECT_EQ(a.num_escalated, b.num_escalated);
  EXPECT_EQ(a.interrupted, b.interrupted);
}

TEST(IncrementalEngine, SerialVsParallelByteIdenticalAtPinnedStreams) {
  // Streams — not threads — are the determinism unit: with
  // incremental_streams pinned, the serial engine and any thread count
  // partition the work list identically and every session sees the same
  // query history, so results (stats included) match byte for byte.
  const net::Network n = gen::c17();
  AtpgOptions base;
  base.engine = AtpgEngine::kIncremental;
  base.incremental_streams = 3;
  const AtpgResult serial = run_atpg(n, base);
  for (std::size_t threads : {1u, 2u, 4u}) {
    ParallelAtpgOptions popts;
    popts.base = base;
    popts.num_threads = threads;
    ParallelStats stats;
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_byte_identical(serial, run_atpg_parallel(n, popts, &stats));
    EXPECT_EQ(stats.dispatched, stats.committed + stats.wasted);
  }
}

TEST(IncrementalEngine, SerialVsParallelByteIdenticalOnSuiteMember) {
  gen::SuiteOptions suite_opts;
  suite_opts.scale = 0.06;
  const net::Network n = gen::iscas85_like_suite(suite_opts).front();
  AtpgOptions base;
  base.engine = AtpgEngine::kIncremental;
  base.incremental_streams = 2;
  const AtpgResult serial = run_atpg(n, base);
  ParallelAtpgOptions popts;
  popts.base = base;
  popts.num_threads = 4;
  expect_byte_identical(serial, run_atpg_parallel(n, popts));
}

TEST(IncrementalEngine, PrebuiltMiterGivesIdenticalRun) {
  // The service path: a registry-pinned encoding must change nothing.
  const net::Network n = gen::c17();
  AtpgOptions fresh;
  fresh.engine = AtpgEngine::kIncremental;
  AtpgOptions pinned = fresh;
  pinned.prebuilt_miter = std::make_shared<const SharedMiterCnf>(n);
  expect_byte_identical(run_atpg(n, fresh), run_atpg(n, pinned));
}

TEST(IncrementalEngine, PrebuiltMiterFromWrongNetworkThrows) {
  AtpgOptions opts;
  opts.engine = AtpgEngine::kIncremental;
  opts.prebuilt_miter = std::make_shared<const SharedMiterCnf>(gen::c17());
  const net::Network other = net::decompose(gen::comparator(3));
  EXPECT_THROW(run_atpg(other, opts), std::invalid_argument);
}

TEST(IncrementalEngine, EscalationLadderRecoversCappedAborts) {
  // A tiny conflict cap forces in-miter retries and then the fresh-CNF /
  // PODEM ladder; classification must still match the per-fault engine's.
  const net::Network n = net::decompose(gen::array_multiplier(4));
  AtpgOptions per_fault;
  per_fault.random_blocks = 0;
  per_fault.solver.max_conflicts = 1;
  AtpgOptions incremental = per_fault;
  incremental.engine = AtpgEngine::kIncremental;
  const AtpgResult ref = run_atpg(n, per_fault);
  const AtpgResult inc = run_atpg(n, incremental);
  expect_same_classification(n, ref, inc);
  EXPECT_EQ(inc.num_aborted, 0u);  // the ladder cleaned up
}

TEST(IncrementalEngine, ReuseCountersFlowIntoMetrics) {
  const net::Network n = net::decompose(gen::comparator(4));
  obs::MetricsRegistry metrics;
  AtpgOptions opts;
  opts.engine = AtpgEngine::kIncremental;
  opts.random_blocks = 0;
  opts.drop_by_simulation = false;
  opts.metrics = &metrics;
  run_atpg(n, opts);
  const obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_GT(snap.counters.at("incremental.queries"), 0u);
  EXPECT_GT(snap.counters.at("incremental.reused_implications"), 0u);
  EXPECT_GT(snap.counters.at("sat.reused_implications"), 0u);
  EXPECT_GT(snap.gauges.at("incremental.miter_vars"), 0.0);
  EXPECT_GT(snap.gauges.at("incremental.miter_clauses"), 0.0);
  EXPECT_EQ(snap.counters.at("incremental.builds"), 1u);
}

// tsan: many threads hammer private sessions cloned from ONE shared
// encoding; any hidden shared mutable state in the encoding or solver
// construction shows up as a race. Results must also agree across clones.
TEST(IncrementalEngine, ConcurrentMiterClonesAgree) {
  const net::Network n = net::decompose(gen::simple_alu(2));
  const auto encoding = std::make_shared<const SharedMiterCnf>(n);
  const auto faults = collapsed_fault_list(n);
  constexpr std::size_t kThreads = 4;
  std::vector<std::vector<sat::SolveStatus>> status(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SharedMiter miter(encoding);
      Pattern test;
      for (const StuckAtFault& f : faults)
        status[t].push_back(miter.solve_fault(f, test));
    });
  }
  for (std::thread& th : threads) th.join();
  for (std::size_t t = 1; t < kThreads; ++t)
    EXPECT_EQ(status[t], status[0]) << "clone " << t;
}

}  // namespace
}  // namespace cwatpg::fault
