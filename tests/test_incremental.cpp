#include <gtest/gtest.h>

#include "fault/incremental.hpp"
#include "fault/tegus.hpp"
#include "gen/hutton.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "sat/encode.hpp"

namespace cwatpg::fault {
namespace {

// ----------------------------------------------------- solver assumptions

TEST(Assumptions, ForceVariableValues) {
  sat::Cnf f(2);
  f.add_clause({sat::pos(0), sat::pos(1)});
  sat::Solver solver(f);
  const sat::Lit a0[] = {sat::neg(0)};
  ASSERT_EQ(solver.solve(a0), sat::SolveStatus::kSat);
  EXPECT_FALSE(solver.model()[0]);
  EXPECT_TRUE(solver.model()[1]);
  const sat::Lit a1[] = {sat::neg(0), sat::neg(1)};
  EXPECT_EQ(solver.solve(a1), sat::SolveStatus::kUnsat);
  // Not globally UNSAT: a later call without assumptions is SAT.
  EXPECT_EQ(solver.solve(), sat::SolveStatus::kSat);
}

TEST(Assumptions, ConflictingAssumptionsUnsat) {
  sat::Cnf f(1);
  f.add_clause({sat::pos(0), sat::neg(0)});  // tautology dropped; empty cnf
  sat::Solver solver(sat::Cnf(1));
  const sat::Lit a[] = {sat::pos(0), sat::neg(0)};
  EXPECT_EQ(solver.solve(a), sat::SolveStatus::kUnsat);
}

TEST(Assumptions, OutOfRangeThrows) {
  sat::Solver solver(sat::Cnf(1));
  const sat::Lit a[] = {sat::pos(9)};
  EXPECT_THROW(solver.solve(a), std::invalid_argument);
}

TEST(Assumptions, ManySequentialQueriesConsistent) {
  // Same instance queried under every single-literal assumption; results
  // must match fresh solves of the constrained formula.
  const net::Network n = gen::c17();
  const sat::Cnf f = sat::encode_circuit_sat(n);
  sat::Solver incremental(f);
  for (sat::Var v = 0; v < f.num_vars(); ++v) {
    for (const bool value : {false, true}) {
      const sat::Lit a[] = {sat::Lit(v, !value)};
      const auto inc = incremental.solve(a);
      sat::Cnf constrained = f;
      constrained.add_clause({sat::Lit(v, !value)});
      const auto fresh = sat::solve_cnf(constrained);
      ASSERT_EQ(inc, fresh.status) << "var " << v << " value " << value;
    }
  }
}

// --------------------------------------------------------- shared miter

TEST(SharedMiter, AgreesWithPerFaultEngineOnC17) {
  const net::Network n = gen::c17();
  SharedMiter miter(n);
  for (const StuckAtFault& f : collapsed_fault_list(n)) {
    if (!f.is_stem()) continue;
    Pattern inc_test, ref_test;
    const auto inc = miter.solve_fault(f.node, f.stuck_value, inc_test);
    const FaultOutcome ref = generate_test(n, f, {}, ref_test);
    if (ref.status == FaultStatus::kDetected) {
      ASSERT_EQ(inc, sat::SolveStatus::kSat) << to_string(n, f);
      EXPECT_TRUE(detects(n, f, inc_test)) << to_string(n, f);
    } else if (ref.status == FaultStatus::kUntestable) {
      ASSERT_EQ(inc, sat::SolveStatus::kUnsat) << to_string(n, f);
    }
  }
}

TEST(SharedMiter, RedundantFaultUnsat) {
  net::Network n;
  const auto a = n.add_input("a");
  const auto na = n.add_gate(net::GateType::kNot, {a});
  const auto g = n.add_gate(net::GateType::kOr, {a, na});
  const auto b = n.add_input("b");
  n.add_output(n.add_gate(net::GateType::kAnd, {g, b}), "o");
  SharedMiter miter(n);
  Pattern test;
  EXPECT_EQ(miter.solve_fault(g, true, test), sat::SolveStatus::kUnsat);
  EXPECT_EQ(miter.solve_fault(g, false, test), sat::SolveStatus::kSat);
}

TEST(SharedMiter, InvalidSiteThrows) {
  const net::Network n = gen::c17();
  SharedMiter miter(n);
  Pattern test;
  EXPECT_THROW(miter.solve_fault(999, true, test), std::invalid_argument);
  // kOutput markers have no selects.
  EXPECT_THROW(miter.solve_fault(n.outputs()[0], true, test),
               std::invalid_argument);
}

TEST(SharedMiter, StatsAccumulateAcrossQueries) {
  const net::Network n = net::decompose(gen::comparator(3));
  SharedMiter miter(n);
  Pattern test;
  const auto faults = collapsed_fault_list(n);
  std::size_t queries = 0;
  for (const auto& f : faults) {
    if (!f.is_stem()) continue;
    miter.solve_fault(f.node, f.stuck_value, test);
    if (++queries == 6) break;
  }
  EXPECT_GT(miter.stats().propagations, 0u);
}

TEST(RunIncremental, MatchesPerFaultAcrossFamilies) {
  for (const net::Network& n :
       {net::decompose(gen::ripple_carry_adder(3)),
        net::decompose(gen::simple_alu(2)), gen::fig4a_network()}) {
    const auto faults = collapsed_fault_list(n);
    const auto outcomes = run_atpg_incremental(n, faults);
    ASSERT_EQ(outcomes.size(), faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (outcomes[i].skipped) {
        EXPECT_FALSE(faults[i].is_stem());
        continue;
      }
      Pattern ref_test;
      const FaultOutcome ref = generate_test(n, faults[i], {}, ref_test);
      if (ref.status == FaultStatus::kDetected) {
        ASSERT_EQ(outcomes[i].status, sat::SolveStatus::kSat)
            << n.name() << " " << to_string(n, faults[i]);
        EXPECT_TRUE(detects(n, faults[i], outcomes[i].test));
      } else if (ref.status == FaultStatus::kUntestable) {
        ASSERT_EQ(outcomes[i].status, sat::SolveStatus::kUnsat);
      }
    }
  }
}

class IncrementalRandomSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(IncrementalRandomSweep, AgreesOnRandomLogic) {
  gen::HuttonParams p;
  p.num_gates = 50;
  p.num_inputs = 8;
  p.num_outputs = 4;
  p.seed = GetParam();
  const net::Network n = net::decompose(gen::hutton_random(p));
  const auto faults = collapsed_fault_list(n);
  const auto outcomes = run_atpg_incremental(n, faults);
  for (std::size_t i = 0; i < faults.size(); i += 2) {
    if (outcomes[i].skipped) continue;
    Pattern ref_test;
    const FaultOutcome ref = generate_test(n, faults[i], {}, ref_test);
    const bool ref_testable = ref.status == FaultStatus::kDetected;
    const bool inc_testable =
        outcomes[i].status == sat::SolveStatus::kSat;
    // kUnreachable maps to UNSAT in the shared miter.
    if (ref.status == FaultStatus::kUnreachable) {
      EXPECT_EQ(outcomes[i].status, sat::SolveStatus::kUnsat);
    } else {
      EXPECT_EQ(inc_testable, ref_testable)
          << to_string(n, faults[i]) << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalRandomSweep,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace cwatpg::fault
