#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "core/cutwidth.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "sat/cache_sat.hpp"
#include "sat/encode.hpp"

namespace cwatpg::core {
namespace {

TEST(Bounds, Lemma41Scaling) {
  EXPECT_DOUBLE_EQ(lemma41_log2_bound(2, 3), 12.0);
  EXPECT_DOUBLE_EQ(lemma41_log2_bound(1, 0), 0.0);
}

TEST(Bounds, Theorem41AddsLogN) {
  EXPECT_DOUBLE_EQ(theorem41_log2_bound(1024, 2, 3),
                   10.0 + lemma41_log2_bound(2, 3));
  EXPECT_DOUBLE_EQ(theorem41_log2_bound(0, 2, 3),
                   lemma41_log2_bound(2, 3));  // n clamped to 1
}

TEST(Bounds, Eq45AddsLogP) {
  EXPECT_DOUBLE_EQ(eq45_log2_bound(8, 1024, 2, 3),
                   3.0 + theorem41_log2_bound(1024, 2, 3));
}

TEST(Bounds, Lemma42Rhs) {
  EXPECT_EQ(lemma42_rhs(3), 8u);
  EXPECT_EQ(lemma42_rhs(0), 2u);
}

TEST(Bounds, Lemma52Rhs) {
  EXPECT_DOUBLE_EQ(lemma52_rhs(2, 1024), 10.0);
  EXPECT_DOUBLE_EQ(lemma52_rhs(3, 256), 16.0);
  EXPECT_DOUBLE_EQ(lemma52_rhs(1, 100), 1.0);  // degenerate
}

TEST(Bounds, IsTreeCircuitDetects) {
  EXPECT_TRUE(is_tree_circuit(gen::and_or_tree(16)));
  EXPECT_TRUE(is_tree_circuit(gen::random_tree(40, 3, 1)));
  EXPECT_FALSE(is_tree_circuit(gen::c17()));  // fanout > 1 on G11
}

TEST(Bounds, TreeOrderingRejectsNonTree) {
  EXPECT_THROW(tree_ordering(gen::c17()), std::invalid_argument);
}

TEST(Bounds, TreeOrderingIsPermutation) {
  const net::Network t = gen::random_tree(60, 3, 7);
  const Ordering order = tree_ordering(t);
  EXPECT_NO_THROW(positions_of(order, t.node_count()));
}

TEST(Bounds, BinaryTreeMeetsLemma52) {
  for (std::size_t leaves : {8u, 32u, 128u, 512u}) {
    const net::Network t = gen::and_or_tree(leaves, 2);
    const Ordering order = tree_ordering(t);
    const std::uint32_t w = cut_width(t, order);
    const double bound = lemma52_rhs(2, t.node_count());
    EXPECT_LE(w, bound + 1.0) << leaves << " leaves";
  }
}

TEST(Bounds, KaryTreesMeetLemma52) {
  for (std::size_t k : {2u, 3u, 4u, 5u}) {
    const net::Network t = gen::and_or_tree(256, k);
    const Ordering order = tree_ordering(t);
    const std::uint32_t w = cut_width(t, order);
    EXPECT_LE(w, lemma52_rhs(k, t.node_count()) + 1.0) << "arity " << k;
  }
}

TEST(Bounds, RandomTreesMeetLemma52) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const net::Network t = gen::random_tree(200, 3, seed);
    const Ordering order = tree_ordering(t);
    const std::uint32_t w = cut_width(t, order);
    // Random trees have mixed arity <= 3: (k-1)log2(n) with k=3.
    EXPECT_LE(w, lemma52_rhs(3, t.node_count()) + 1.0) << "seed " << seed;
  }
}

TEST(Bounds, TreeOrderingBeatsTopological) {
  const net::Network t = gen::and_or_tree(256, 2);
  const std::uint32_t smart = cut_width(t, tree_ordering(t));
  const std::uint32_t topo =
      cut_width(t, identity_ordering(t.node_count()));
  EXPECT_LE(smart, topo);
}

TEST(Bounds, ChainTreeWidthOne) {
  net::Network n;
  net::NodeId cur = n.add_input("a");
  for (int i = 0; i < 20; ++i)
    cur = n.add_gate(net::GateType::kNot, {cur});
  n.add_output(cur, "o");
  ASSERT_TRUE(is_tree_circuit(n));
  EXPECT_EQ(cut_width(n, tree_ordering(n)), 1u);
}

TEST(Bounds, Theorem41HoldsOnTreeCircuitSat) {
  // Measured backtracking-tree size must respect n * 2^(2*kfo*W).
  const net::Network t = gen::and_or_tree(32, 2);
  const Ordering order = tree_ordering(t);
  const std::uint32_t w = cut_width(t, order);
  const sat::Cnf f = sat::encode_circuit_sat(t);
  const std::vector<sat::Var> var_order(order.begin(), order.end());
  sat::CacheSatConfig cfg;
  cfg.early_sat = false;  // the theorem models the full tree
  const auto r = sat::cache_sat(f, var_order, cfg);
  const double log2_nodes = std::log2(static_cast<double>(r.stats.nodes));
  EXPECT_LE(log2_nodes,
            theorem41_log2_bound(t.node_count(), t.max_fanout(), w));
}

TEST(Bounds, Theorem41HoldsOnFig4a) {
  const auto hg = gen::fig4a_hypergraph();
  const auto order = gen::fig4a_ordering_a();
  const std::uint32_t w = cut_width(hg, order);  // 3
  const sat::Cnf f = gen::formula41();
  const std::vector<sat::Var> var_order(order.begin(), order.end());
  sat::CacheSatConfig cfg;
  cfg.early_sat = false;
  const auto r = sat::cache_sat(f, var_order, cfg);
  // k_fo = 1 in the hand hypergraph (each signal feeds one gate).
  EXPECT_LE(std::log2(static_cast<double>(r.stats.nodes)),
            theorem41_log2_bound(9, 1, w));
}

class TreeBoundSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(TreeBoundSweep, Lemma52AcrossSizesAndArities) {
  const auto [leaves, arity] = GetParam();
  const net::Network t = gen::and_or_tree(leaves, arity);
  const std::uint32_t w = cut_width(t, tree_ordering(t));
  EXPECT_LE(w, lemma52_rhs(arity, t.node_count()) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TreeBoundSweep,
    ::testing::Combine(::testing::Values(16, 64, 256, 1024),
                       ::testing::Values(2, 3, 4)));

}  // namespace
}  // namespace cwatpg::core
