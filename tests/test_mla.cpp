#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/mla.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "util/rng.hpp"

namespace cwatpg::core {
namespace {

/// Brute-force minimum cut-width over all n! orderings (n <= 8).
std::uint32_t brute_force_min_width(const net::Hypergraph& hg) {
  Ordering order = identity_ordering(hg.num_vertices);
  std::uint32_t best = static_cast<std::uint32_t>(-1);
  do {
    best = std::min(best, cut_width(hg, order));
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

net::Hypergraph random_hg(std::size_t n, std::size_t edges,
                          std::uint64_t seed) {
  Rng rng(seed);
  net::Hypergraph hg;
  hg.num_vertices = n;
  for (std::size_t e = 0; e < edges; ++e) {
    const auto u = static_cast<net::NodeId>(rng.below(n));
    const auto v = static_cast<net::NodeId>(rng.below(n));
    if (u != v) hg.edges.push_back({std::min(u, v), std::max(u, v)});
  }
  return hg;
}

TEST(ExactMla, PathGraphIsOne) {
  net::Hypergraph hg;
  hg.num_vertices = 6;
  for (net::NodeId v = 0; v + 1 < 6; ++v) hg.edges.push_back({v, v + 1});
  const MlaResult r = exact_mla(hg);
  EXPECT_EQ(r.width, 1u);
}

TEST(ExactMla, CompleteGraphK4) {
  net::Hypergraph hg;
  hg.num_vertices = 4;
  for (net::NodeId i = 0; i < 4; ++i)
    for (net::NodeId j = i + 1; j < 4; ++j) hg.edges.push_back({i, j});
  // Known: cutwidth of K4 is 4.
  EXPECT_EQ(exact_mla(hg).width, 4u);
}

TEST(ExactMla, StarIsHalved) {
  net::Hypergraph hg;
  hg.num_vertices = 7;
  for (net::NodeId v = 1; v < 7; ++v) hg.edges.push_back({0, v});
  // Optimal places the hub centrally: width = ceil(6/2) = 3.
  EXPECT_EQ(exact_mla(hg).width, 3u);
}

TEST(ExactMla, MatchesBruteForce) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const net::Hypergraph hg = random_hg(7, 10, seed);
    EXPECT_EQ(exact_mla(hg).width, brute_force_min_width(hg))
        << "seed " << seed;
  }
}

TEST(ExactMla, OrderIsPermutation) {
  const net::Hypergraph hg = random_hg(9, 14, 42);
  const MlaResult r = exact_mla(hg);
  EXPECT_NO_THROW(positions_of(r.order, hg.num_vertices));
}

TEST(ExactMla, TooLargeThrows) {
  net::Hypergraph hg;
  hg.num_vertices = 30;
  EXPECT_THROW(exact_mla(hg), std::invalid_argument);
}

TEST(ExactMla, EmptyGraph) {
  net::Hypergraph hg;
  EXPECT_EQ(exact_mla(hg).width, 0u);
}

TEST(Mla, Fig4aRecoversMinimumWidth) {
  // Ordering A achieves 3 — the approximation must find width <= 3 on this
  // 9-vertex example (the leaf DP solves it exactly).
  const MlaResult r = mla(gen::fig4a_hypergraph());
  EXPECT_LE(r.width, 3u);
}

TEST(Mla, OrderIsPermutationOnCircuits) {
  const net::Network n = net::decompose(gen::comparator(6));
  const MlaResult r = mla(n);
  EXPECT_NO_THROW(positions_of(r.order, n.node_count()));
  EXPECT_EQ(r.width, cut_width(n, r.order));
}

TEST(Mla, NeverBelowExactOptimum) {
  for (std::uint64_t seed = 20; seed < 28; ++seed) {
    const net::Hypergraph hg = random_hg(7, 11, seed);
    const std::uint32_t optimum = brute_force_min_width(hg);
    EXPECT_GE(mla(hg).width, optimum);
  }
}

TEST(Mla, CloseToExactOnSmallGraphs) {
  // On graphs at/below the leaf threshold the recursion IS the exact DP.
  for (std::uint64_t seed = 30; seed < 38; ++seed) {
    const net::Hypergraph hg = random_hg(9, 14, seed);
    EXPECT_EQ(mla(hg).width, exact_mla(hg).width) << "seed " << seed;
  }
}

TEST(Mla, BeatsTopologicalOrderOnAdder) {
  const net::Network n = net::decompose(gen::ripple_carry_adder(16));
  const std::uint32_t topo = cut_width(n, identity_ordering(n.node_count()));
  const MlaResult r = mla(n);
  EXPECT_LT(r.width, topo);
  // A ripple adder is a chain of constant-size blocks: MLA should find a
  // small constant-ish width.
  EXPECT_LE(r.width, 12u);
}

TEST(Mla, AdderWidthDoesNotScaleLinearly) {
  const net::Network small = net::decompose(gen::ripple_carry_adder(8));
  const net::Network large = net::decompose(gen::ripple_carry_adder(32));
  const auto ws = mla(small).width;
  const auto wl = mla(large).width;
  // 4x the circuit must come nowhere near 4x the width.
  EXPECT_LT(wl, 2 * ws + 4);
}

TEST(Mla, TreeCircuitNearLogWidth) {
  const net::Network n = gen::and_or_tree(64, 2);
  const MlaResult r = mla(n);
  // Lemma 5.2: an optimal order achieves <= (k-1)log2(n) ~ 7; allow the
  // approximation factor-2 slack.
  EXPECT_LE(r.width, 14u);
}

TEST(Mla, RejectsSillyThreshold) {
  MlaConfig cfg;
  cfg.exact_threshold = 30;
  EXPECT_THROW(mla(gen::fig4a_hypergraph(), cfg), std::invalid_argument);
}

TEST(Mla, DeterministicForFixedSeed) {
  const net::Network n = net::decompose(gen::comparator(5));
  const MlaResult a = mla(n);
  const MlaResult b = mla(n);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.width, b.width);
}

TEST(MlaMultiOutput, Equation44TakesMax) {
  const net::Network n = net::decompose(gen::ripple_carry_adder(6));
  const MultiOutputWidth mo = mla_multi_output(n);
  EXPECT_EQ(mo.cones.size(), n.outputs().size());
  std::uint32_t max_w = 0;
  std::size_t max_size = 0;
  for (const auto& cone : mo.cones) {
    max_w = std::max(max_w, cone.width);
    max_size = std::max(max_size, cone.cone_size);
  }
  EXPECT_EQ(mo.width, max_w);
  EXPECT_EQ(mo.max_cone_size, max_size);
  EXPECT_LE(mo.max_cone_size, n.node_count());
}

TEST(MlaMultiOutput, SingleOutputMatchesConeWidth) {
  const net::Network n = gen::and_or_tree(16, 2);
  const MultiOutputWidth mo = mla_multi_output(n);
  ASSERT_EQ(mo.cones.size(), 1u);
  EXPECT_EQ(mo.width, mo.cones[0].width);
}

class MlaQualitySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MlaQualitySweep, WithinFactorOfExactOnMediumGraphs) {
  // 14-vertex graphs: exact DP still feasible; recursion must stay within
  // 2x + 2 of optimal on these.
  const net::Hypergraph hg = random_hg(14, 20, GetParam() + 70);
  const std::uint32_t approx = mla(hg).width;
  const std::uint32_t optimum = exact_mla(hg).width;
  EXPECT_GE(approx, optimum);
  EXPECT_LE(approx, 2 * optimum + 2) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MlaQualitySweep,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace cwatpg::core
