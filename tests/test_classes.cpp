#include <gtest/gtest.h>

#include "fault/atpg_circuit.hpp"
#include "gen/trees.hpp"
#include "sat/classes.hpp"
#include "sat/encode.hpp"
#include "sat/solver.hpp"
#include "sat/twosat.hpp"
#include "util/lp.hpp"
#include "util/rng.hpp"

namespace cwatpg::sat {
namespace {

Cnf random_2cnf(Var vars, std::size_t clauses, std::uint64_t seed) {
  Rng rng(seed);
  Cnf f(vars);
  for (std::size_t c = 0; c < clauses; ++c) {
    const Lit a(static_cast<Var>(rng.below(vars)), rng.chance(0.5));
    const Lit b(static_cast<Var>(rng.below(vars)), rng.chance(0.5));
    Clause cl{a, b};
    std::sort(cl.begin(), cl.end());
    cl.erase(std::unique(cl.begin(), cl.end()), cl.end());
    f.add_clause(cl);
  }
  return f;
}

// ------------------------------------------------------------------ 2-SAT

TEST(TwoSat, SimpleSatisfiable) {
  TwoSat s(2);
  s.add_or(pos(0), pos(1));
  s.add_or(neg(0), pos(1));
  const auto model = s.solve();
  ASSERT_TRUE(model.has_value());
  EXPECT_TRUE((*model)[1]);
}

TEST(TwoSat, SimpleUnsatisfiable) {
  TwoSat s(1);
  s.add_unit(pos(0));
  s.add_unit(neg(0));
  EXPECT_FALSE(s.solve().has_value());
}

TEST(TwoSat, ImplicationChainForces) {
  TwoSat s(5);
  s.add_unit(pos(0));
  for (Var v = 0; v + 1 < 5; ++v) s.add_implies(pos(v), pos(v + 1));
  const auto model = s.solve();
  ASSERT_TRUE(model.has_value());
  for (Var v = 0; v < 5; ++v) EXPECT_TRUE((*model)[v]);
}

TEST(TwoSat, OutOfRangeThrows) {
  TwoSat s(2);
  EXPECT_THROW(s.add_or(pos(0), pos(7)), std::invalid_argument);
}

TEST(TwoSat, AgreesWithCdclOnRandomInstances) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const Cnf f = random_2cnf(8, 18, seed);
    const auto two = solve_2sat(f);
    const auto cdcl = solve_cnf(f);
    EXPECT_EQ(two.has_value(), cdcl.status == SolveStatus::kSat)
        << "seed " << seed;
    if (two) {
      EXPECT_TRUE(f.eval(*two));
    }
  }
}

TEST(TwoSat, RejectsWideClauses) {
  Cnf f(3);
  f.add_clause({pos(0), pos(1), pos(2)});
  EXPECT_FALSE(is_2sat(f));
  EXPECT_THROW(solve_2sat(f), std::invalid_argument);
}

// ------------------------------------------------------------------- LP

TEST(Lp, TrivialFeasible) {
  // x0 + x1 <= 1, 0 <= x <= 1.
  const auto x = lp_feasible({{1, 1}}, {1}, {1, 1});
  ASSERT_TRUE(x.has_value());
  EXPECT_LE((*x)[0] + (*x)[1], 1.0 + 1e-6);
}

TEST(Lp, InfeasibleByBounds) {
  // -x0 <= -2 (x0 >= 2) but x0 <= 1.
  EXPECT_FALSE(lp_feasible({{-1}}, {-2}, {1}).has_value());
}

TEST(Lp, EqualityLikeSandwich) {
  // 0.5 <= x0 <= 0.5 expressed as x0 <= 0.5 and -x0 <= -0.5.
  const auto x = lp_feasible({{1}, {-1}}, {0.5, -0.5}, {1});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 0.5, 1e-6);
}

TEST(Lp, SolutionSatisfiesAllConstraints) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::vector<double>> a;
    std::vector<double> b;
    for (int r = 0; r < 6; ++r) {
      std::vector<double> row(4);
      for (auto& v : row) v = rng.range(-2, 2);
      a.push_back(row);
      b.push_back(static_cast<double>(rng.range(-1, 3)));
    }
    const auto x = lp_feasible(a, b, std::vector<double>(4, 1.0));
    if (!x) continue;
    for (std::size_t r = 0; r < a.size(); ++r) {
      double lhs = 0;
      for (std::size_t j = 0; j < 4; ++j) lhs += a[r][j] * (*x)[j];
      EXPECT_LE(lhs, b[r] + 1e-6) << "trial " << trial << " row " << r;
    }
    for (double v : *x) {
      EXPECT_GE(v, -1e-9);
      EXPECT_LE(v, 1.0 + 1e-9);
    }
  }
}

// --------------------------------------------------------------- classes

TEST(Classes, HornDetection) {
  Cnf f(3);
  f.add_clause({neg(0), neg(1), pos(2)});
  f.add_clause({neg(2)});
  EXPECT_TRUE(is_horn(f));
  f.add_clause({pos(0), pos(1)});
  EXPECT_FALSE(is_horn(f));
}

TEST(Classes, ReverseHornDetection) {
  Cnf f(3);
  f.add_clause({pos(0), pos(1), neg(2)});
  EXPECT_TRUE(is_reverse_horn(f));
  f.add_clause({neg(0), neg(1)});
  EXPECT_FALSE(is_reverse_horn(f));
}

TEST(Classes, HiddenHornFindsRenaming) {
  // (x0 ∨ x1)(x0 ∨ x2): flipping x0 makes it Horn.
  Cnf f(3);
  f.add_clause({pos(0), pos(1)});
  f.add_clause({pos(0), pos(2)});
  const auto flip = hidden_horn_renaming(f);
  ASSERT_TRUE(flip.has_value());
  // Verify: after renaming, every clause has <= 1 positive literal.
  for (const Clause& c : f.clauses()) {
    std::size_t positives = 0;
    for (Lit l : c)
      if (l.negated() == (*flip)[l.var()]) ++positives;
    EXPECT_LE(positives, 1u);
  }
}

TEST(Classes, HornIsTriviallyHiddenHorn) {
  Cnf f(3);
  f.add_clause({neg(0), neg(1), pos(2)});
  EXPECT_TRUE(hidden_horn_renaming(f).has_value());
}

TEST(Classes, NotHiddenHorn) {
  // All 4 sign patterns on (x0, x1) — no renaming can kill all positives.
  Cnf f(2);
  f.add_clause({pos(0), pos(1)});
  f.add_clause({pos(0), neg(1)});
  f.add_clause({neg(0), pos(1)});
  f.add_clause({neg(0), neg(1)});
  // Each is a 2-clause though — renaming needs <= 1 positive per clause;
  // with all four sign patterns present it is impossible.
  EXPECT_FALSE(hidden_horn_renaming(f).has_value());
}

TEST(Classes, QHornAcceptsHorn2SatMixture) {
  // Horn part on {0,1,2}, 2-SAT part on {3,4}: q-Horn via a=0 / a=1/2.
  Cnf f(5);
  f.add_clause({neg(0), neg(1), pos(2)});
  f.add_clause({pos(3), pos(4)});
  f.add_clause({neg(3), pos(4)});
  const QHorn q = q_horn(f);
  EXPECT_TRUE(q.is_qhorn);
  // The witness must satisfy every clause inequality.
  for (const Clause& c : f.clauses()) {
    double sum = 0;
    for (Lit l : c)
      sum += l.negated() ? 1.0 - q.alpha[l.var()] : q.alpha[l.var()];
    EXPECT_LE(sum, 1.0 + 1e-6);
  }
}

TEST(Classes, QHornRejectsFullSignPatternTriples) {
  // Classic non-q-Horn core: three 3-clauses over {0,1,2} whose LP demands
  // sum over each of the clause patterns <= 1 with conflicting weights.
  Cnf f(3);
  f.add_clause({pos(0), pos(1), pos(2)});
  f.add_clause({neg(0), neg(1), pos(2)});
  f.add_clause({pos(0), neg(1), neg(2)});
  f.add_clause({neg(0), pos(1), neg(2)});
  EXPECT_FALSE(q_horn(f).is_qhorn);
}

TEST(Classes, QHornSizeGuard) {
  Cnf f(1000);
  EXPECT_THROW(q_horn(f, 400), std::invalid_argument);
}

TEST(Classes, AtpgSatOfExampleIsNotQHorn) {
  // §3.1's punchline on the paper's own example: the ATPG-SAT formula for
  // f s-a-1 on Figure 4(a) is not q-Horn.
  const net::Network n = gen::fig4a_network();
  const fault::AtpgCircuit atpg = fault::build_atpg_circuit(
      n, {*n.find("f"), fault::StuckAtFault::kStem, true});
  const Cnf f = encode_circuit_sat(atpg.miter);
  const ClassReport report = classify(f);
  EXPECT_FALSE(report.horn);
  EXPECT_FALSE(report.two_sat);
  EXPECT_FALSE(report.qhorn);
  EXPECT_TRUE(report.qhorn_checked);
}

TEST(Classes, ToStringFormats) {
  ClassReport r;
  r.qhorn_checked = true;
  EXPECT_EQ(to_string(r), "none");
  r.horn = r.qhorn = true;
  EXPECT_EQ(to_string(r), "horn,q-horn");
}

class QHornSubsumption : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QHornSubsumption, TwoSatAlwaysQHorn) {
  // 2-SAT ⊂ q-Horn (a = 1/2 everywhere): the LP must always be feasible.
  const Cnf f = random_2cnf(8, 14, GetParam() + 900);
  EXPECT_TRUE(q_horn(f).is_qhorn);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QHornSubsumption,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace cwatpg::sat
