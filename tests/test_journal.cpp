// Unit coverage for the crash-recovery journal (src/svc/journal.*): the
// cwatpg.journal/1 line format, CRC validation, torn-tail and bit-flip
// corruption handling, and the accepted-without-terminal recovery rule
// the restarted daemon builds its `interrupted` report on.
#include "svc/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "util/failpoint.hpp"

namespace cwatpg::svc {
namespace {

#define SKIP_WITHOUT_FAILPOINTS() \
  if (!fp::kEnabled) GTEST_SKIP() << "built with CWATPG_FAILPOINTS=OFF"

/// Self-deleting journal path under gtest's temp dir.
struct TempJournal {
  std::string path;
  explicit TempJournal(const char* name) : path(::testing::TempDir() + name) {
    std::remove(path.c_str());
  }
  ~TempJournal() { std::remove(path.c_str()); }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

TEST(JournalCrc, MatchesTheCanonicalCheckValue) {
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);  // CRC-32/ISO-HDLC "check"
}

TEST(Journal, MissingFileIsACleanFirstBoot) {
  const Journal::Recovery rec =
      Journal::recover(::testing::TempDir() + "never_written.jsonl");
  EXPECT_EQ(rec.records, 0u);
  EXPECT_EQ(rec.corrupt, 0u);
  EXPECT_TRUE(rec.interrupted.empty());
}

TEST(Journal, CleanLifecycleLeavesNothingOpen) {
  TempJournal f("journal_clean.jsonl");
  {
    Journal j(f.path);
    j.record_accepted(7, "run_atpg", "deadbeef");
    j.record_terminal(7, "ok");
    j.record_accepted(8, "fsim", "deadbeef");
    j.record_terminal(8, "error:cancelled");
  }
  const Journal::Recovery rec = Journal::recover(f.path);
  EXPECT_EQ(rec.records, 4u);
  EXPECT_EQ(rec.corrupt, 0u);
  EXPECT_TRUE(rec.interrupted.empty());
}

TEST(Journal, AcceptedWithoutTerminalIsInterrupted) {
  TempJournal f("journal_open.jsonl");
  {
    Journal j(f.path);
    j.record_accepted(3, "run_atpg", "c3");
    j.record_accepted(4, "fsim", "c4");
    j.record_terminal(3, "ok");  // job 4 is the one the "crash" abandoned
  }
  const Journal::Recovery rec = Journal::recover(f.path);
  ASSERT_EQ(rec.interrupted.size(), 1u);
  EXPECT_EQ(rec.interrupted[0].job, 4u);
  EXPECT_EQ(rec.interrupted[0].kind, "fsim");
  EXPECT_EQ(rec.interrupted[0].circuit, "c4");
}

TEST(Journal, InterruptedRecordClosesTheJobForGood) {
  TempJournal f("journal_interrupted.jsonl");
  {
    Journal j(f.path);
    j.record_accepted(9, "run_atpg", "c9");
    // What a recovering daemon writes for an orphan it found: a second
    // restart must NOT re-report job 9.
    j.record_interrupted(9);
  }
  const Journal::Recovery rec = Journal::recover(f.path);
  EXPECT_EQ(rec.records, 2u);
  EXPECT_TRUE(rec.interrupted.empty());
}

TEST(Journal, TornTailIsCountedCorruptNotTrusted) {
  SKIP_WITHOUT_FAILPOINTS();
  TempJournal f("journal_torn.jsonl");
  {
    Journal j(f.path);
    j.record_accepted(1, "run_atpg", "c1");
    // The terminal append is torn mid-line — the on-disk state a crash
    // during write leaves behind.
    fp::ScheduleScope fps("svc.journal.torn=always");
    j.record_terminal(1, "ok");
  }
  const Journal::Recovery rec = Journal::recover(f.path);
  EXPECT_EQ(rec.records, 1u);
  EXPECT_EQ(rec.corrupt, 1u);
  // The torn terminal must not count: job 1 is still open => interrupted.
  ASSERT_EQ(rec.interrupted.size(), 1u);
  EXPECT_EQ(rec.interrupted[0].job, 1u);
}

TEST(Journal, BitFlipFailsTheChecksum) {
  TempJournal f("journal_bitflip.jsonl");
  {
    Journal j(f.path);
    j.record_accepted(5, "run_atpg", "c5");
    j.record_terminal(5, "ok");
  }
  std::string content = slurp(f.path);
  const std::size_t pos = content.find("\"terminal\"");
  ASSERT_NE(pos, std::string::npos);
  content[pos + 1] ^= 0x20;  // 't' -> 'T' inside the checksummed payload
  std::ofstream(f.path, std::ios::trunc) << content;

  const Journal::Recovery rec = Journal::recover(f.path);
  EXPECT_EQ(rec.records, 1u);
  EXPECT_EQ(rec.corrupt, 1u);
  ASSERT_EQ(rec.interrupted.size(), 1u)
      << "a corrupted terminal leaves the job open";
  EXPECT_EQ(rec.interrupted[0].job, 5u);
}

TEST(Journal, GarbageLinesAreSkippedNotFatal) {
  TempJournal f("journal_garbage.jsonl");
  {
    Journal j(f.path);
    j.record_accepted(2, "fsim", "c2");
  }
  {
    std::ofstream out(f.path, std::ios::app);
    out << "not a journal line\n";
    out << "00000000 {\"valid-looking\":\"but wrong crc\"}\n";
    out << "zzzzzzzz {}\n";
    out << "\n";  // blank lines are ignored, not corrupt
  }
  const Journal::Recovery rec = Journal::recover(f.path);
  EXPECT_EQ(rec.records, 1u);
  EXPECT_EQ(rec.corrupt, 3u);
  ASSERT_EQ(rec.interrupted.size(), 1u);
  EXPECT_EQ(rec.interrupted[0].job, 2u);
}

TEST(Journal, UnknownEventIsForwardCompatibleNotCorrupt) {
  TempJournal f("journal_future.jsonl");
  {
    Journal j(f.path);
    j.record_accepted(6, "run_atpg", "c6");
    j.record_terminal(6, "ok");
  }
  {
    // A checksum-VALID record from a future schema revision: an older
    // reader must skip it without declaring the file damaged.
    const std::string payload =
        "{\"schema\":\"cwatpg.journal/1\",\"seq\":99,"
        "\"event\":\"compacted\",\"job\":0}";
    char hex[16];
    std::snprintf(hex, sizeof hex, "%08x", crc32(payload));
    std::ofstream(f.path, std::ios::app) << hex << " " << payload << "\n";
  }
  const Journal::Recovery rec = Journal::recover(f.path);
  EXPECT_EQ(rec.records, 3u);
  EXPECT_EQ(rec.corrupt, 0u);
  EXPECT_TRUE(rec.interrupted.empty());
}

TEST(Journal, IoErrorFailpointSurfacesAsException) {
  SKIP_WITHOUT_FAILPOINTS();
  TempJournal f("journal_io_error.jsonl");
  Journal j(f.path);
  fp::ScheduleScope fps("svc.journal.io_error=always");
  EXPECT_THROW(j.record_accepted(1, "run_atpg", "c1"), std::runtime_error);
}

TEST(Journal, UnopenablePathThrowsUpFront) {
  EXPECT_THROW(Journal("/nonexistent-dir/cwatpg.jsonl"), std::runtime_error);
}

TEST(Journal, IdReuseTracksTheLatestAcceptance) {
  TempJournal f("journal_reuse.jsonl");
  {
    Journal j(f.path);
    j.record_accepted(1, "run_atpg", "first");
    j.record_terminal(1, "ok");
    j.record_accepted(1, "run_atpg", "second");  // same id, new job — open
  }
  const Journal::Recovery rec = Journal::recover(f.path);
  ASSERT_EQ(rec.interrupted.size(), 1u);
  EXPECT_EQ(rec.interrupted[0].circuit, "second");
}

}  // namespace
}  // namespace cwatpg::svc
