// Unit coverage for the crash-recovery journal (src/svc/journal.*): the
// cwatpg.journal/1 line format, CRC validation, torn-tail and bit-flip
// corruption handling, and the accepted-without-terminal recovery rule
// the restarted daemon builds its `interrupted` report on.
#include "svc/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "util/failpoint.hpp"

namespace cwatpg::svc {
namespace {

#define SKIP_WITHOUT_FAILPOINTS() \
  if (!fp::kEnabled) GTEST_SKIP() << "built with CWATPG_FAILPOINTS=OFF"

/// Self-deleting journal path under gtest's temp dir.
struct TempJournal {
  std::string path;
  explicit TempJournal(const char* name) : path(::testing::TempDir() + name) {
    std::remove(path.c_str());
  }
  ~TempJournal() { std::remove(path.c_str()); }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

/// The `"seq":N` value of every line of the journal file, in file order.
std::vector<std::uint64_t> seqs_in_file(const std::string& path) {
  std::vector<std::uint64_t> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t pos = line.find("\"seq\":");
    if (pos == std::string::npos) continue;
    out.push_back(std::stoull(line.substr(pos + 6)));
  }
  return out;
}

TEST(JournalCrc, MatchesTheCanonicalCheckValue) {
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);  // CRC-32/ISO-HDLC "check"
}

TEST(Journal, MissingFileIsACleanFirstBoot) {
  const Journal::Recovery rec =
      Journal::recover(::testing::TempDir() + "never_written.jsonl");
  EXPECT_EQ(rec.records, 0u);
  EXPECT_EQ(rec.corrupt, 0u);
  EXPECT_TRUE(rec.interrupted.empty());
}

TEST(Journal, CleanLifecycleLeavesNothingOpen) {
  TempJournal f("journal_clean.jsonl");
  {
    Journal j(f.path);
    j.record_accepted(7, "run_atpg", "deadbeef");
    j.record_terminal(7, "ok");
    j.record_accepted(8, "fsim", "deadbeef");
    j.record_terminal(8, "error:cancelled");
  }
  const Journal::Recovery rec = Journal::recover(f.path);
  EXPECT_EQ(rec.records, 4u);
  EXPECT_EQ(rec.corrupt, 0u);
  EXPECT_TRUE(rec.interrupted.empty());
}

TEST(Journal, AcceptedWithoutTerminalIsInterrupted) {
  TempJournal f("journal_open.jsonl");
  {
    Journal j(f.path);
    j.record_accepted(3, "run_atpg", "c3");
    j.record_accepted(4, "fsim", "c4");
    j.record_terminal(3, "ok");  // job 4 is the one the "crash" abandoned
  }
  const Journal::Recovery rec = Journal::recover(f.path);
  ASSERT_EQ(rec.interrupted.size(), 1u);
  EXPECT_EQ(rec.interrupted[0].job, 4u);
  EXPECT_EQ(rec.interrupted[0].kind, "fsim");
  EXPECT_EQ(rec.interrupted[0].circuit, "c4");
}

TEST(Journal, InterruptedRecordClosesTheJobForGood) {
  TempJournal f("journal_interrupted.jsonl");
  {
    Journal j(f.path);
    j.record_accepted(9, "run_atpg", "c9");
    // What a recovering daemon writes for an orphan it found: a second
    // restart must NOT re-report job 9.
    j.record_interrupted(9);
  }
  const Journal::Recovery rec = Journal::recover(f.path);
  EXPECT_EQ(rec.records, 2u);
  EXPECT_TRUE(rec.interrupted.empty());
}

TEST(Journal, TornTailIsCountedCorruptNotTrusted) {
  SKIP_WITHOUT_FAILPOINTS();
  TempJournal f("journal_torn.jsonl");
  {
    Journal j(f.path);
    j.record_accepted(1, "run_atpg", "c1");
    // The terminal append is torn mid-line — the on-disk state a crash
    // during write leaves behind.
    fp::ScheduleScope fps("svc.journal.torn=always");
    j.record_terminal(1, "ok");
  }
  const Journal::Recovery rec = Journal::recover(f.path);
  EXPECT_EQ(rec.records, 1u);
  EXPECT_EQ(rec.corrupt, 1u);
  // The torn terminal must not count: job 1 is still open => interrupted.
  ASSERT_EQ(rec.interrupted.size(), 1u);
  EXPECT_EQ(rec.interrupted[0].job, 1u);
}

TEST(Journal, BitFlipFailsTheChecksum) {
  TempJournal f("journal_bitflip.jsonl");
  {
    Journal j(f.path);
    j.record_accepted(5, "run_atpg", "c5");
    j.record_terminal(5, "ok");
  }
  std::string content = slurp(f.path);
  const std::size_t pos = content.find("\"terminal\"");
  ASSERT_NE(pos, std::string::npos);
  content[pos + 1] ^= 0x20;  // 't' -> 'T' inside the checksummed payload
  std::ofstream(f.path, std::ios::trunc) << content;

  const Journal::Recovery rec = Journal::recover(f.path);
  EXPECT_EQ(rec.records, 1u);
  EXPECT_EQ(rec.corrupt, 1u);
  ASSERT_EQ(rec.interrupted.size(), 1u)
      << "a corrupted terminal leaves the job open";
  EXPECT_EQ(rec.interrupted[0].job, 5u);
}

TEST(Journal, GarbageLinesAreSkippedNotFatal) {
  TempJournal f("journal_garbage.jsonl");
  {
    Journal j(f.path);
    j.record_accepted(2, "fsim", "c2");
  }
  {
    std::ofstream out(f.path, std::ios::app);
    out << "not a journal line\n";
    out << "00000000 {\"valid-looking\":\"but wrong crc\"}\n";
    out << "zzzzzzzz {}\n";
    out << "\n";  // blank lines are ignored, not corrupt
  }
  const Journal::Recovery rec = Journal::recover(f.path);
  EXPECT_EQ(rec.records, 1u);
  EXPECT_EQ(rec.corrupt, 3u);
  ASSERT_EQ(rec.interrupted.size(), 1u);
  EXPECT_EQ(rec.interrupted[0].job, 2u);
}

TEST(Journal, UnknownEventIsForwardCompatibleNotCorrupt) {
  TempJournal f("journal_future.jsonl");
  {
    Journal j(f.path);
    j.record_accepted(6, "run_atpg", "c6");
    j.record_terminal(6, "ok");
  }
  {
    // A checksum-VALID record from a future schema revision: an older
    // reader must skip it without declaring the file damaged.
    const std::string payload =
        "{\"schema\":\"cwatpg.journal/1\",\"seq\":99,"
        "\"event\":\"compacted\",\"job\":0}";
    char hex[16];
    std::snprintf(hex, sizeof hex, "%08x", crc32(payload));
    std::ofstream(f.path, std::ios::app) << hex << " " << payload << "\n";
  }
  const Journal::Recovery rec = Journal::recover(f.path);
  EXPECT_EQ(rec.records, 3u);
  EXPECT_EQ(rec.corrupt, 0u);
  EXPECT_TRUE(rec.interrupted.empty());
}

TEST(Journal, IoErrorFailpointSurfacesAsException) {
  SKIP_WITHOUT_FAILPOINTS();
  TempJournal f("journal_io_error.jsonl");
  Journal j(f.path);
  fp::ScheduleScope fps("svc.journal.io_error=always");
  EXPECT_THROW(j.record_accepted(1, "run_atpg", "c1"), std::runtime_error);
}

TEST(Journal, UnopenablePathThrowsUpFront) {
  EXPECT_THROW(Journal("/nonexistent-dir/cwatpg.jsonl"), std::runtime_error);
}

TEST(Journal, ConcurrentAppendsGetUniqueFileOrderedSeqs) {
  // The server appends from three different threads (reader accepts,
  // workers finish, watchdog detaches). The seq must be stamped under the
  // append lock: every record a unique value, and file order == seq order.
  TempJournal f("journal_threads.jsonl");
  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 16;
  {
    Journal j(f.path);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&j, t] {
        for (int i = 0; i < kJobsPerThread; ++i) {
          const std::uint64_t job =
              static_cast<std::uint64_t>(t * kJobsPerThread + i);
          j.record_accepted(job, "run_atpg", "c");
          j.record_terminal(job, "ok");
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const std::vector<std::uint64_t> seqs = seqs_in_file(f.path);
  ASSERT_EQ(seqs.size(),
            static_cast<std::size_t>(2 * kThreads * kJobsPerThread));
  for (std::size_t i = 0; i < seqs.size(); ++i)
    EXPECT_EQ(seqs[i], i + 1) << "seq gap or duplicate at line " << i;
}

TEST(Journal, SeqsContinueAcrossProcessGenerations) {
  TempJournal f("journal_generations.jsonl");
  {
    Journal gen1(f.path);
    gen1.record_accepted(1, "run_atpg", "old");  // dies open: seq 1
  }
  // Restart, the server way: recover first, seed the new journal past
  // everything on disk, close out the orphan, accept new work.
  const Journal::Recovery rec1 = Journal::recover(f.path);
  EXPECT_EQ(rec1.max_seq, 1u);
  {
    Journal gen2(f.path, rec1.max_seq + 1);
    gen2.record_interrupted(1);                  // seq 2
    gen2.record_accepted(2, "fsim", "new");      // dies open: seq 3
  }
  const std::vector<std::uint64_t> seqs = seqs_in_file(f.path);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 2, 3}));
  // A second recovery over the multi-generation file sees one open job
  // (the gen-2 one) and the full monotonic seq history.
  const Journal::Recovery rec2 = Journal::recover(f.path);
  EXPECT_EQ(rec2.max_seq, 3u);
  ASSERT_EQ(rec2.interrupted.size(), 1u);
  EXPECT_EQ(rec2.interrupted[0].job, 2u);
  EXPECT_EQ(rec2.interrupted[0].seq, 3u);
}

TEST(Journal, IdReuseTracksTheLatestAcceptance) {
  TempJournal f("journal_reuse.jsonl");
  {
    Journal j(f.path);
    j.record_accepted(1, "run_atpg", "first");
    j.record_terminal(1, "ok");
    j.record_accepted(1, "run_atpg", "second");  // same id, new job — open
  }
  const Journal::Recovery rec = Journal::recover(f.path);
  ASSERT_EQ(rec.interrupted.size(), 1u);
  EXPECT_EQ(rec.interrupted[0].circuit, "second");
}

}  // namespace
}  // namespace cwatpg::svc
