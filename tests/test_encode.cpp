#include <gtest/gtest.h>

#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "sat/encode.hpp"
#include "util/rng.hpp"

namespace cwatpg::sat {
namespace {

/// Property: for every complete input assignment, f(C)'s gate clauses are
/// satisfied exactly when every variable equals its simulated node value.
void expect_encoding_consistent(const net::Network& n, std::uint64_t seed) {
  const Cnf cnf = encode_constraints(n);
  ASSERT_EQ(cnf.num_vars(), n.node_count());
  Rng rng(seed);
  const std::size_t trials = n.inputs().size() <= 8
                                 ? (std::size_t{1} << n.inputs().size())
                                 : 64;
  for (std::size_t t = 0; t < trials; ++t) {
    std::vector<bool> pattern(n.inputs().size());
    for (std::size_t i = 0; i < pattern.size(); ++i)
      pattern[i] = n.inputs().size() <= 8 ? ((t >> i) & 1) : rng.chance(0.5);
    const auto values = n.eval(pattern);
    std::vector<bool> assignment(values.begin(), values.end());
    EXPECT_TRUE(cnf.eval(assignment)) << "trial " << t;
    // Flipping any gate variable must violate some clause.
    for (net::NodeId id = 0; id < n.node_count(); ++id) {
      if (n.type(id) == net::GateType::kInput) continue;
      assignment[id] = !assignment[id];
      EXPECT_FALSE(cnf.eval(assignment)) << "node " << id;
      assignment[id] = !assignment[id];
    }
    if (n.inputs().size() > 8 && t > 16) break;
  }
}

TEST(Encode, AndGateClauses) {
  Cnf f(3);
  const Var ins[] = {0, 1};
  add_gate_clauses(f, net::GateType::kAnd, 2, ins);
  EXPECT_EQ(f.num_clauses(), 3u);
  // z=1 requires a=b=1.
  const std::vector<bool> good = {true, true, true};
  const std::vector<bool> bad = {false, true, true};
  EXPECT_TRUE(f.eval(good));
  EXPECT_FALSE(f.eval(bad));
}

TEST(Encode, Figure2Shapes) {
  // The paper's Figure 2: a 2-input AND has 3 clauses, NOT has 2.
  Cnf f(5);
  const Var two[] = {0, 1};
  add_gate_clauses(f, net::GateType::kAnd, 2, two);
  EXPECT_EQ(f.num_clauses(), 3u);
  Cnf g(2);
  const Var one[] = {0};
  add_gate_clauses(g, net::GateType::kNot, 1, one);
  EXPECT_EQ(g.num_clauses(), 2u);
}

TEST(Encode, XorRequiresTwoInputs) {
  Cnf f(4);
  const Var three[] = {0, 1, 2};
  EXPECT_THROW(add_gate_clauses(f, net::GateType::kXor, 3, three),
               std::invalid_argument);
}

TEST(Encode, ConsistencyC17) { expect_encoding_consistent(gen::c17(), 1); }

TEST(Encode, ConsistencyAdder) {
  expect_encoding_consistent(gen::ripple_carry_adder(3), 2);
}

TEST(Encode, ConsistencyDecomposedAlu) {
  expect_encoding_consistent(net::decompose(gen::simple_alu(3)), 3);
}

TEST(Encode, ConsistencyAllGateTypes) {
  net::Network n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  n.add_output(n.add_gate(net::GateType::kAnd, {a, b}), "and");
  n.add_output(n.add_gate(net::GateType::kNand, {a, b}), "nand");
  n.add_output(n.add_gate(net::GateType::kOr, {a, b}), "or");
  n.add_output(n.add_gate(net::GateType::kNor, {a, b}), "nor");
  n.add_output(n.add_gate(net::GateType::kXor, {a, b}), "xor");
  n.add_output(n.add_gate(net::GateType::kXnor, {a, b}), "xnor");
  n.add_output(n.add_gate(net::GateType::kNot, {a}), "not");
  n.add_output(n.add_gate(net::GateType::kBuf, {b}), "buf");
  expect_encoding_consistent(n, 4);
}

TEST(Encode, ConsistencyWithConstants) {
  net::Network n;
  const auto a = n.add_input("a");
  const auto c1 = n.add_const(true);
  const auto c0 = n.add_const(false);
  n.add_output(n.add_gate(net::GateType::kAnd, {a, c1}), "o1");
  n.add_output(n.add_gate(net::GateType::kOr, {a, c0}), "o2");
  expect_encoding_consistent(n, 5);
}

TEST(Encode, CircuitSatAddsObjectiveClause) {
  const net::Network n = gen::c17();
  const Cnf with = encode_circuit_sat(n);
  const Cnf without = encode_constraints(n);
  EXPECT_EQ(with.num_clauses(), without.num_clauses() + 1);
  // The last clause mentions exactly the PO variables, positively.
  const Clause& obj = with.clause(with.num_clauses() - 1);
  EXPECT_EQ(obj.size(), n.outputs().size());
  for (Lit l : obj) EXPECT_FALSE(l.negated());
}

TEST(Encode, CircuitSatNoOutputsThrows) {
  net::Network n;
  n.add_input("a");
  EXPECT_THROW(encode_circuit_sat(n), std::invalid_argument);
}

TEST(Encode, OneVariablePerNode) {
  // "f(C) has one variable for each signal net": variable v == NodeId v.
  const net::Network n = net::decompose(gen::comparator(3));
  const Cnf cnf = encode_circuit_sat(n);
  EXPECT_EQ(cnf.num_vars(), n.node_count());
}

TEST(Encode, Formula41MatchesPaperShape) {
  // 13 clauses (12 gate clauses + the output unit clause) over 9 vars.
  const Cnf f = gen::formula41();
  EXPECT_EQ(f.num_vars(), 9u);
  EXPECT_EQ(f.num_clauses(), 13u);
}

TEST(Encode, Formula41AgreesWithFig4aNetwork) {
  // The hand-written formula and the explicit-inverter network represent
  // the same function of (a..e): for each input assignment, the formula is
  // satisfiable with i bound to the simulated output value and
  // unsatisfiable with the complement.
  const net::Network n = gen::fig4a_network();
  const Cnf f = gen::formula41();  // includes output clause (i)
  for (int t = 0; t < 32; ++t) {
    std::vector<bool> pattern(5);
    for (int i = 0; i < 5; ++i) pattern[i] = (t >> i) & 1;
    const auto values = n.eval(pattern);
    const bool out = values[n.outputs()[0]];
    // Build the formula assignment a..i from simulated values.
    std::vector<bool> assign(9);
    assign[gen::kA] = pattern[0];
    assign[gen::kB] = pattern[1];
    assign[gen::kC] = pattern[2];
    assign[gen::kD] = pattern[3];
    assign[gen::kE] = pattern[4];
    assign[gen::kF] = values[*n.find("f")];
    assign[gen::kG] = values[*n.find("g")];
    assign[gen::kH] = values[*n.find("h")];
    assign[gen::kI] = values[*n.find("i")];
    EXPECT_EQ(f.eval(assign), out) << "minterm " << t;
  }
}

}  // namespace
}  // namespace cwatpg::sat
