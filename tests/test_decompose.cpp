#include <gtest/gtest.h>

#include "gen/hutton.hpp"
#include "gen/structured.hpp"
#include "netlist/decompose.hpp"
#include "netlist/simulate.hpp"
#include "util/rng.hpp"

namespace cwatpg::net {
namespace {

/// Checks functional equivalence on 256 random 64-wide pattern blocks
/// (or exhaustively when the input count is small).
void expect_equivalent(const Network& a, const Network& b,
                       std::uint64_t seed) {
  ASSERT_EQ(a.inputs().size(), b.inputs().size());
  ASSERT_EQ(a.outputs().size(), b.outputs().size());
  Rng rng(seed);
  const std::size_t blocks = a.inputs().size() <= 6 ? 1 : 16;
  for (std::size_t t = 0; t < blocks; ++t) {
    std::vector<std::uint64_t> words(a.inputs().size());
    if (a.inputs().size() <= 6) {
      // Exhaustive: bit i of word w enumerates minterms.
      for (std::size_t i = 0; i < words.size(); ++i) {
        std::uint64_t w = 0;
        for (int m = 0; m < 64; ++m)
          if ((m >> i) & 1) w |= 1ULL << m;
        words[i] = w;
      }
    } else {
      for (auto& w : words) w = rng();
    }
    const SimFrame fa = simulate64(a, words);
    const SimFrame fb = simulate64(b, words);
    for (std::size_t o = 0; o < a.outputs().size(); ++o)
      ASSERT_EQ(fa[a.outputs()[o]], fb[b.outputs()[o]]) << "output " << o;
  }
}

TEST(Decompose, ResultIsDecomposedForm) {
  const Network src = gen::simple_alu(4);
  const Network dec = decompose(src);
  EXPECT_TRUE(is_decomposed(dec));
  EXPECT_NO_THROW(dec.validate());
}

TEST(Decompose, PreservesIoCounts) {
  const Network src = gen::comparator(5);
  const Network dec = decompose(src);
  EXPECT_EQ(dec.inputs().size(), src.inputs().size());
  EXPECT_EQ(dec.outputs().size(), src.outputs().size());
}

TEST(Decompose, EquivalenceAdder) {
  const Network src = gen::ripple_carry_adder(5);
  expect_equivalent(src, decompose(src), 1);
}

TEST(Decompose, EquivalenceComparator) {
  const Network src = gen::comparator(6);
  expect_equivalent(src, decompose(src), 2);
}

TEST(Decompose, EquivalenceParityTree) {
  const Network src = gen::parity_tree(16, 4);
  expect_equivalent(src, decompose(src), 3);
}

TEST(Decompose, EquivalenceMultiplier) {
  const Network src = gen::array_multiplier(4);
  expect_equivalent(src, decompose(src), 4);
}

TEST(Decompose, EquivalenceDecoder) {
  const Network src = gen::decoder(4);
  expect_equivalent(src, decompose(src), 5);
}

TEST(Decompose, EquivalenceWideGates) {
  Network src;
  std::vector<NodeId> pis;
  for (int i = 0; i < 9; ++i)
    pis.push_back(src.add_input("x" + std::to_string(i)));
  src.add_output(src.add_gate(GateType::kAnd, pis), "wide_and");
  src.add_output(src.add_gate(GateType::kNor, pis), "wide_nor");
  src.add_output(src.add_gate(GateType::kXor, pis), "wide_xor");
  src.add_output(src.add_gate(GateType::kXnor, pis), "wide_xnor");
  src.add_output(src.add_gate(GateType::kNand, pis), "wide_nand");
  const Network dec = decompose(src);
  EXPECT_TRUE(is_decomposed(dec));
  expect_equivalent(src, dec, 6);
}

TEST(Decompose, RemovesBuffers) {
  Network src;
  const NodeId a = src.add_input("a");
  const NodeId b1 = src.add_gate(GateType::kBuf, {a});
  const NodeId b2 = src.add_gate(GateType::kBuf, {b1});
  src.add_output(b2, "o");
  const Network dec = decompose(src);
  EXPECT_EQ(dec.gate_count(), 0u);
  expect_equivalent(src, dec, 7);
}

TEST(Decompose, FaninBoundHonored2) {
  const Network src = gen::decoder(5);  // wide AND terms
  const Network dec = decompose(src, {.max_fanin = 2});
  EXPECT_TRUE(is_decomposed(dec, 2));
  EXPECT_FALSE(is_decomposed(gen::decoder(5), 2));
  expect_equivalent(src, dec, 8);
}

TEST(Decompose, FaninBoundHonored4) {
  const Network src = gen::decoder(5);
  const Network dec = decompose(src, {.max_fanin = 4});
  EXPECT_TRUE(is_decomposed(dec, 4));
  EXPECT_LE(dec.max_fanin(), 4u);
}

TEST(Decompose, RejectsMaxFaninBelow2) {
  EXPECT_THROW(decompose(gen::decoder(3), {.max_fanin = 1}),
               std::invalid_argument);
}

TEST(Decompose, PreservesConstants) {
  Network src;
  const NodeId a = src.add_input("a");
  const NodeId c = src.add_const(true);
  src.add_output(src.add_gate(GateType::kAnd, {a, c}), "o");
  const Network dec = decompose(src);
  expect_equivalent(src, dec, 9);
}

TEST(Decompose, IdempotentOnDecomposedForm) {
  const Network once = decompose(gen::simple_alu(3));
  const Network twice = decompose(once);
  EXPECT_EQ(once.gate_count(), twice.gate_count());
}

TEST(Decompose, HuttonCircuitsStayEquivalent) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    gen::HuttonParams p;
    p.num_gates = 120;
    p.num_inputs = 10;
    p.num_outputs = 5;
    p.seed = seed;
    const Network src = gen::hutton_random(p);
    expect_equivalent(src, decompose(src), seed);
  }
}

class DecomposeAllFamilies
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DecomposeAllFamilies, AdderEquivalenceSweep) {
  const std::size_t bits = GetParam();
  const Network src = gen::ripple_carry_adder(bits);
  const Network dec = decompose(src);
  EXPECT_TRUE(is_decomposed(dec));
  expect_equivalent(src, dec, bits);
}

INSTANTIATE_TEST_SUITE_P(Widths, DecomposeAllFamilies,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16));

}  // namespace
}  // namespace cwatpg::net
