#include <gtest/gtest.h>

#include "fault/testability.hpp"
#include "fault/tegus.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"

namespace cwatpg::fault {
namespace {

TEST(Scoap, PrimaryInputsAreUnitControllable) {
  const net::Network n = gen::c17();
  const Scoap s = compute_scoap(n);
  for (net::NodeId pi : n.inputs()) {
    EXPECT_EQ(s.cc0[pi], 1u);
    EXPECT_EQ(s.cc1[pi], 1u);
  }
}

TEST(Scoap, AndGateControllability) {
  net::Network n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto g = n.add_gate(net::GateType::kAnd, {a, b});
  n.add_output(g, "o");
  const Scoap s = compute_scoap(n);
  EXPECT_EQ(s.cc1[g], 3u);  // both inputs to 1: 1+1+1
  EXPECT_EQ(s.cc0[g], 2u);  // one input to 0: 1+1
}

TEST(Scoap, OrNorNotDuals) {
  net::Network n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto o = n.add_gate(net::GateType::kOr, {a, b});
  const auto nr = n.add_gate(net::GateType::kNor, {a, b});
  const auto nt = n.add_gate(net::GateType::kNot, {a});
  n.add_output(o, "x");
  n.add_output(nr, "y");
  n.add_output(nt, "z");
  const Scoap s = compute_scoap(n);
  EXPECT_EQ(s.cc0[o], 3u);
  EXPECT_EQ(s.cc1[o], 2u);
  EXPECT_EQ(s.cc0[nr], 2u);  // NOR to 0 = any input 1
  EXPECT_EQ(s.cc1[nr], 3u);
  EXPECT_EQ(s.cc0[nt], 2u);
  EXPECT_EQ(s.cc1[nt], 2u);
}

TEST(Scoap, XorControllability) {
  net::Network n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto x = n.add_gate(net::GateType::kXor, {a, b});
  n.add_output(x, "o");
  const Scoap s = compute_scoap(n);
  EXPECT_EQ(s.cc1[x], 3u);  // (0,1) or (1,0)
  EXPECT_EQ(s.cc0[x], 3u);  // (0,0) or (1,1)
}

TEST(Scoap, ObservabilityAlongChain) {
  // a -> NOT -> NOT -> PO: observability decreases toward the output.
  net::Network n;
  const auto a = n.add_input("a");
  const auto g1 = n.add_gate(net::GateType::kNot, {a});
  const auto g2 = n.add_gate(net::GateType::kNot, {g1});
  n.add_output(g2, "o");
  const Scoap s = compute_scoap(n);
  EXPECT_EQ(s.observability[g2], 0u);
  EXPECT_EQ(s.observability[g1], 1u);
  EXPECT_EQ(s.observability[a], 2u);
}

TEST(Scoap, SideInputCostsCount) {
  // Observing `a` through AND(a, b) costs setting b to 1.
  net::Network n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  n.add_output(n.add_gate(net::GateType::kAnd, {a, b}), "o");
  const Scoap s = compute_scoap(n);
  EXPECT_EQ(s.observability[a], 2u);  // CO(gate)=0 + CC1(b)=1 + 1
}

TEST(Scoap, UnobservableNetsFlagged) {
  net::Network n;
  const auto a = n.add_input("a");
  const auto dead = n.add_gate(net::GateType::kNot, {a});
  n.add_gate(net::GateType::kNot, {dead});  // dangling
  n.add_output(n.add_gate(net::GateType::kBuf, {a}), "o");
  const Scoap s = compute_scoap(n);
  EXPECT_EQ(s.observability[dead], Scoap::kUnreachable);
}

TEST(Scoap, ConstantsOneSided) {
  net::Network n;
  const auto c = n.add_const(true);
  const auto a = n.add_input("a");
  n.add_output(n.add_gate(net::GateType::kAnd, {a, c}), "o");
  const Scoap s = compute_scoap(n);
  EXPECT_EQ(s.cc1[c], 0u);
  EXPECT_EQ(s.cc0[c], Scoap::kUnreachable);
}

TEST(Scoap, DetectCostMatchesComponents) {
  const net::Network n = gen::c17();
  const Scoap s = compute_scoap(n);
  const net::NodeId g11 = *n.find("11");
  const StuckAtFault f{g11, StuckAtFault::kStem, true};
  EXPECT_EQ(s.detect_cost(n, f), s.cc0[g11] + s.observability[g11]);
}

TEST(Scoap, UnreachableFaultInfiniteCost) {
  net::Network n;
  const auto a = n.add_input("a");
  const auto dead = n.add_gate(net::GateType::kNot, {a});
  n.add_output(n.add_gate(net::GateType::kBuf, {a}), "o");
  const Scoap s = compute_scoap(n);
  EXPECT_EQ(s.detect_cost(n, {dead, StuckAtFault::kStem, false}),
            Scoap::kUnreachable);
}

TEST(Scoap, HardFaultsScoreHigherOnAverage) {
  // Sanity on a real circuit: faults the random-pattern phase detects
  // (easy) must average a lower SCOAP cost than those needing SAT.
  const net::Network n = net::decompose(gen::comparator(6));
  const Scoap s = compute_scoap(n);
  AtpgOptions opts;
  opts.random_blocks = 1;  // 64 patterns: only genuinely easy faults drop
  const AtpgResult r = run_atpg(n, opts);
  double easy_sum = 0, hard_sum = 0;
  std::size_t easy = 0, hard = 0;
  for (const auto& o : r.outcomes) {
    const std::uint32_t cost = s.detect_cost(n, o.fault);
    if (cost == Scoap::kUnreachable) continue;
    if (o.status == FaultStatus::kDroppedRandom) {
      easy_sum += cost;
      ++easy;
    } else if (o.status == FaultStatus::kDetected) {
      hard_sum += cost;
      ++hard;
    }
  }
  ASSERT_GT(easy, 0u);
  ASSERT_GT(hard, 0u);
  EXPECT_LT(easy_sum / static_cast<double>(easy),
            hard_sum / static_cast<double>(hard));
}

}  // namespace
}  // namespace cwatpg::fault
