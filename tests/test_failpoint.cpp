// Unit coverage for the deterministic failpoint registry (src/util/
// failpoint.*): schedule grammar, firing modes, per-domain hit counters,
// probabilistic replay determinism, and the RAII scopes the rest of the
// suite builds chaos tests on. Everything here runs single-threaded; the
// cross-thread determinism story is exercised end-to-end by test_svc and
// bench_chaos.
#include "util/failpoint.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace cwatpg::fp {
namespace {

/// Whole-suite gate: with CWATPG_FAILPOINTS=OFF the macros fold to
/// constants and there is nothing to test.
#define SKIP_WHEN_COMPILED_OUT() \
  if (!kEnabled) GTEST_SKIP() << "built with CWATPG_FAILPOINTS=OFF"

/// Fresh-registry guard: every test starts and ends unarmed with zeroed
/// counters, so ordering between tests can't matter.
struct CleanRegistry {
  CleanRegistry() { Registry::instance().reset(); }
  ~CleanRegistry() { Registry::instance().reset(); }
};

// ---- spec grammar ---------------------------------------------------------

TEST(FailpointSpec, ParsesEveryMode) {
  EXPECT_EQ(parse_spec("off").mode, Mode::kOff);
  EXPECT_EQ(parse_spec("always").mode, Mode::kAlways);
  EXPECT_EQ(parse_spec("once").mode, Mode::kOnce);

  const Spec nth = parse_spec("nth:7");
  EXPECT_EQ(nth.mode, Mode::kNth);
  EXPECT_EQ(nth.n, 7u);

  const Spec every = parse_spec("every:3");
  EXPECT_EQ(every.mode, Mode::kEveryNth);
  EXPECT_EQ(every.n, 3u);

  const Spec prob = parse_spec("prob:0.25:42");
  EXPECT_EQ(prob.mode, Mode::kProb);
  EXPECT_DOUBLE_EQ(prob.p, 0.25);
  EXPECT_EQ(prob.seed, 42u);
}

TEST(FailpointSpec, PayloadSuffix) {
  const Spec s = parse_spec("always@12");
  EXPECT_EQ(s.mode, Mode::kAlways);
  EXPECT_EQ(s.arg, 12);
  EXPECT_EQ(parse_spec("nth:2@5").arg, 5);
  // Default payload is 0, so a fired CWATPG_FAILPOINT_ARG is still >= 0.
  EXPECT_EQ(parse_spec("always").arg, 0);
}

TEST(FailpointSpec, RoundTripsThroughToString) {
  for (const char* text :
       {"off", "always", "once", "nth:7", "every:3", "always@12"}) {
    const Spec s = parse_spec(text);
    EXPECT_EQ(parse_spec(s.to_string()).to_string(), s.to_string()) << text;
  }
}

TEST(FailpointSpec, RejectsGarbage) {
  EXPECT_THROW(parse_spec(""), std::invalid_argument);
  EXPECT_THROW(parse_spec("sometimes"), std::invalid_argument);
  EXPECT_THROW(parse_spec("nth"), std::invalid_argument);
  EXPECT_THROW(parse_spec("nth:0"), std::invalid_argument);
  EXPECT_THROW(parse_spec("nth:x"), std::invalid_argument);
  EXPECT_THROW(parse_spec("every:0"), std::invalid_argument);
  EXPECT_THROW(parse_spec("prob:1.5"), std::invalid_argument);
  EXPECT_THROW(parse_spec("prob:-0.1"), std::invalid_argument);
  EXPECT_THROW(parse_spec("always@"), std::invalid_argument);
  EXPECT_THROW(parse_spec("always@x"), std::invalid_argument);
  // A negative payload would collide with evaluate()'s -1 "did not fire"
  // sentinel: the site would be armed yet never appear to fire.
  EXPECT_THROW(parse_spec("always@-1"), std::invalid_argument);
  EXPECT_THROW(parse_spec("nth:2@-7"), std::invalid_argument);
}

TEST(FailpointSchedule, RejectsMalformedItems) {
  SKIP_WHEN_COMPILED_OUT();
  CleanRegistry clean;
  Registry& r = Registry::instance();
  EXPECT_THROW(r.arm_schedule("noequals"), std::invalid_argument);
  EXPECT_THROW(r.arm_schedule("a=nth:1;=always"), std::invalid_argument);
  EXPECT_THROW(r.arm_schedule("bad/name=always"), std::invalid_argument);
}

// ---- firing modes ---------------------------------------------------------

TEST(Failpoint, UnarmedSiteNeverFires) {
  SKIP_WHEN_COMPILED_OUT();
  CleanRegistry clean;
  for (int i = 0; i < 10; ++i)
    EXPECT_FALSE(CWATPG_FAILPOINT("test.unarmed"));
}

TEST(Failpoint, OffCountsButNeverFires) {
  SKIP_WHEN_COMPILED_OUT();
  CleanRegistry clean;
  Registry::instance().arm_schedule("test.site=off");
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(CWATPG_FAILPOINT("test.site"));
  const auto counts = Registry::instance().counts();
  const auto it = counts.find("test.site");
  ASSERT_NE(it, counts.end());
  EXPECT_EQ(it->second.hits, 5u);
  EXPECT_EQ(it->second.fires, 0u);
}

TEST(Failpoint, AlwaysOnceNthEvery) {
  SKIP_WHEN_COMPILED_OUT();
  CleanRegistry clean;
  Registry& r = Registry::instance();
  r.arm_schedule("t.always=always;t.once=once;t.nth=nth:3;t.every=every:2");

  std::vector<bool> always, once, nth, every;
  for (int i = 0; i < 6; ++i) {
    always.push_back(CWATPG_FAILPOINT("t.always"));
    once.push_back(CWATPG_FAILPOINT("t.once"));
    nth.push_back(CWATPG_FAILPOINT("t.nth"));
    every.push_back(CWATPG_FAILPOINT("t.every"));
  }
  EXPECT_EQ(always, std::vector<bool>({1, 1, 1, 1, 1, 1}));
  EXPECT_EQ(once, std::vector<bool>({1, 0, 0, 0, 0, 0}));
  EXPECT_EQ(nth, std::vector<bool>({0, 0, 1, 0, 0, 0}));
  EXPECT_EQ(every, std::vector<bool>({0, 1, 0, 1, 0, 1}));
}

TEST(Failpoint, ArgPayloadReturnedOnlyWhenFiring) {
  SKIP_WHEN_COMPILED_OUT();
  CleanRegistry clean;
  Registry::instance().arm_schedule("t.arg=nth:2@17");
  EXPECT_EQ(CWATPG_FAILPOINT_ARG("t.arg"), -1);  // hit 1: no fire
  EXPECT_EQ(CWATPG_FAILPOINT_ARG("t.arg"), 17);  // hit 2: fires, payload
  EXPECT_EQ(CWATPG_FAILPOINT_ARG("t.arg"), -1);  // hit 3: done
}

TEST(Failpoint, ProbZeroAndOneAreDegenerate) {
  SKIP_WHEN_COMPILED_OUT();
  CleanRegistry clean;
  Registry::instance().arm_schedule("t.p0=prob:0;t.p1=prob:1");
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(CWATPG_FAILPOINT("t.p0"));
    EXPECT_TRUE(CWATPG_FAILPOINT("t.p1"));
  }
}

TEST(Failpoint, ProbReplaysExactlyFromSeed) {
  SKIP_WHEN_COMPILED_OUT();
  auto draw_sequence = [](std::uint64_t seed) {
    CleanRegistry clean;
    Registry::instance().arm(
        "t.prob", parse_spec("prob:0.5:" + std::to_string(seed)));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i)
      fired.push_back(CWATPG_FAILPOINT("t.prob"));
    return fired;
  };
  const auto a = draw_sequence(7);
  EXPECT_EQ(a, draw_sequence(7)) << "same seed must replay bit-identically";
  EXPECT_NE(a, draw_sequence(8)) << "different seed must diverge";
  // Sanity: p=0.5 over 64 draws is neither all-false nor all-true.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 64);
}

TEST(Failpoint, ProbStreamsDifferBySiteName) {
  SKIP_WHEN_COMPILED_OUT();
  CleanRegistry clean;
  Registry& r = Registry::instance();
  r.arm_schedule("t.prob.a=prob:0.5:9;t.prob.b=prob:0.5:9");
  std::vector<bool> a, b;
  for (int i = 0; i < 64; ++i) {
    a.push_back(CWATPG_FAILPOINT("t.prob.a"));
    b.push_back(CWATPG_FAILPOINT("t.prob.b"));
  }
  EXPECT_NE(a, b) << "site name must decorrelate same-seed streams";
}

// ---- domains --------------------------------------------------------------

TEST(FailpointDomain, CountersArePerDomain) {
  SKIP_WHEN_COMPILED_OUT();
  CleanRegistry clean;
  Registry::instance().arm_schedule("t.shared=nth:2");

  bool fired_in_a = false;
  {
    DomainScope a("a");
    EXPECT_FALSE(CWATPG_FAILPOINT("t.shared"));  // a: hit 1
  }
  {
    DomainScope b("b");
    EXPECT_FALSE(CWATPG_FAILPOINT("t.shared"));  // b: hit 1 — NOT hit 2
  }
  {
    DomainScope a("a");
    fired_in_a = CWATPG_FAILPOINT("t.shared");  // a: hit 2 — fires
  }
  EXPECT_TRUE(fired_in_a);

  const auto counts = Registry::instance().counts();
  ASSERT_TRUE(counts.count("a/t.shared"));
  ASSERT_TRUE(counts.count("b/t.shared"));
  EXPECT_EQ(counts.at("a/t.shared").hits, 2u);
  EXPECT_EQ(counts.at("a/t.shared").fires, 1u);
  EXPECT_EQ(counts.at("b/t.shared").hits, 1u);
  EXPECT_EQ(counts.at("b/t.shared").fires, 0u);
}

TEST(FailpointDomain, ScopeRestoresAndIsThreadLocal) {
  SKIP_WHEN_COMPILED_OUT();
  set_thread_domain("");
  {
    DomainScope outer("outer");
    EXPECT_EQ(thread_domain(), "outer");
    {
      DomainScope inner("inner");
      EXPECT_EQ(thread_domain(), "inner");
    }
    EXPECT_EQ(thread_domain(), "outer");
    std::thread([] { EXPECT_EQ(thread_domain(), ""); }).join();
  }
  EXPECT_EQ(thread_domain(), "");
}

// ---- scopes & lifecycle ---------------------------------------------------

TEST(FailpointScope, ScheduleScopeArmsAndFullyResets) {
  SKIP_WHEN_COMPILED_OUT();
  CleanRegistry clean;
  {
    ScheduleScope fps("t.scoped=always");
    EXPECT_TRUE(Registry::instance().anything_armed());
    EXPECT_TRUE(CWATPG_FAILPOINT("t.scoped"));
  }
  EXPECT_FALSE(Registry::instance().anything_armed());
  EXPECT_FALSE(CWATPG_FAILPOINT("t.scoped"));
  EXPECT_TRUE(Registry::instance().counts().empty())
      << "ScheduleScope teardown must also clear counters";
}

TEST(FailpointScope, DisarmAllKeepsCountersForAudit) {
  SKIP_WHEN_COMPILED_OUT();
  CleanRegistry clean;
  Registry& r = Registry::instance();
  r.arm_schedule("t.audit=always");
  EXPECT_TRUE(CWATPG_FAILPOINT("t.audit"));
  r.disarm_all();
  EXPECT_FALSE(r.anything_armed());
  const auto counts = r.counts();
  ASSERT_TRUE(counts.count("t.audit"));
  EXPECT_EQ(counts.at("t.audit").fires, 1u);
}

TEST(FailpointScope, ArmedListsSortedSpecs) {
  SKIP_WHEN_COMPILED_OUT();
  CleanRegistry clean;
  Registry& r = Registry::instance();
  r.arm_schedule("t.b=once;t.a=nth:4");
  const auto armed = r.armed();
  ASSERT_EQ(armed.size(), 2u);
  EXPECT_EQ(armed[0].first, "t.a");
  EXPECT_EQ(armed[0].second.to_string(), "nth:4");
  EXPECT_EQ(armed[1].first, "t.b");
}

TEST(Failpoint, CompiledOutMacroIsFalse) {
  // Valid in BOTH build flavors: an unarmed (or compiled-out) site is
  // false / -1, so production control flow never changes by default.
  CleanRegistry clean;
  EXPECT_FALSE(CWATPG_FAILPOINT("t.default"));
  EXPECT_EQ(CWATPG_FAILPOINT_ARG("t.default"), -1);
}

}  // namespace
}  // namespace cwatpg::fp
