#include <gtest/gtest.h>

#include "fault/dictionary.hpp"
#include "fault/tegus.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "util/rng.hpp"

namespace cwatpg::fault {
namespace {

/// All 32 input patterns of c17.
std::vector<Pattern> exhaustive_c17_patterns() {
  std::vector<Pattern> patterns;
  for (int v = 0; v < 32; ++v) {
    Pattern p(5);
    for (int b = 0; b < 5; ++b) p[b] = (v >> b) & 1;
    patterns.push_back(p);
  }
  return patterns;
}

TEST(DetectionMatrix, MatchesSingleDetects) {
  const net::Network n = gen::c17();
  const auto faults = all_faults(n);
  const auto patterns = exhaustive_c17_patterns();
  const auto matrix = detection_matrix(n, faults, patterns);
  ASSERT_EQ(matrix.size(), faults.size());
  for (std::size_t f = 0; f < faults.size(); f += 3) {
    for (std::size_t t = 0; t < patterns.size(); t += 5) {
      const bool bit = (matrix[f][t / 64] >> (t % 64)) & 1;
      EXPECT_EQ(bit, detects(n, faults[f], patterns[t]))
          << to_string(n, faults[f]) << " test " << t;
    }
  }
}

TEST(DetectionMatrix, EmptyPatterns) {
  const net::Network n = gen::c17();
  const auto faults = all_faults(n);
  const auto matrix = detection_matrix(n, faults, {});
  for (const auto& row : matrix) EXPECT_TRUE(row.empty());
}

TEST(Dictionary, BasicShape) {
  const net::Network n = gen::c17();
  FaultDictionary dict(n, collapsed_fault_list(n),
                       exhaustive_c17_patterns());
  EXPECT_EQ(dict.num_faults(), 22u);
  EXPECT_EQ(dict.num_tests(), 32u);
  EXPECT_THROW(dict.detects(100, 0), std::out_of_range);
}

TEST(Dictionary, SignatureConsistent) {
  const net::Network n = gen::c17();
  FaultDictionary dict(n, collapsed_fault_list(n),
                       exhaustive_c17_patterns());
  for (std::size_t f = 0; f < dict.num_faults(); f += 4) {
    const auto signature = dict.signature_of(f);
    for (std::size_t t = 0; t < dict.num_tests(); ++t)
      EXPECT_EQ(signature[t], dict.detects(f, t));
  }
}

TEST(Dictionary, ExactDiagnosisRanksFirst) {
  // Simulate a device with a known fault; its signature must diagnose to
  // that fault at distance 0 (or to an indistinguishable equivalent).
  const net::Network n = gen::c17();
  const auto faults = collapsed_fault_list(n);
  FaultDictionary dict(n, faults, exhaustive_c17_patterns());
  for (std::size_t planted = 0; planted < faults.size(); planted += 3) {
    const auto observed = dict.signature_of(planted);
    const auto candidates = dict.diagnose(observed, 3);
    ASSERT_FALSE(candidates.empty());
    EXPECT_EQ(candidates[0].distance, 0u);
    // The planted fault is among the distance-0 candidates.
    bool found = false;
    for (const auto& c : candidates)
      if (c.distance == 0 && c.fault_index == planted) found = true;
    // It may be truncated out only if >3 faults share the signature.
    if (!found) {
      const auto classes = dict.indistinguishable_classes();
      bool in_big_class = false;
      for (const auto& cls : classes)
        if (std::find(cls.begin(), cls.end(), planted) != cls.end())
          in_big_class = cls.size() > 3;
      EXPECT_TRUE(in_big_class);
    }
  }
}

TEST(Dictionary, NoisyDiagnosisStillClose) {
  // Flip one signature bit (tester noise): the planted fault should stay
  // within the top candidates at distance 1.
  const net::Network n = gen::c17();
  const auto faults = collapsed_fault_list(n);
  FaultDictionary dict(n, faults, exhaustive_c17_patterns());
  auto observed = dict.signature_of(5);
  observed[7] = !observed[7];
  const auto candidates = dict.diagnose(observed, 5);
  bool found = false;
  for (const auto& c : candidates)
    if (c.fault_index == 5) {
      found = true;
      EXPECT_LE(c.distance, 1u);
    }
  EXPECT_TRUE(found);
}

TEST(Dictionary, ExhaustiveTestsDistinguishMostC17Faults) {
  const net::Network n = gen::c17();
  const auto faults = collapsed_fault_list(n);
  FaultDictionary dict(n, faults, exhaustive_c17_patterns());
  const auto classes = dict.indistinguishable_classes();
  // Exhaustive patterns give maximal diagnostic resolution: classes equal
  // functional-equivalence classes of the collapsed list.
  EXPECT_GE(classes.size(), faults.size() / 2);
  std::size_t members = 0;
  for (const auto& cls : classes) members += cls.size();
  EXPECT_EQ(members, faults.size());
}

TEST(Dictionary, CompactedSetLosesResolutionNotCoverage) {
  // Fewer tests => coarser diagnosis (fewer classes), same coverage.
  const net::Network n = net::decompose(gen::comparator(3));
  const auto faults = collapsed_fault_list(n);
  const AtpgResult atpg = run_atpg(n);
  FaultDictionary full(n, faults, atpg.tests);

  // A minimal detecting set: first test only.
  std::vector<Pattern> one(atpg.tests.begin(), atpg.tests.begin() + 1);
  FaultDictionary coarse(n, faults, one);
  EXPECT_LE(coarse.indistinguishable_classes().size(),
            full.indistinguishable_classes().size());
}

TEST(Dictionary, DiagnoseValidatesWidth) {
  const net::Network n = gen::c17();
  FaultDictionary dict(n, collapsed_fault_list(n),
                       exhaustive_c17_patterns());
  EXPECT_THROW(dict.diagnose(std::vector<bool>(3, false)),
               std::invalid_argument);
}

}  // namespace
}  // namespace cwatpg::fault
