#include <gtest/gtest.h>

#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "netlist/topo_stats.hpp"

namespace cwatpg::net {
namespace {

TEST(TopoStats, CountsC17) {
  const TopoStats s = topo_stats(gen::c17());
  EXPECT_EQ(s.nodes, 13u);
  EXPECT_EQ(s.gates, 6u);
  EXPECT_EQ(s.inputs, 5u);
  EXPECT_EQ(s.outputs, 2u);
  EXPECT_EQ(s.depth, 4u);  // 3 logic levels + PO marker
  EXPECT_DOUBLE_EQ(s.mean_fanin, 2.0);
  EXPECT_EQ(s.max_fanout, 2u);
}

TEST(TopoStats, TreeHasNoReconvergence) {
  const TopoStats s = topo_stats(gen::and_or_tree(32, 2));
  EXPECT_EQ(s.fanout_stems, 0u);
  EXPECT_DOUBLE_EQ(s.reconvergent_stem_fraction, 0.0);
  EXPECT_DOUBLE_EQ(s.fanout1_fraction, 1.0);
}

TEST(TopoStats, DiamondReconverges) {
  net::Network n;
  const auto a = n.add_input("a");
  const auto g1 = n.add_gate(GateType::kNot, {a});
  const auto g2 = n.add_gate(GateType::kBuf, {a});
  n.add_output(n.add_gate(GateType::kAnd, {g1, g2}), "o");
  const TopoStats s = topo_stats(n);
  EXPECT_EQ(s.fanout_stems, 1u);
  EXPECT_DOUBLE_EQ(s.reconvergent_stem_fraction, 1.0);
}

TEST(TopoStats, DivergenceWithoutReconvergence) {
  // a fans out to two separate outputs — a stem, but no reconvergence.
  net::Network n;
  const auto a = n.add_input("a");
  n.add_output(n.add_gate(GateType::kNot, {a}), "o1");
  n.add_output(n.add_gate(GateType::kBuf, {a}), "o2");
  const TopoStats s = topo_stats(n);
  EXPECT_EQ(s.fanout_stems, 1u);
  EXPECT_DOUBLE_EQ(s.reconvergent_stem_fraction, 0.0);
}

TEST(TopoStats, DuplicatedPinCountsAsReconvergent) {
  net::Network n;
  const auto a = n.add_input("a");
  n.add_output(n.add_gate(GateType::kAnd, {a, a}), "o");
  const TopoStats s = topo_stats(n);
  EXPECT_DOUBLE_EQ(s.reconvergent_stem_fraction, 1.0);
}

TEST(TopoStats, AdderReconvergesInsideCells) {
  const TopoStats s = topo_stats(gen::ripple_carry_adder(8));
  EXPECT_GT(s.fanout_stems, 0u);
  EXPECT_GE(s.reconvergent_stem_fraction, 0.5);  // a,b reconverge per cell
}

TEST(TopoStats, DeepChainSpanIsOne) {
  net::Network n;
  net::NodeId cur = n.add_input("a");
  for (int i = 0; i < 10; ++i) cur = n.add_gate(GateType::kNot, {cur});
  n.add_output(cur, "o");
  const TopoStats s = topo_stats(n);
  EXPECT_DOUBLE_EQ(s.mean_level_span, 1.0);
  EXPECT_EQ(s.depth, 11u);
}

TEST(TopoStats, EmptyNetwork) {
  const TopoStats s = topo_stats(net::Network{});
  EXPECT_EQ(s.nodes, 0u);
  EXPECT_DOUBLE_EQ(s.mean_fanout, 0.0);
}

TEST(TopoStats, StreamOperator) {
  std::ostringstream os;
  os << topo_stats(gen::c17());
  EXPECT_NE(os.str().find("nodes=13"), std::string::npos);
}

TEST(TopoStats, DecomposedSuitesRespectFaninBound) {
  const TopoStats s = topo_stats(net::decompose(gen::simple_alu(4)));
  EXPECT_LE(s.mean_fanin, 3.0);
}

}  // namespace
}  // namespace cwatpg::net
