#include <gtest/gtest.h>

#include "fault/tegus.hpp"
#include "gen/structured.hpp"
#include "netlist/decompose.hpp"
#include "netlist/simplify.hpp"
#include "util/rng.hpp"

namespace cwatpg::net {
namespace {

void expect_equivalent(const Network& a, const Network& b,
                       std::uint64_t seed) {
  ASSERT_EQ(a.inputs().size(), b.inputs().size());
  ASSERT_EQ(a.outputs().size(), b.outputs().size());
  Rng rng(seed);
  const std::size_t trials =
      a.inputs().size() <= 8 ? (std::size_t{1} << a.inputs().size()) : 200;
  for (std::size_t t = 0; t < trials; ++t) {
    std::vector<bool> pattern(a.inputs().size());
    for (std::size_t i = 0; i < pattern.size(); ++i)
      pattern[i] =
          a.inputs().size() <= 8 ? ((t >> i) & 1) : rng.chance(0.5);
    const auto va = a.eval(pattern);
    const auto vb = b.eval(pattern);
    for (std::size_t o = 0; o < a.outputs().size(); ++o)
      ASSERT_EQ(va[a.outputs()[o]], vb[b.outputs()[o]]) << "output " << o;
  }
}

TEST(Simplify, AndWithZeroFolds) {
  Network n;
  const auto a = n.add_input("a");
  const auto z = n.add_const(false);
  n.add_output(n.add_gate(GateType::kAnd, {a, z}), "o");
  const Network f = fold_constants(n);
  EXPECT_EQ(f.gate_count(), 0u);
  expect_equivalent(n, f, 1);
}

TEST(Simplify, AndWithOneDropsInput) {
  Network n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto one = n.add_const(true);
  n.add_output(n.add_gate(GateType::kAnd, {a, one, b}), "o");
  const Network f = fold_constants(n);
  EXPECT_EQ(f.gate_count(), 1u);
  EXPECT_EQ(f.fanins(*f.find("o") - 0).size(), 1u);  // PO marker
  expect_equivalent(n, f, 2);
}

TEST(Simplify, SingleSurvivorForwards) {
  Network n;
  const auto a = n.add_input("a");
  const auto one = n.add_const(true);
  n.add_output(n.add_gate(GateType::kAnd, {a, one}), "o");
  const Network f = fold_constants(n);
  EXPECT_EQ(f.gate_count(), 0u);  // forwarded, no gate left
  expect_equivalent(n, f, 3);
}

TEST(Simplify, AllGateTypesWithConstants) {
  Network n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto zero = n.add_const(false);
  const auto one = n.add_const(true);
  n.add_output(n.add_gate(GateType::kNand, {a, zero}), "nand0");
  n.add_output(n.add_gate(GateType::kNand, {a, one, b}), "nand1");
  n.add_output(n.add_gate(GateType::kOr, {a, one}), "or1");
  n.add_output(n.add_gate(GateType::kNor, {a, zero, b}), "nor0");
  n.add_output(n.add_gate(GateType::kXor, {a, one}), "xor1");
  n.add_output(n.add_gate(GateType::kXor, {a, zero, b, one}), "xor2");
  n.add_output(n.add_gate(GateType::kXnor, {a, one, b}), "xnor1");
  n.add_output(n.add_gate(GateType::kXnor, {zero, one}), "xnor_const");
  n.add_output(n.add_gate(GateType::kNot, {zero}), "not0");
  n.add_output(n.add_gate(GateType::kBuf, {one}), "buf1");
  expect_equivalent(n, fold_constants(n), 4);
}

TEST(Simplify, ChainsOfConstantsCollapse) {
  Network n;
  const auto zero = n.add_const(false);
  net::NodeId cur = zero;
  for (int i = 0; i < 5; ++i) cur = n.add_gate(GateType::kNot, {cur});
  n.add_output(cur, "o");
  const Network f = fold_constants(n);
  EXPECT_EQ(f.gate_count(), 0u);
  EXPECT_EQ(f.type(f.fanins(f.outputs()[0])[0]), GateType::kConst1);
}

TEST(Simplify, SweepRemovesDeadLogic) {
  Network n;
  const auto a = n.add_input("a");
  const auto live = n.add_gate(GateType::kNot, {a});
  n.add_gate(GateType::kAnd, {a, live});  // dangling
  n.add_output(live, "o");
  const Network s = sweep_dangling(n);
  EXPECT_EQ(s.gate_count(), 1u);
  EXPECT_EQ(s.inputs().size(), 1u);  // PI kept
  expect_equivalent(n, s, 5);
}

TEST(Simplify, SweepKeepsUnusedPis) {
  Network n;
  n.add_input("unused");
  const auto b = n.add_input("b");
  n.add_output(n.add_gate(GateType::kNot, {b}), "o");
  const Network s = sweep_dangling(n);
  EXPECT_EQ(s.inputs().size(), 2u);
}

TEST(Simplify, MultiplierEquivalentAndIrredundant) {
  // array_multiplier already applies simplify(); verify no constants and
  // no dangling gates remain.
  const Network m = gen::array_multiplier(4);
  for (NodeId id = 0; id < m.node_count(); ++id) {
    EXPECT_NE(m.type(id), GateType::kConst0);
    EXPECT_NE(m.type(id), GateType::kConst1);
    if (is_logic(m.type(id))) {
      EXPECT_FALSE(m.fanouts(id).empty());
    }
  }
}

TEST(Simplify, MultiplierFullyTestableAfterFolding) {
  const Network m = decompose(gen::array_multiplier(3));
  const fault::AtpgResult r = fault::run_atpg(m);
  EXPECT_EQ(r.num_aborted, 0u);
  EXPECT_GE(r.fault_coverage(), 0.99);
}

TEST(Simplify, PreservesInterfaceOrder) {
  const Network src = gen::carry_select_adder(8, 3);
  const Network rca = gen::ripple_carry_adder(8);
  EXPECT_EQ(src.inputs().size(), rca.inputs().size());
  EXPECT_EQ(src.outputs().size(), rca.outputs().size());
  expect_equivalent(src, rca, 6);
}

TEST(Simplify, IdempotentOnCleanCircuit) {
  const Network once = simplify(gen::array_multiplier(3));
  const Network twice = simplify(once);
  EXPECT_EQ(once.node_count(), twice.node_count());
}

TEST(Simplify, OutputFoldedToConstantSurvives) {
  Network n;
  const auto a = n.add_input("a");
  const auto na = n.add_gate(GateType::kNot, {a});
  n.add_output(n.add_gate(GateType::kAnd, {a, na, n.add_const(true)}), "o");
  // AND(a, ~a, 1) is not folded to const by structure alone (needs logic
  // reasoning), but AND(a, 0) is:
  Network m;
  const auto b = m.add_input("b");
  m.add_output(m.add_gate(GateType::kAnd, {b, m.add_const(false)}), "o");
  const Network f = simplify(m);
  EXPECT_EQ(f.outputs().size(), 1u);
  EXPECT_EQ(f.type(f.fanins(f.outputs()[0])[0]), GateType::kConst0);
  expect_equivalent(n, fold_constants(n), 7);
}

}  // namespace
}  // namespace cwatpg::net
