#include <gtest/gtest.h>

#include "fault/tegus.hpp"
#include "gen/hutton.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"

namespace cwatpg::fault {
namespace {

TEST(Tegus, GenerateTestForKnownFault) {
  const net::Network n = gen::c17();
  Pattern test;
  const FaultOutcome outcome = generate_test(
      n, {*n.find("10"), StuckAtFault::kStem, true}, {}, test);
  ASSERT_EQ(outcome.status, FaultStatus::kDetected);
  EXPECT_TRUE(detects(n, outcome.fault, test));
  EXPECT_GT(outcome.sat_vars, 0u);
  EXPECT_GT(outcome.sat_clauses, 0u);
}

TEST(Tegus, UntestableFaultProvenUnsat) {
  // OR(a, ~a) is constantly 1 => s-a-1 on it is redundant.
  net::Network n;
  const auto a = n.add_input("a");
  const auto na = n.add_gate(net::GateType::kNot, {a});
  const auto g = n.add_gate(net::GateType::kOr, {a, na});
  n.add_output(g, "o");
  Pattern test;
  const FaultOutcome outcome =
      generate_test(n, {g, StuckAtFault::kStem, true}, {}, test);
  EXPECT_EQ(outcome.status, FaultStatus::kUntestable);
}

TEST(Tegus, UnreachableFaultFlagged) {
  net::Network n;
  const auto a = n.add_input("a");
  const auto dangle = n.add_gate(net::GateType::kNot, {a});
  n.add_gate(net::GateType::kNot, {dangle});  // still dangling
  n.add_output(n.add_gate(net::GateType::kBuf, {a}), "o");
  Pattern test;
  const FaultOutcome outcome =
      generate_test(n, {dangle, StuckAtFault::kStem, true}, {}, test);
  EXPECT_EQ(outcome.status, FaultStatus::kUnreachable);
}

TEST(Tegus, FullC17RunCompleteCoverage) {
  const net::Network n = gen::c17();
  const AtpgResult r = run_atpg(n);
  EXPECT_DOUBLE_EQ(r.fault_coverage(), 1.0);  // c17 is fully testable
  EXPECT_DOUBLE_EQ(r.fault_efficiency(), 1.0);
  EXPECT_EQ(r.num_aborted, 0u);
  EXPECT_FALSE(r.tests.empty());
}

TEST(Tegus, AllOutcomesAccounted) {
  const net::Network n = net::decompose(gen::comparator(4));
  const AtpgResult r = run_atpg(n);
  std::size_t detected = 0, untestable = 0, aborted = 0, unreachable = 0,
              undetermined = 0;
  for (const auto& o : r.outcomes) {
    switch (o.status) {
      case FaultStatus::kDetected:
      case FaultStatus::kDroppedBySim:
      case FaultStatus::kDroppedRandom:
        ++detected;
        break;
      case FaultStatus::kUntestable:
        ++untestable;
        break;
      case FaultStatus::kAborted:
        ++aborted;
        break;
      case FaultStatus::kUnreachable:
        ++unreachable;
        break;
      case FaultStatus::kUndetermined:
        ++undetermined;
        break;
    }
  }
  EXPECT_EQ(detected, r.num_detected);
  EXPECT_EQ(untestable, r.num_untestable);
  EXPECT_EQ(aborted, r.num_aborted);
  EXPECT_EQ(unreachable, r.num_unreachable);
  EXPECT_EQ(undetermined, r.num_undetermined);
  EXPECT_EQ(undetermined, 0u);  // uninterrupted run processes everything
  EXPECT_FALSE(r.interrupted);
}

TEST(Tegus, EveryReportedTestDetectsItsFault) {
  const net::Network n = net::decompose(gen::simple_alu(3));
  const AtpgResult r = run_atpg(n);
  for (const auto& o : r.outcomes) {
    if (o.status != FaultStatus::kDetected &&
        o.status != FaultStatus::kDroppedBySim)
      continue;
    ASSERT_TRUE(o.has_test());
    ASSERT_LT(o.test(), r.tests.size());
    EXPECT_TRUE(detects(n, o.fault, r.tests[o.test()]))
        << to_string(n, o.fault);
  }
}

TEST(Tegus, NoRandomPhaseStillCovers) {
  const net::Network n = gen::c17();
  AtpgOptions opts;
  opts.random_blocks = 0;
  const AtpgResult r = run_atpg(n, opts);
  EXPECT_DOUBLE_EQ(r.fault_coverage(), 1.0);
  // Without the random phase every detection is SAT- or drop-based.
  for (const auto& o : r.outcomes)
    EXPECT_NE(o.status, FaultStatus::kDroppedRandom);
}

TEST(Tegus, NoDroppingSolvesEveryFault) {
  const net::Network n = gen::c17();
  AtpgOptions opts;
  opts.random_blocks = 0;
  opts.drop_by_simulation = false;
  const AtpgResult r = run_atpg(n, opts);
  for (const auto& o : r.outcomes) {
    EXPECT_NE(o.status, FaultStatus::kDroppedBySim);
    if (o.status == FaultStatus::kDetected) {
      EXPECT_GT(o.sat_vars, 0u);
    }
  }
  EXPECT_DOUBLE_EQ(r.fault_coverage(), 1.0);
}

TEST(Tegus, DroppingReducesSatCalls) {
  const net::Network n = net::decompose(gen::ripple_carry_adder(6));
  AtpgOptions drop;
  drop.random_blocks = 0;
  AtpgOptions no_drop = drop;
  no_drop.drop_by_simulation = false;
  const AtpgResult with = run_atpg(n, drop);
  const AtpgResult without = run_atpg(n, no_drop);
  auto sat_calls = [](const AtpgResult& r) {
    std::size_t calls = 0;
    for (const auto& o : r.outcomes)
      if (o.sat_vars > 0) ++calls;
    return calls;
  };
  EXPECT_LT(sat_calls(with), sat_calls(without));
  EXPECT_DOUBLE_EQ(with.fault_coverage(), without.fault_coverage());
}

TEST(Tegus, UncollapsedListAlsoCovered) {
  const net::Network n = gen::c17();
  AtpgOptions opts;
  opts.collapse_faults = false;
  const AtpgResult r = run_atpg(n, opts);
  EXPECT_EQ(r.outcomes.size(), all_faults(n).size());
  EXPECT_DOUBLE_EQ(r.fault_coverage(), 1.0);
}

TEST(Tegus, AdderFullyTestable) {
  const net::Network n = net::decompose(gen::ripple_carry_adder(8));
  const AtpgResult r = run_atpg(n);
  EXPECT_DOUBLE_EQ(r.fault_coverage(), 1.0);
  EXPECT_EQ(r.num_untestable, 0u);
}

TEST(Tegus, RedundantCircuitYieldsUntestables) {
  // A network with explicit redundancy: out = AND(a, OR(a, b)) — the OR's
  // b-input is undetectable at some fault values.
  net::Network n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto o = n.add_gate(net::GateType::kOr, {a, b});
  const auto g = n.add_gate(net::GateType::kAnd, {a, o});
  n.add_output(g, "o");
  AtpgOptions opts;
  opts.random_blocks = 0;
  const AtpgResult r = run_atpg(n, opts);
  EXPECT_GT(r.num_untestable, 0u);
  EXPECT_DOUBLE_EQ(r.fault_efficiency(), 1.0);  // all proven one way
}

TEST(Tegus, ExtractTestFillsNonSupport) {
  const net::Network n = net::decompose(gen::ripple_carry_adder(8));
  // Fault on the low-order full adder: high operand bits are outside the
  // support and take the fill value.
  const auto faults = collapsed_fault_list(n);
  const StuckAtFault f = faults.front();
  const AtpgCircuit atpg = build_atpg_circuit(n, f);
  std::vector<bool> model(atpg.miter.node_count(), false);
  const Pattern zero_fill = extract_test(n, atpg, model, false);
  const Pattern one_fill = extract_test(n, atpg, model, true);
  EXPECT_EQ(zero_fill.size(), n.inputs().size());
  if (atpg.support.size() < n.inputs().size()) {
    EXPECT_NE(zero_fill, one_fill);
  }
}

TEST(Tegus, DeterministicForFixedSeed) {
  const net::Network n = net::decompose(gen::comparator(3));
  const AtpgResult a = run_atpg(n);
  const AtpgResult b = run_atpg(n);
  EXPECT_EQ(a.num_detected, b.num_detected);
  EXPECT_EQ(a.tests.size(), b.tests.size());
}

TEST(Tegus, PerInstanceStatsForFigure1) {
  // The Figure 1 axes must be recoverable from outcomes: vars + time.
  const net::Network n = net::decompose(gen::simple_alu(4));
  AtpgOptions opts;
  opts.random_blocks = 0;
  opts.drop_by_simulation = false;
  const AtpgResult r = run_atpg(n, opts);
  std::size_t with_instances = 0;
  for (const auto& o : r.outcomes) {
    if (o.sat_vars > 0) {
      ++with_instances;
      EXPECT_GE(o.solve_seconds, 0.0);
    }
  }
  EXPECT_EQ(with_instances, r.outcomes.size() - r.num_unreachable);
}

class TegusFamilies : public ::testing::TestWithParam<int> {};

TEST_P(TegusFamilies, HighCoverageAcrossGenerators) {
  net::Network n;
  switch (GetParam()) {
    case 0: n = net::decompose(gen::parity_tree(12)); break;
    case 1: n = net::decompose(gen::decoder(3)); break;
    case 2: n = net::decompose(gen::mux_tree(3)); break;
    case 3: n = net::decompose(gen::cellular_array_1d(6)); break;
    case 4: n = net::decompose(gen::array_multiplier(3)); break;
    case 5: n = net::decompose(gen::hamming_ecc(8)); break;
    default: n = gen::c17(); break;
  }
  const AtpgResult r = run_atpg(n);
  EXPECT_EQ(r.num_aborted, 0u);
  EXPECT_DOUBLE_EQ(r.fault_efficiency(), 1.0);
  EXPECT_GE(r.fault_coverage(), 0.95);
}

INSTANTIATE_TEST_SUITE_P(Generators, TegusFamilies, ::testing::Range(0, 6));

}  // namespace
}  // namespace cwatpg::fault
