// Direct empirical verification of Lemma 4.1: the number of distinct
// consistent sub-formulas (DCSFs) reachable by assigning a prefix of the
// variable order is at most 2^(2*k_fo*cut), where `cut` is the number of
// nets crossing the corresponding gap of the circuit ordering.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "core/cutwidth.hpp"
#include "core/mla.hpp"
#include "gen/hutton.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "sat/cache_sat.hpp"
#include "sat/encode.hpp"
#include "util/rng.hpp"

namespace cwatpg {
namespace {

/// Runs Algorithm 1 with DCSF tracking under ordering `h` of circuit `n`
/// and checks DCSF(level) <= 2^(2*k_fo*cut(level)) at every level.
/// The full (non-early-exit, cache-free) tree is used so every reachable
/// consistent sub-formula is counted.
void expect_lemma41(const net::Network& n, const core::Ordering& h) {
  const sat::Cnf f = sat::encode_circuit_sat(n);
  const std::vector<sat::Var> order(h.begin(), h.end());
  sat::CacheSatConfig cfg;
  cfg.track_dcsf = true;
  cfg.use_cache = false;   // visit the whole consistent tree
  cfg.early_sat = false;
  cfg.max_nodes = 30'000'000;
  const auto r = sat::cache_sat(f, order, cfg);
  ASSERT_NE(r.status, sat::SolveStatus::kUnknown);

  const auto profile = core::cut_profile(net::to_hypergraph(n), h);
  const std::size_t k_fo = n.max_fanout();
  for (std::size_t level = 0; level < r.stats.dcsf_per_level.size();
       ++level) {
    // Level i in the solver = order[0..i] assigned = gap i of the profile.
    // The final level has an empty suffix: cut 0, at most one residual
    // (the empty formula).
    const double cut =
        level < profile.size() ? static_cast<double>(profile[level]) : 0.0;
    const double bound = core::lemma41_log2_bound(k_fo, static_cast<std::uint32_t>(cut));
    const double measured =
        std::log2(static_cast<double>(r.stats.dcsf_per_level[level]));
    EXPECT_LE(measured, bound + 1e-9)
        << n.name() << " level " << level << ": " <<
        r.stats.dcsf_per_level[level] << " DCSFs vs cut " << cut;
  }
}

TEST(Lemma41, Fig4aUnderOrderingA) {
  // The paper's own illustration: at Cut Z (after {b,c,f,a,h}) at most
  // 2^2 distinct sub-formulas exist despite 2^5 assignments.
  const sat::Cnf f = gen::formula41();
  const auto h = gen::fig4a_ordering_a();
  const std::vector<sat::Var> order(h.begin(), h.end());
  sat::CacheSatConfig cfg;
  cfg.track_dcsf = true;
  cfg.use_cache = false;
  cfg.early_sat = false;
  const auto r = sat::cache_sat(f, order, cfg);
  ASSERT_GE(r.stats.dcsf_per_level.size(), 5u);
  // Cut Z: one crossing net, k_fo = 1 in the hand hypergraph => <= 4.
  EXPECT_LE(r.stats.dcsf_per_level[4], 4u);
  // And indeed far below the naive 2^5.
  EXPECT_LT(r.stats.dcsf_per_level[4], 32u);
}

TEST(Lemma41, HoldsOnC17) {
  const net::Network n = gen::c17();
  expect_lemma41(n, core::mla(n).order);
  expect_lemma41(n, core::identity_ordering(n.node_count()));
}

TEST(Lemma41, HoldsOnTreeCircuit) {
  const net::Network n = gen::and_or_tree(16, 2);
  expect_lemma41(n, core::tree_ordering(n));
}

TEST(Lemma41, HoldsOnAdder) {
  const net::Network n = net::decompose(gen::ripple_carry_adder(3));
  expect_lemma41(n, core::mla(n).order);
}

TEST(Lemma41, HoldsOnParity) {
  const net::Network n = net::decompose(gen::parity_tree(8));
  expect_lemma41(n, core::mla(n).order);
}

class Lemma41RandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma41RandomSweep, HoldsOnRandomCircuitsAndOrders) {
  gen::HuttonParams p;
  p.num_gates = 26;
  p.num_inputs = 7;
  p.num_outputs = 3;
  p.seed = GetParam();
  const net::Network n = net::decompose(gen::hutton_random(p));
  expect_lemma41(n, core::mla(n).order);
  Rng rng(GetParam());
  core::Ordering random_h = core::identity_ordering(n.node_count());
  for (std::size_t i = random_h.size(); i > 1; --i)
    std::swap(random_h[i - 1], random_h[rng.below(i)]);
  expect_lemma41(n, random_h);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma41RandomSweep,
                         ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
}  // namespace cwatpg
