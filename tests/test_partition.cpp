#include <gtest/gtest.h>

#include "gen/hutton.hpp"
#include "gen/structured.hpp"
#include "netlist/decompose.hpp"
#include "netlist/hypergraph.hpp"
#include "partition/multilevel.hpp"

namespace cwatpg::part {
namespace {

/// Two cliques of `k` vertices joined by one edge: ideal cut = 1.
WeightedHg dumbbell(std::size_t k) {
  WeightedHg hg;
  hg.vertex_weight.assign(2 * k, 1);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = i + 1; j < k; ++j) {
      hg.edges.push_back({static_cast<std::uint32_t>(i),
                          static_cast<std::uint32_t>(j)});
      hg.edges.push_back({static_cast<std::uint32_t>(k + i),
                          static_cast<std::uint32_t>(k + j)});
    }
  hg.edges.push_back({0, static_cast<std::uint32_t>(k)});
  hg.edge_weight.assign(hg.edges.size(), 1);
  return hg;
}

/// A cycle of n vertices: optimal balanced cut = 2.
WeightedHg ring(std::size_t n) {
  WeightedHg hg;
  hg.vertex_weight.assign(n, 1);
  for (std::size_t i = 0; i < n; ++i)
    hg.edges.push_back({static_cast<std::uint32_t>(i),
                        static_cast<std::uint32_t>((i + 1) % n)});
  hg.edge_weight.assign(n, 1);
  return hg;
}

bool balanced(const WeightedHg& hg, const Bisection& b, double tolerance) {
  std::uint64_t w0 = 0, w1 = 0, total = 0;
  for (std::size_t v = 0; v < hg.num_vertices(); ++v) {
    total += hg.vertex_weight[v];
    (b.side[v] ? w1 : w0) += hg.vertex_weight[v];
  }
  const auto hi = static_cast<std::uint64_t>(
      (0.5 + tolerance) * static_cast<double>(total) + 1);
  return w0 <= hi && w1 <= hi;
}

TEST(Fm, CutCostCountsSpanningEdges) {
  const WeightedHg hg = ring(6);
  std::vector<std::uint8_t> side = {0, 0, 0, 1, 1, 1};
  EXPECT_EQ(cut_cost(hg, side), 2u);
  std::vector<std::uint8_t> alternating = {0, 1, 0, 1, 0, 1};
  EXPECT_EQ(cut_cost(hg, alternating), 6u);
}

TEST(Fm, CutCostRespectsWeights) {
  WeightedHg hg;
  hg.vertex_weight = {1, 1};
  hg.edges = {{0, 1}};
  hg.edge_weight = {7};
  std::vector<std::uint8_t> side = {0, 1};
  EXPECT_EQ(cut_cost(hg, side), 7u);
}

TEST(Fm, FindsDumbbellCut) {
  const WeightedHg hg = dumbbell(8);
  FmConfig cfg;
  cfg.seed = 3;
  const Bisection b = fm_bisect(hg, cfg);
  EXPECT_EQ(b.cut, 1u);
  EXPECT_TRUE(balanced(hg, b, cfg.balance));
}

TEST(Fm, RingCutIsTwo) {
  const WeightedHg hg = ring(32);
  FmConfig cfg;
  cfg.seed = 5;
  const Bisection b = fm_bisect(hg, cfg);
  EXPECT_EQ(b.cut, 2u);
}

TEST(Fm, RefineNeverWorsens) {
  const WeightedHg hg = ring(24);
  Rng rng(7);
  for (int t = 0; t < 5; ++t) {
    Bisection start;
    start.side.resize(24);
    for (auto& s : start.side) s = rng.chance(0.5) ? 1 : 0;
    const std::uint64_t before = cut_cost(hg, start.side);
    const Bisection after = fm_refine(hg, start, FmConfig{}, rng);
    EXPECT_LE(after.cut, before);
  }
}

TEST(Fm, RefineRejectsWrongSize) {
  const WeightedHg hg = ring(8);
  Bisection bad;
  bad.side.assign(3, 0);
  Rng rng(1);
  EXPECT_THROW(fm_refine(hg, bad, FmConfig{}, rng), std::invalid_argument);
}

TEST(Fm, HandlesEmptyAndTinyGraphs) {
  WeightedHg empty;
  const Bisection b = fm_bisect(empty, FmConfig{});
  EXPECT_EQ(b.cut, 0u);

  WeightedHg one;
  one.vertex_weight = {1};
  EXPECT_EQ(fm_bisect(one, FmConfig{}).cut, 0u);
}

TEST(Fm, WrapsUnweightedHypergraph) {
  net::Hypergraph hg;
  hg.num_vertices = 3;
  hg.edges = {{0, 1, 2}};
  const WeightedHg w = WeightedHg::from(hg);
  EXPECT_EQ(w.num_vertices(), 3u);
  EXPECT_EQ(w.edge_weight[0], 1u);
}

TEST(Multilevel, CoarsenShrinksAndConserves) {
  const WeightedHg hg = dumbbell(16);
  Rng rng(9);
  std::vector<std::uint32_t> match;
  const WeightedHg coarse = coarsen(hg, rng, match);
  EXPECT_LT(coarse.num_vertices(), hg.num_vertices());
  // Vertex weight conserved.
  std::uint64_t fine_w = 0, coarse_w = 0;
  for (auto w : hg.vertex_weight) fine_w += w;
  for (auto w : coarse.vertex_weight) coarse_w += w;
  EXPECT_EQ(fine_w, coarse_w);
  // Match maps into range.
  for (auto m : match) EXPECT_LT(m, coarse.num_vertices());
}

TEST(Multilevel, DumbbellCutOne) {
  const WeightedHg hg = dumbbell(32);
  MultilevelConfig cfg;
  cfg.fm.seed = 11;
  const Bisection b = multilevel_bisect(hg, cfg);
  EXPECT_EQ(b.cut, 1u);
}

TEST(Multilevel, GridCutNearOptimal) {
  // 8x8 grid graph: optimal balanced bisection cuts 8 edges.
  WeightedHg hg;
  const std::size_t n = 8;
  hg.vertex_weight.assign(n * n, 1);
  auto id = [&](std::size_t r, std::size_t c) {
    return static_cast<std::uint32_t>(r * n + c);
  };
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) {
      if (c + 1 < n) hg.edges.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < n) hg.edges.push_back({id(r, c), id(r + 1, c)});
    }
  hg.edge_weight.assign(hg.edges.size(), 1);
  MultilevelConfig cfg;
  cfg.fm.seed = 13;
  cfg.fm.num_starts = 8;
  const Bisection b = multilevel_bisect(hg, cfg);
  EXPECT_LE(b.cut, 12u);  // within 1.5x of optimal
  EXPECT_TRUE(balanced(hg, b, cfg.fm.balance));
}

TEST(Multilevel, CircuitHypergraphBisection) {
  const net::Network n = net::decompose(gen::ripple_carry_adder(16));
  const net::Hypergraph hg = net::to_hypergraph(n);
  const Bisection b = multilevel_bisect(hg);
  EXPECT_EQ(b.side.size(), hg.num_vertices);
  // A 16-bit ripple adder is a chain: a good bisection cuts few nets.
  EXPECT_LE(b.cut, 10u);
  EXPECT_EQ(b.cut, cut_cost(WeightedHg::from(hg), b.side));
}

TEST(Multilevel, DeterministicForFixedSeed) {
  const WeightedHg hg = dumbbell(16);
  MultilevelConfig cfg;
  cfg.fm.seed = 17;
  const Bisection a = multilevel_bisect(hg, cfg);
  const Bisection b = multilevel_bisect(hg, cfg);
  EXPECT_EQ(a.side, b.side);
  EXPECT_EQ(a.cut, b.cut);
}

class MultilevelSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultilevelSeedSweep, RandomCircuitsBalancedAndConsistent) {
  gen::HuttonParams p;
  p.num_gates = 150;
  p.num_inputs = 12;
  p.num_outputs = 6;
  p.seed = GetParam();
  const net::Network n = gen::hutton_random(p);
  const net::Hypergraph hg = net::to_hypergraph(n);
  MultilevelConfig cfg;
  cfg.fm.seed = GetParam();
  const Bisection b = multilevel_bisect(hg, cfg);
  EXPECT_TRUE(balanced(WeightedHg::from(hg), b, cfg.fm.balance + 0.02));
  EXPECT_EQ(b.cut, cut_cost(WeightedHg::from(hg), b.side));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultilevelSeedSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace cwatpg::part
