#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "core/kbounded.hpp"
#include "gen/kbounded_gen.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"

namespace cwatpg::core {
namespace {

BlockPartition part_of(const gen::KBoundedInstance& inst) {
  return BlockPartition{inst.block_of, inst.num_blocks};
}

BlockPartition singleton_partition(const net::Network& n) {
  BlockPartition part;
  part.block_of.resize(n.node_count());
  for (net::NodeId v = 0; v < n.node_count(); ++v) part.block_of[v] = v;
  part.num_blocks = static_cast<std::uint32_t>(n.node_count());
  return part;
}

TEST(KBounded, BlockInputCountsSimple) {
  net::Network n;
  const auto a = n.add_input("a");
  const auto g1 = n.add_gate(net::GateType::kNot, {a});
  const auto g2 = n.add_gate(net::GateType::kNot, {g1});
  n.add_output(g2, "o");
  BlockPartition part;
  part.block_of = {0, 1, 1, 1};
  part.num_blocks = 2;
  const auto counts = block_input_counts(n, part);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 1u);
}

TEST(KBounded, DistinctNetsCountedOnce) {
  net::Network n;
  const auto a = n.add_input("a");
  const auto g1 = n.add_gate(net::GateType::kNot, {a});
  const auto g2 = n.add_gate(net::GateType::kNot, {a});
  const auto g3 = n.add_gate(net::GateType::kAnd, {g1, g2});
  n.add_output(g3, "o");
  BlockPartition part;
  part.block_of = {0, 1, 1, 1, 1};
  part.num_blocks = 2;
  EXPECT_EQ(block_input_counts(n, part)[1], 1u);
}

TEST(KBounded, ShapeValidation) {
  const net::Network n = gen::c17();
  BlockPartition bad;
  bad.block_of.assign(2, 0);
  bad.num_blocks = 1;
  EXPECT_THROW(block_input_counts(n, bad), std::invalid_argument);
  bad.block_of.assign(n.node_count(), 5);
  bad.num_blocks = 1;
  EXPECT_THROW(block_input_counts(n, bad), std::invalid_argument);
}

TEST(KBounded, ReconvergenceDetectedAcrossBlocks) {
  net::Network n;
  const auto a = n.add_input("a");
  const auto g1 = n.add_gate(net::GateType::kNot, {a});
  const auto g2 = n.add_gate(net::GateType::kBuf, {a});
  const auto g3 = n.add_gate(net::GateType::kAnd, {g1, g2});
  n.add_output(g3, "o");
  EXPECT_FALSE(block_dag_is_reconvergence_free(n, singleton_partition(n)));
  BlockPartition merged;
  merged.block_of = {0, 1, 1, 1, 1};
  merged.num_blocks = 2;
  EXPECT_TRUE(block_dag_is_reconvergence_free(n, merged));
}

TEST(KBounded, ChainIsReconvergenceFree) {
  net::Network n;
  net::NodeId cur = n.add_input("a");
  for (int i = 0; i < 10; ++i)
    cur = n.add_gate(net::GateType::kNot, {cur});
  n.add_output(cur, "o");
  EXPECT_TRUE(block_dag_is_reconvergence_free(n, singleton_partition(n)));
}

// --- generator-provided witnesses ------------------------------------------

TEST(KBounded, AdderWitnessIsValid) {
  const auto inst = gen::kbounded_adder(8);
  EXPECT_TRUE(is_kbounded(inst.circuit, part_of(inst), inst.k));
  EXPECT_EQ(inst.k, 3u);
  const auto counts = block_input_counts(inst.circuit, part_of(inst));
  for (auto c : counts) EXPECT_LE(c, inst.k);
}

TEST(KBounded, AdderWitnessTightAtK3) {
  const auto inst = gen::kbounded_adder(4);
  EXPECT_FALSE(is_kbounded(inst.circuit, part_of(inst), 2));
}

TEST(KBounded, CellularWitnessIsValid) {
  const auto inst = gen::kbounded_cellular(12);
  EXPECT_TRUE(is_kbounded(inst.circuit, part_of(inst), inst.k));
  EXPECT_EQ(inst.k, 2u);
}

TEST(KBounded, RandomWitnessesValidAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto inst = gen::kbounded_random(20, 5, 3, seed);
    EXPECT_TRUE(is_kbounded(inst.circuit, part_of(inst), inst.k))
        << "seed " << seed;
    EXPECT_NO_THROW(inst.circuit.validate());
  }
}

TEST(KBounded, AdderFullCircuitCoverage) {
  const auto inst = gen::kbounded_adder(6);
  EXPECT_EQ(inst.block_of.size(), inst.circuit.node_count());
  for (auto b : inst.block_of) EXPECT_LT(b, inst.num_blocks);
}

// --- heuristic recognizer ----------------------------------------------------

TEST(KBounded, HeuristicFindsChainBlocks) {
  // An inverter chain's FFC partition is one block per PO cone — but the
  // chain collapses entirely; with the size cap it is rejected, with a
  // generous cap accepted.
  net::Network n;
  net::NodeId cur = n.add_input("a");
  for (int i = 0; i < 10; ++i)
    cur = n.add_gate(net::GateType::kNot, {cur});
  n.add_output(cur, "o");
  EXPECT_TRUE(find_kbounded_partition(n, 1, 32).has_value());
  EXPECT_FALSE(find_kbounded_partition(n, 1, 4).has_value());
}

TEST(KBounded, HeuristicRejectsGlobalReconvergence) {
  const net::Network n = gen::hamming_ecc(16);
  EXPECT_FALSE(find_kbounded_partition(n, 2).has_value());
}

TEST(KBounded, HeuristicRejectsAdderConePartition) {
  // The FFC partition of an RCA is NOT a k<=3 witness (the carry diamond
  // splits across cones) — the constructive witness from kbounded_adder is
  // required. This documents why the generators carry their partitions.
  const net::Network n = gen::ripple_carry_adder(8);
  EXPECT_FALSE(find_kbounded_partition(n, 3).has_value());
}

// --- Theorem 5.1 ordering -----------------------------------------------------

TEST(KBounded, OrderingIsPermutation) {
  const auto inst = gen::kbounded_adder(10);
  const Ordering order = kbounded_ordering(inst.circuit, part_of(inst), 3);
  EXPECT_NO_THROW(positions_of(order, inst.circuit.node_count()));
}

TEST(KBounded, OrderingRejectsInvalidPartition) {
  const auto inst = gen::kbounded_adder(4);
  EXPECT_THROW(kbounded_ordering(inst.circuit, part_of(inst), 0),
               std::invalid_argument);
}

TEST(KBounded, Theorem51AdderWidthIsLogBounded) {
  for (std::size_t bits : {8u, 16u, 32u, 64u}) {
    const auto inst = gen::kbounded_adder(bits);
    const Ordering order =
        kbounded_ordering(inst.circuit, part_of(inst), inst.k);
    const std::uint32_t w = cut_width(inst.circuit, order);
    const double logn =
        std::log2(static_cast<double>(inst.circuit.node_count()));
    EXPECT_LE(w, 6.0 * logn) << bits << " bits";
  }
}

TEST(KBounded, Theorem51WidthGrowsSubLinearly) {
  const auto small = gen::kbounded_cellular(8);
  const auto large = gen::kbounded_cellular(64);
  const auto ws = cut_width(
      small.circuit, kbounded_ordering(small.circuit, part_of(small), 2));
  const auto wl = cut_width(
      large.circuit, kbounded_ordering(large.circuit, part_of(large), 2));
  EXPECT_LE(wl, 3 * ws + 6);
}

class KBoundedFamilySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KBoundedFamilySweep, CellularChainsScaleLogarithmically) {
  const auto inst = gen::kbounded_cellular(GetParam());
  const Ordering order =
      kbounded_ordering(inst.circuit, part_of(inst), inst.k);
  const double logn =
      std::log2(static_cast<double>(inst.circuit.node_count()));
  EXPECT_LE(cut_width(inst.circuit, order), 8.0 * logn);
}

INSTANTIATE_TEST_SUITE_P(Sizes, KBoundedFamilySweep,
                         ::testing::Values(4, 8, 16, 32, 64, 128));

class KBoundedRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KBoundedRandomSweep, RandomInstancesOrderable) {
  const auto inst = gen::kbounded_random(30, 4, 3, GetParam());
  const Ordering order =
      kbounded_ordering(inst.circuit, part_of(inst), inst.k);
  const std::uint32_t w = cut_width(inst.circuit, order);
  const double logn =
      std::log2(static_cast<double>(inst.circuit.node_count()));
  // Constant block size (<= ~8 nodes) => width O((k + blocksize) log n).
  EXPECT_LE(w, 12.0 * logn) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, KBoundedRandomSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace cwatpg::core
