#include <gtest/gtest.h>

#include "fault/fsim.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "util/rng.hpp"

namespace cwatpg::fault {
namespace {

TEST(Fsim, KnownC17Detection) {
  const net::Network n = gen::c17();
  // Inputs in order: 1, 2, 3, 6, 7.
  // With 1=1,3=1 => G10=0. G10 s-a-1 flips G10 to 1; with 2=0 => G16=1;
  // out22 = NAND(G10,G16): good NAND(0,1)=1, faulty NAND(1,1)=0 => detect.
  const StuckAtFault f{*n.find("10"), StuckAtFault::kStem, true};
  const Pattern detecting = {true, false, true, false, false};
  EXPECT_TRUE(detects(n, f, detecting));
  // With 1=0: G10 is already 1, fault not excited.
  const Pattern non_detecting = {false, false, true, false, false};
  EXPECT_FALSE(detects(n, f, non_detecting));
}

TEST(Fsim, StuckValueEqualGoodValueNotDetected) {
  const net::Network n = gen::c17();
  // Any pattern where net already equals the stuck value can't detect.
  const StuckAtFault f{*n.find("10"), StuckAtFault::kStem, false};
  const Pattern p = {true, true, true, true, true};  // G10 = NAND(1,1) = 0
  EXPECT_FALSE(detects(n, f, p));
}

TEST(Fsim, BranchFaultDiffersFromStem) {
  // Branch fault on one fanout of signal 11 affects only one output path.
  const net::Network n = gen::c17();
  const StuckAtFault branch{*n.find("16"), 1, true};  // 11->16 branch s-a-1
  const StuckAtFault stem{*n.find("11"), StuckAtFault::kStem, true};
  // Find a pattern detecting the stem via output 23 only — it must not
  // detect the branch into gate 16.
  cwatpg::Rng rng(3);
  bool found_difference = false;
  for (int t = 0; t < 200 && !found_difference; ++t) {
    Pattern p(5);
    for (auto&& b : p) b = rng.chance(0.5);
    if (detects(n, stem, p) != detects(n, branch, p))
      found_difference = true;
  }
  EXPECT_TRUE(found_difference);
}

TEST(Fsim, AgreesWithBruteForceOnAllFaults) {
  const net::Network n = gen::c17();
  const auto faults = all_faults(n);
  // All 32 patterns at once.
  std::vector<Pattern> patterns;
  for (int v = 0; v < 32; ++v) {
    Pattern p(5);
    for (int b = 0; b < 5; ++b) p[b] = (v >> b) & 1;
    patterns.push_back(p);
  }
  const auto detected = fault_simulate(n, faults, patterns);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    bool reference = false;
    for (const Pattern& p : patterns)
      reference = reference || detects(n, faults[i], p);
    EXPECT_EQ(detected[i], reference) << to_string(n, faults[i]);
  }
}

TEST(Fsim, EveryC17FaultDetectable) {
  // c17 is fully testable: exhaustive patterns detect every fault.
  const net::Network n = gen::c17();
  const auto faults = all_faults(n);
  std::vector<Pattern> patterns;
  for (int v = 0; v < 32; ++v) {
    Pattern p(5);
    for (int b = 0; b < 5; ++b) p[b] = (v >> b) & 1;
    patterns.push_back(p);
  }
  EXPECT_DOUBLE_EQ(coverage(n, faults, patterns), 1.0);
}

TEST(Fsim, RedundantFaultNeverDetected) {
  // OR(a, ~a) = 1 always: s-a-1 on the OR output is undetectable.
  net::Network n;
  const auto a = n.add_input("a");
  const auto na = n.add_gate(net::GateType::kNot, {a});
  const auto g = n.add_gate(net::GateType::kOr, {a, na});
  n.add_output(g, "o");
  const StuckAtFault f{g, StuckAtFault::kStem, true};
  const std::vector<Pattern> patterns = {{false}, {true}};
  const StuckAtFault faults[] = {f};
  const auto detected = fault_simulate(n, faults, patterns);
  EXPECT_FALSE(detected[0]);
}

TEST(Fsim, MoreThan64Patterns) {
  const net::Network n = net::decompose(gen::parity_tree(8));
  const auto faults = collapsed_fault_list(n);
  cwatpg::Rng rng(9);
  std::vector<Pattern> patterns;
  for (int t = 0; t < 130; ++t) {  // 3 blocks, last partial
    Pattern p(8);
    for (auto&& b : p) b = rng.chance(0.5);
    patterns.push_back(p);
  }
  const auto detected = fault_simulate(n, faults, patterns);
  // Parity trees are highly testable: random patterns detect nearly all.
  std::size_t hits = 0;
  for (bool d : detected)
    if (d) ++hits;
  EXPECT_GT(hits, faults.size() * 9 / 10);
}

TEST(Fsim, PartialLastBlockMasked) {
  // A detection that would only occur in lanes beyond the pattern count
  // must not leak: craft 1 pattern and verify against single detects().
  const net::Network n = gen::c17();
  const auto faults = all_faults(n);
  const std::vector<Pattern> one = {{true, true, true, true, true}};
  const auto detected = fault_simulate(n, faults, one);
  for (std::size_t i = 0; i < faults.size(); ++i)
    EXPECT_EQ(detected[i], detects(n, faults[i], one[0]));
}

TEST(Fsim, EmptyPatternsDetectNothing) {
  const net::Network n = gen::c17();
  const auto faults = all_faults(n);
  const auto detected = fault_simulate(n, faults, {});
  for (bool d : detected) EXPECT_FALSE(d);
}

TEST(Fsim, WrongPatternWidthThrows) {
  const net::Network n = gen::c17();
  const auto faults = all_faults(n);
  const std::vector<Pattern> bad = {{true, false}};
  EXPECT_THROW(fault_simulate(n, faults, bad), std::invalid_argument);
}

TEST(Fsim, CoverageEmptyFaultListIsFull) {
  const net::Network n = gen::c17();
  EXPECT_DOUBLE_EQ(coverage(n, {}, {}), 1.0);
}

class FsimRandomCross : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FsimRandomCross, BlockSimMatchesScalarSim) {
  const net::Network n = net::decompose(gen::simple_alu(3));
  const auto faults = collapsed_fault_list(n);
  cwatpg::Rng rng(GetParam());
  std::vector<Pattern> patterns;
  for (int t = 0; t < 10; ++t) {
    Pattern p(n.inputs().size());
    for (auto&& b : p) b = rng.chance(0.5);
    patterns.push_back(p);
  }
  const auto detected = fault_simulate(n, faults, patterns);
  for (std::size_t i = 0; i < faults.size(); i += 5) {
    bool reference = false;
    for (const auto& p : patterns)
      reference = reference || detects(n, faults[i], p);
    EXPECT_EQ(detected[i], reference);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsimRandomCross,
                         ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
}  // namespace cwatpg::fault
