#include <gtest/gtest.h>

#include "gen/hutton.hpp"
#include "gen/structured.hpp"
#include "gen/suites.hpp"
#include "gen/trees.hpp"
#include "core/bounds.hpp"
#include "netlist/decompose.hpp"
#include "util/rng.hpp"

namespace cwatpg::gen {
namespace {

TEST(Gen, DecoderDecodes) {
  const net::Network n = decoder(3);
  for (int addr = 0; addr < 8; ++addr) {
    std::vector<bool> pattern;
    for (int b = 0; b < 3; ++b) pattern.push_back((addr >> b) & 1);
    pattern.push_back(true);  // enable
    const auto values = n.eval(pattern);
    for (int line = 0; line < 8; ++line)
      EXPECT_EQ(values[n.outputs()[line]], line == addr)
          << addr << "/" << line;
  }
  // Enable low: all lines low.
  std::vector<bool> off = {true, false, true, false};
  const auto values = n.eval(off);
  for (int line = 0; line < 8; ++line)
    EXPECT_FALSE(values[n.outputs()[line]]);
}

TEST(Gen, MuxSelects) {
  const net::Network n = mux_tree(2);  // 4-way
  cwatpg::Rng rng(1);
  for (int t = 0; t < 30; ++t) {
    std::vector<bool> pattern(6);
    for (auto&& b : pattern) b = rng.chance(0.5);
    const auto values = n.eval(pattern);
    const int sel = (pattern[4] ? 1 : 0) | (pattern[5] ? 2 : 0);
    EXPECT_EQ(values[n.outputs()[0]], pattern[static_cast<std::size_t>(sel)]);
  }
}

TEST(Gen, ParityTreeComputesParity) {
  for (std::size_t arity : {2u, 3u, 4u}) {
    const net::Network n = parity_tree(9, arity);
    cwatpg::Rng rng(arity);
    for (int t = 0; t < 20; ++t) {
      std::vector<bool> pattern(9);
      bool parity = false;
      for (auto&& b : pattern) {
        b = rng.chance(0.5);
        parity ^= static_cast<bool>(b);
      }
      EXPECT_EQ(n.eval(pattern)[n.outputs()[0]], parity);
    }
  }
}

TEST(Gen, ComparatorCompares) {
  const net::Network n = comparator(4);
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      std::vector<bool> pattern;
      for (int i = 0; i < 4; ++i) pattern.push_back((a >> i) & 1);
      for (int i = 0; i < 4; ++i) pattern.push_back((b >> i) & 1);
      const auto values = n.eval(pattern);
      EXPECT_EQ(values[n.outputs()[0]], a < b);
      EXPECT_EQ(values[n.outputs()[1]], a == b);
      EXPECT_EQ(values[n.outputs()[2]], a > b);
    }
  }
}

TEST(Gen, CarrySelectMatchesRipple) {
  const net::Network csa = carry_select_adder(9, 3);
  const net::Network rca = ripple_carry_adder(9);
  cwatpg::Rng rng(5);
  for (int t = 0; t < 100; ++t) {
    std::vector<bool> pattern(19);
    for (auto&& b : pattern) b = rng.chance(0.5);
    const auto vc = csa.eval(pattern);
    const auto vr = rca.eval(pattern);
    for (std::size_t o = 0; o < 10; ++o)
      ASSERT_EQ(vc[csa.outputs()[o]], vr[rca.outputs()[o]]) << t;
  }
}

TEST(Gen, CellularArraysWellFormed) {
  EXPECT_NO_THROW(cellular_array_1d(10).validate());
  EXPECT_NO_THROW(cellular_array_2d(4, 5).validate());
  const net::Network grid = cellular_array_2d(3, 3);
  EXPECT_EQ(grid.inputs().size(), 6u);
  EXPECT_EQ(grid.outputs().size(), 6u);
}

TEST(Gen, AluOpsCorrect) {
  const std::size_t bits = 4;
  const net::Network n = simple_alu(bits);
  cwatpg::Rng rng(7);
  for (int op = 0; op < 4; ++op) {
    for (int t = 0; t < 30; ++t) {
      const std::uint64_t a = rng.below(16);
      const std::uint64_t b = rng.below(16);
      std::vector<bool> pattern;
      for (std::size_t i = 0; i < bits; ++i) pattern.push_back((a >> i) & 1);
      for (std::size_t i = 0; i < bits; ++i) pattern.push_back((b >> i) & 1);
      pattern.push_back(op & 1);
      pattern.push_back(op & 2);
      const auto values = n.eval(pattern);
      std::uint64_t y = 0;
      for (std::size_t i = 0; i < bits; ++i)
        if (values[n.outputs()[i]]) y |= 1ULL << i;
      std::uint64_t expected = 0;
      switch (op) {
        case 0: expected = (a + b) & 0xF; break;
        case 1: expected = a & b; break;
        case 2: expected = a | b; break;
        case 3: expected = a ^ b; break;
      }
      ASSERT_EQ(y, expected) << "op " << op;
    }
  }
}

TEST(Gen, EccOutputsDependOnAllData) {
  const net::Network n = hamming_ecc(8);
  // Flipping any single data bit must flip at least one output.
  std::vector<bool> base(8, false);
  const auto ref = n.eval(base);
  for (int bit = 0; bit < 8; ++bit) {
    auto flipped = base;
    flipped[static_cast<std::size_t>(bit)] = true;
    const auto out = n.eval(flipped);
    bool changed = false;
    for (net::NodeId po : n.outputs())
      changed = changed || (out[po] != ref[po]);
    EXPECT_TRUE(changed) << "bit " << bit;
  }
}

TEST(Gen, RandomTreeIsTree) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const net::Network t = random_tree(80, 3, seed);
    EXPECT_TRUE(core::is_tree_circuit(t)) << seed;
    EXPECT_NO_THROW(t.validate());
    EXPECT_EQ(t.outputs().size(), 1u);
  }
}

TEST(Gen, RandomTreeDeterministic) {
  const net::Network a = random_tree(50, 3, 9);
  const net::Network b = random_tree(50, 3, 9);
  EXPECT_EQ(a.node_count(), b.node_count());
}

TEST(Gen, HuttonRespectsParameters) {
  HuttonParams p;
  p.num_gates = 300;
  p.num_inputs = 20;
  p.num_outputs = 10;
  p.max_fanin = 3;
  p.seed = 3;
  const net::Network n = hutton_random(p);
  EXPECT_NO_THROW(n.validate());
  EXPECT_EQ(n.inputs().size(), 20u);
  EXPECT_GE(n.outputs().size(), 10u);
  EXPECT_LE(n.max_fanin(), 3u);
  EXPECT_NEAR(static_cast<double>(n.gate_count()), 300.0, 90.0);
}

TEST(Gen, HuttonNoDeadLogic) {
  HuttonParams p;
  p.num_gates = 150;
  p.seed = 11;
  const net::Network n = hutton_random(p);
  for (net::NodeId id = 0; id < n.node_count(); ++id)
    if (net::is_logic(n.type(id))) {
      EXPECT_FALSE(n.fanouts(id).empty()) << "dangling gate " << id;
    }
}

TEST(Gen, HuttonLocalityAffectsStructure) {
  HuttonParams local;
  local.num_gates = 400;
  local.locality = 0.98;
  local.seed = 13;
  HuttonParams global = local;
  global.locality = 0.2;
  const net::Network a = hutton_random(local);
  const net::Network b = hutton_random(global);
  // Global wiring stretches nets across levels: compare total net spans
  // under the level-based ordering (a cheap proxy for cut-width).
  auto span_sum = [](const net::Network& n) {
    std::uint64_t sum = 0;
    for (net::NodeId id = 0; id < n.node_count(); ++id)
      for (net::NodeId fo : n.fanouts(id)) sum += fo - id;
    return static_cast<double>(sum) / static_cast<double>(n.node_count());
  };
  EXPECT_LT(span_sum(a), span_sum(b));
}

TEST(Gen, HuttonRejectsDegenerate) {
  HuttonParams p;
  p.num_inputs = 0;
  EXPECT_THROW(hutton_random(p), std::invalid_argument);
}

TEST(Gen, StructuredRejectDegenerate) {
  EXPECT_THROW(ripple_carry_adder(0), std::invalid_argument);
  EXPECT_THROW(decoder(0), std::invalid_argument);
  EXPECT_THROW(parity_tree(1), std::invalid_argument);
  EXPECT_THROW(array_multiplier(1), std::invalid_argument);
  EXPECT_THROW(mux_tree(0), std::invalid_argument);
}

TEST(Gen, SuitesWellFormedAtSmallScale) {
  SuiteOptions opts;
  opts.scale = 0.12;
  for (const auto& suite : {iscas85_like_suite(opts), mcnc_like_suite(opts)}) {
    for (const net::Network& n : suite) {
      EXPECT_NO_THROW(n.validate());
      EXPECT_TRUE(net::is_decomposed(n)) << n.name();
      EXPECT_FALSE(n.name().empty());
      EXPECT_GE(n.outputs().size(), 1u);
    }
  }
}

TEST(Gen, SuiteSizesSpanARange) {
  SuiteOptions opts;
  opts.scale = 0.12;
  const auto suite = mcnc_like_suite(opts);
  EXPECT_EQ(suite.size(), 48u);
  std::size_t smallest = static_cast<std::size_t>(-1), largest = 0;
  for (const auto& n : suite) {
    smallest = std::min(smallest, n.node_count());
    largest = std::max(largest, n.node_count());
  }
  EXPECT_LT(smallest * 4, largest);  // a genuine size spread
}

TEST(Gen, Iscas85SuiteHasNineMembers) {
  SuiteOptions opts;
  opts.scale = 0.12;
  EXPECT_EQ(iscas85_like_suite(opts).size(), 9u);
}

}  // namespace
}  // namespace cwatpg::gen
