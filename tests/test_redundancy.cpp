#include <gtest/gtest.h>

#include "fault/redundancy.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "verify/cec.hpp"

namespace cwatpg::fault {
namespace {

/// A deliberately redundant circuit: out = AND(a, OR(a, b)) == a.
net::Network classic_redundant() {
  net::Network n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto o = n.add_gate(net::GateType::kOr, {a, b});
  n.add_output(n.add_gate(net::GateType::kAnd, {a, o}), "out");
  return n;
}

TEST(Redundancy, RemovesClassicAbsorption) {
  const net::Network n = classic_redundant();
  const RedundancyResult r = remove_redundancy(n);
  EXPECT_GT(r.removed_faults, 0u);
  EXPECT_LT(r.gates_after, r.gates_before);
  EXPECT_TRUE(verify::check_equivalence(n, r.circuit).equivalent);
  // The simplified function is just `a`: at most zero gates remain.
  EXPECT_EQ(r.circuit.gate_count(), 0u);
}

TEST(Redundancy, IrredundantCircuitUntouched) {
  const net::Network n = gen::c17();
  const RedundancyResult r = remove_redundancy(n);
  EXPECT_EQ(r.removed_faults, 0u);
  EXPECT_EQ(r.gates_after, r.gates_before);
  EXPECT_EQ(r.rounds, 1u);
}

TEST(Redundancy, ResultIsFullyTestable) {
  const net::Network n = classic_redundant();
  const RedundancyResult r = remove_redundancy(n);
  AtpgOptions opts;
  opts.random_blocks = 0;
  const AtpgResult atpg = run_atpg(r.circuit, opts);
  EXPECT_EQ(atpg.num_untestable, 0u);
  EXPECT_DOUBLE_EQ(atpg.fault_coverage(), 1.0);
}

TEST(Redundancy, PreservesInterface) {
  const net::Network n = classic_redundant();
  const RedundancyResult r = remove_redundancy(n);
  EXPECT_EQ(r.circuit.inputs().size(), n.inputs().size());
  EXPECT_EQ(r.circuit.outputs().size(), n.outputs().size());
}

TEST(Redundancy, ChainOfRedundancies) {
  // Stack absorption twice: AND(a, OR(a, AND(a, OR(a, b)))).
  net::Network n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto o1 = n.add_gate(net::GateType::kOr, {a, b});
  const auto a1 = n.add_gate(net::GateType::kAnd, {a, o1});
  const auto o2 = n.add_gate(net::GateType::kOr, {a, a1});
  n.add_output(n.add_gate(net::GateType::kAnd, {a, o2}), "out");
  const RedundancyResult r = remove_redundancy(n);
  EXPECT_TRUE(verify::check_equivalence(n, r.circuit).equivalent);
  EXPECT_EQ(r.circuit.gate_count(), 0u);  // function is `a`
  EXPECT_GE(r.rounds, 2u);
}

TEST(Redundancy, DeadLogicSwept) {
  net::Network n;
  const auto a = n.add_input("a");
  const auto dead = n.add_gate(net::GateType::kNot, {a});
  n.add_gate(net::GateType::kNot, {dead});  // dangling chain
  n.add_output(n.add_gate(net::GateType::kBuf, {a}), "out");
  const RedundancyResult r = remove_redundancy(n);
  EXPECT_TRUE(verify::check_equivalence(n, r.circuit).equivalent);
  for (net::NodeId id = 0; id < r.circuit.node_count(); ++id) {
    if (net::is_logic(r.circuit.type(id))) {
      EXPECT_FALSE(r.circuit.fanouts(id).empty());
    }
  }
}

TEST(Redundancy, AluSliceRedundanciesRemoved) {
  // simple_alu is known to carry a few redundant faults per slice (see
  // /tmp probe in the development log — genuinely redundant, verified by
  // exhaustive simulation). After removal: none left, function intact.
  const net::Network n = net::decompose(gen::simple_alu(2));
  const RedundancyResult r = remove_redundancy(n);
  EXPECT_GT(r.removed_faults, 0u);
  EXPECT_TRUE(verify::check_equivalence(n, r.circuit).equivalent);
  AtpgOptions opts;
  opts.random_blocks = 0;
  const AtpgResult atpg = run_atpg(r.circuit, opts);
  EXPECT_EQ(atpg.num_untestable, 0u);
}

TEST(Redundancy, RoundLimitRespected) {
  const net::Network n = classic_redundant();
  RedundancyOptions opts;
  opts.max_rounds = 1;
  const RedundancyResult r = remove_redundancy(n, opts);
  EXPECT_EQ(r.rounds, 1u);
  EXPECT_TRUE(verify::check_equivalence(n, r.circuit).equivalent);
}

}  // namespace
}  // namespace cwatpg::fault
