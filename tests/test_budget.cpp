// Budgets, cooperative cancellation and the abort-escalation ladder:
// Budget unit behaviour, Solver stop_reason reporting, and the run-level
// guarantees (partial-but-consistent results under a deadline, ladder
// recovery of aborted faults, serial/parallel agreement).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "fault/parallel_atpg.hpp"
#include "fault/tegus.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "sat/cnf.hpp"
#include "sat/solver.hpp"
#include "util/budget.hpp"

namespace cwatpg {
namespace {

// ------------------------------------------------------------- Budget --

TEST(Budget, DefaultsAreUnlimited) {
  Budget b;
  EXPECT_EQ(b.max_conflicts, Budget::kUnlimited);
  EXPECT_EQ(b.max_propagations, Budget::kUnlimited);
  EXPECT_FALSE(b.has_deadline());
  EXPECT_FALSE(b.past_deadline());
  EXPECT_FALSE(b.cancelled());
  EXPECT_TRUE(std::isinf(b.remaining_seconds()));
  EXPECT_EQ(b.poll(), StopReason::kNone);
  EXPECT_FALSE(b.exhausted());
}

TEST(Budget, DeadlineArmsFiresAndClears) {
  Budget b;
  b.set_deadline_after(3600.0);
  EXPECT_TRUE(b.has_deadline());
  EXPECT_GT(b.remaining_seconds(), 3000.0);
  EXPECT_EQ(b.poll(), StopReason::kNone);

  b.set_deadline(Budget::Clock::now());  // already due
  EXPECT_TRUE(b.past_deadline());
  EXPECT_LE(b.remaining_seconds(), 0.0);
  EXPECT_EQ(b.poll(), StopReason::kDeadline);
  EXPECT_TRUE(b.exhausted());

  b.clear_deadline();
  EXPECT_FALSE(b.has_deadline());
  EXPECT_EQ(b.poll(), StopReason::kNone);
}

TEST(Budget, CancelIsStickyAndOutranksDeadline) {
  Budget b;
  b.set_deadline(Budget::Clock::now());  // deadline also firing
  b.cancel();
  EXPECT_TRUE(b.cancelled());
  EXPECT_EQ(b.poll(), StopReason::kCancelled);  // cancel reported first
  b.clear_deadline();
  EXPECT_EQ(b.poll(), StopReason::kCancelled);  // sticky
}

TEST(Budget, CancelIsIdempotent) {
  // Cancellation is fired from cancel requests, destructors and watchdog
  // paths alike — a second (or tenth) call must be a harmless no-op, not
  // UB or a state change.
  Budget b;
  b.cancel();
  b.cancel();
  EXPECT_TRUE(b.cancelled());
  EXPECT_EQ(b.poll(), StopReason::kCancelled);
  b.cancel();  // and again after polling
  EXPECT_EQ(b.poll(), StopReason::kCancelled);
}

TEST(Budget, SaturatingMul) {
  EXPECT_EQ(saturating_mul(6, 7), 42u);
  EXPECT_EQ(saturating_mul(0, Budget::kUnlimited), 0u);
  EXPECT_EQ(saturating_mul(Budget::kUnlimited, 0), 0u);
  EXPECT_EQ(saturating_mul(Budget::kUnlimited, 2), Budget::kUnlimited);
  EXPECT_EQ(saturating_mul(std::uint64_t(1) << 40, std::uint64_t(1) << 40),
            Budget::kUnlimited);
  EXPECT_EQ(saturating_mul(Budget::kUnlimited, 1), Budget::kUnlimited);
}

TEST(Budget, StopReasonNames) {
  EXPECT_STREQ(to_string(StopReason::kNone), "none");
  EXPECT_STREQ(to_string(StopReason::kConflictLimit), "conflict-limit");
  EXPECT_STREQ(to_string(StopReason::kPropagationLimit), "propagation-limit");
  EXPECT_STREQ(to_string(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(to_string(StopReason::kCancelled), "cancelled");
}

// ------------------------------------------------------------- Solver --

// Pigeonhole formula PHP(p, h): p pigeons into h holes, UNSAT for p > h.
// Small but resolution-hard — guaranteed to generate conflicts, which is
// what the cap tests need.
sat::Cnf pigeonhole(int pigeons, int holes) {
  sat::Cnf cnf(static_cast<sat::Var>(pigeons * holes));
  auto var = [holes](int p, int h) {
    return static_cast<sat::Var>(p * holes + h);
  };
  for (int p = 0; p < pigeons; ++p) {
    sat::Clause some_hole;
    for (int h = 0; h < holes; ++h) some_hole.push_back(sat::pos(var(p, h)));
    cnf.add_clause(some_hole);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        cnf.add_clause({sat::neg(var(p1, h)), sat::neg(var(p2, h))});
  return cnf;
}

TEST(SolverBudget, ConflictCapReturnsUnknownAndSaysWhy) {
  sat::SolverConfig config;
  config.max_conflicts = 1;
  sat::Solver solver(pigeonhole(5, 4), config);
  EXPECT_EQ(solver.solve(), sat::SolveStatus::kUnknown);
  EXPECT_EQ(solver.stats().stop_reason, StopReason::kConflictLimit);
  EXPECT_GE(solver.stats().conflicts, 1u);
}

TEST(SolverBudget, BudgetConflictCapIsAHardCeiling) {
  Budget budget;
  budget.max_conflicts = 1;
  sat::SolverConfig config;  // solver's own cap stays unlimited
  config.budget = &budget;
  sat::Solver solver(pigeonhole(5, 4), config);
  EXPECT_EQ(solver.solve(), sat::SolveStatus::kUnknown);
  EXPECT_EQ(solver.stats().stop_reason, StopReason::kConflictLimit);
}

TEST(SolverBudget, PropagationCapFires) {
  Budget budget;
  budget.max_propagations = 1;
  sat::SolverConfig config;
  config.budget = &budget;
  config.budget_poll_interval = 1;
  sat::Solver solver(pigeonhole(5, 4), config);
  EXPECT_EQ(solver.solve(), sat::SolveStatus::kUnknown);
  EXPECT_EQ(solver.stats().stop_reason, StopReason::kPropagationLimit);
  EXPECT_GE(solver.stats().propagations, 1u);
}

TEST(SolverBudget, CancelledBudgetStopsBeforeSearching) {
  Budget budget;
  budget.cancel();
  sat::SolverConfig config;
  config.budget = &budget;
  sat::Solver solver(pigeonhole(5, 4), config);
  EXPECT_EQ(solver.solve(), sat::SolveStatus::kUnknown);
  EXPECT_EQ(solver.stats().stop_reason, StopReason::kCancelled);
  EXPECT_EQ(solver.stats().conflicts, 0u);
}

TEST(SolverBudget, PastDeadlineStopsPromptly) {
  Budget budget;
  budget.set_deadline(Budget::Clock::now());
  sat::SolverConfig config;
  config.budget = &budget;
  config.budget_poll_interval = 1;
  sat::Solver solver(pigeonhole(5, 4), config);
  EXPECT_EQ(solver.solve(), sat::SolveStatus::kUnknown);
  EXPECT_EQ(solver.stats().stop_reason, StopReason::kDeadline);
}

TEST(SolverBudget, GenerousBudgetIsInvisibleToTheSearch) {
  // Polling must not influence the search: a budget that never fires gives
  // bit-identical stats to no budget at all, and stop_reason stays kNone.
  sat::Solver plain(pigeonhole(5, 4));
  EXPECT_EQ(plain.solve(), sat::SolveStatus::kUnsat);
  EXPECT_EQ(plain.stats().stop_reason, StopReason::kNone);

  Budget budget;
  budget.set_deadline_after(3600.0);
  sat::SolverConfig config;
  config.budget = &budget;
  config.budget_poll_interval = 1;  // poll as often as possible
  sat::Solver budgeted(pigeonhole(5, 4), config);
  EXPECT_EQ(budgeted.solve(), sat::SolveStatus::kUnsat);
  EXPECT_EQ(budgeted.stats().stop_reason, StopReason::kNone);
  EXPECT_EQ(budgeted.stats().conflicts, plain.stats().conflicts);
  EXPECT_EQ(budgeted.stats().decisions, plain.stats().decisions);
  EXPECT_EQ(budgeted.stats().propagations, plain.stats().propagations);
}

// ------------------------------------------------- escalation ladder --

// mult4 with the random phase off and a 1-conflict cap aborts over half the
// fault list — the fixture every ladder test reuses.
fault::AtpgOptions tiny_cap_options() {
  fault::AtpgOptions opts;
  opts.random_blocks = 0;
  opts.solver.max_conflicts = 1;
  return opts;
}

void expect_counters_match_outcomes(const fault::AtpgResult& r) {
  std::size_t detected = 0, untestable = 0, aborted = 0, unreachable = 0,
              undetermined = 0;
  for (const fault::FaultOutcome& o : r.outcomes) {
    switch (o.status) {
      case fault::FaultStatus::kDetected:
      case fault::FaultStatus::kDroppedBySim:
      case fault::FaultStatus::kDroppedRandom:
        ++detected;
        break;
      case fault::FaultStatus::kUntestable: ++untestable; break;
      case fault::FaultStatus::kAborted: ++aborted; break;
      case fault::FaultStatus::kUnreachable: ++unreachable; break;
      case fault::FaultStatus::kUndetermined: ++undetermined; break;
    }
    if (o.has_test()) {
      ASSERT_LT(o.test(), r.tests.size());
    }
    if (o.status == fault::FaultStatus::kUndetermined) {
      EXPECT_EQ(o.engine, fault::SolveEngine::kNone);
      EXPECT_EQ(o.attempts, 0u);
    }
  }
  EXPECT_EQ(detected, r.num_detected);
  EXPECT_EQ(untestable, r.num_untestable);
  EXPECT_EQ(aborted, r.num_aborted);
  EXPECT_EQ(unreachable, r.num_unreachable);
  EXPECT_EQ(undetermined, r.num_undetermined);
}

TEST(EscalationLadder, RecoversFaultsTheFirstPassAborted) {
  const net::Network n = net::decompose(gen::array_multiplier(4));

  fault::AtpgOptions no_ladder = tiny_cap_options();
  no_ladder.escalation_rounds = 0;
  no_ladder.podem_fallback = false;
  const fault::AtpgResult before = fault::run_atpg(n, no_ladder);
  ASSERT_GT(before.num_aborted, 0u);  // the cap really bites
  EXPECT_EQ(before.num_escalated, 0u);

  const fault::AtpgResult after = fault::run_atpg(n, tiny_cap_options());
  EXPECT_LT(after.num_aborted, before.num_aborted);
  EXPECT_GE(after.num_escalated, 1u);
  EXPECT_GT(after.fault_coverage(), before.fault_coverage());
  expect_counters_match_outcomes(after);

  // The ladder attributes its work: re-attacked faults carry the engine
  // that finally classified them and an attempt count > 1.
  bool saw_retry = false;
  for (const fault::FaultOutcome& o : after.outcomes) {
    if (o.engine == fault::SolveEngine::kSatRetry ||
        o.engine == fault::SolveEngine::kPodem) {
      saw_retry = true;
      EXPECT_GT(o.attempts, 1u);
    }
  }
  EXPECT_TRUE(saw_retry);
}

TEST(EscalationLadder, SatRoundsAloneConvertAborts) {
  const net::Network n = net::decompose(gen::array_multiplier(4));
  fault::AtpgOptions opts = tiny_cap_options();
  opts.podem_fallback = false;  // ladder = CDCL retries only
  const fault::AtpgResult r = fault::run_atpg(n, opts);
  EXPECT_GE(r.num_escalated, 1u);
  for (const fault::FaultOutcome& o : r.outcomes)
    EXPECT_NE(o.engine, fault::SolveEngine::kPodem);
  expect_counters_match_outcomes(r);
}

TEST(EscalationLadder, PodemFallbackRescuesWhatCdclAbandons) {
  const net::Network n = net::decompose(gen::array_multiplier(4));
  fault::AtpgOptions opts = tiny_cap_options();
  opts.escalation_rounds = 0;  // PODEM is the only rung
  const fault::AtpgResult r = fault::run_atpg(n, opts);
  std::size_t podem_wins = 0;
  for (const fault::FaultOutcome& o : r.outcomes) {
    if (o.engine != fault::SolveEngine::kPodem) continue;
    ++podem_wins;
    if (o.status == fault::FaultStatus::kDetected) {
      ASSERT_TRUE(o.has_test());
      EXPECT_TRUE(detects(n, o.fault, r.tests[o.test()]));
    }
  }
  EXPECT_GE(podem_wins, 1u);
  expect_counters_match_outcomes(r);
}

TEST(EscalationLadder, DeterministicAcrossRuns) {
  const net::Network n = net::decompose(gen::array_multiplier(4));
  const fault::AtpgResult a = fault::run_atpg(n, tiny_cap_options());
  const fault::AtpgResult b = fault::run_atpg(n, tiny_cap_options());
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].status, b.outcomes[i].status) << "fault " << i;
    EXPECT_EQ(a.outcomes[i].engine, b.outcomes[i].engine) << "fault " << i;
    EXPECT_EQ(a.outcomes[i].attempts, b.outcomes[i].attempts) << "fault " << i;
    EXPECT_EQ(a.outcomes[i].test_index, b.outcomes[i].test_index)
        << "fault " << i;
  }
  ASSERT_EQ(a.tests.size(), b.tests.size());
  for (std::size_t t = 0; t < a.tests.size(); ++t)
    EXPECT_EQ(a.tests[t], b.tests[t]) << "test " << t;
  EXPECT_EQ(a.num_escalated, b.num_escalated);
}

// ------------------------------------------------- run-level deadline --

TEST(RunBudget, DeadlineYieldsPartialConsistentResult) {
  // The acceptance scenario: a hard instance set under a 100 ms run
  // deadline must return promptly with interrupted=true — no hang, no
  // throw — and the partial result must still be internally consistent.
  const net::Network n = net::decompose(gen::array_multiplier(8));
  Budget budget;
  budget.set_deadline_after(0.05);
  fault::AtpgOptions opts;
  opts.budget = &budget;
  opts.random_blocks = 0;  // all 1536 faults go through SAT: ~8x the deadline

  const auto t0 = std::chrono::steady_clock::now();
  const fault::AtpgResult r = fault::run_atpg(n, opts);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  EXPECT_TRUE(r.interrupted);
  EXPECT_GT(r.num_undetermined, 0u);
  EXPECT_LT(elapsed, 10.0);  // promptly, not "eventually"
  expect_counters_match_outcomes(r);
}

TEST(RunBudget, AlreadyExpiredDeadlineStopsBeforeTheFirstSolve) {
  // A deadline that has passed before the run starts (the service arms
  // deadlines at admission, so queue wait can consume all of one) must
  // stop the engine at its very first budget poll: zero faults processed,
  // every outcome undetermined, and the stop attributed to the deadline —
  // not to a conflict cap, and not a hang.
  const net::Network n = net::decompose(gen::comparator(4));
  Budget budget;
  budget.set_deadline(Budget::Clock::now());
  ASSERT_TRUE(budget.past_deadline());
  fault::AtpgOptions opts;
  opts.budget = &budget;
  opts.random_blocks = 0;

  const fault::AtpgResult r = fault::run_atpg(n, opts);
  EXPECT_TRUE(r.interrupted);
  EXPECT_EQ(r.num_undetermined, r.outcomes.size());
  EXPECT_EQ(r.num_detected, 0u);
  EXPECT_TRUE(r.tests.empty());
  EXPECT_EQ(budget.poll(), StopReason::kDeadline);
  expect_counters_match_outcomes(r);
}

TEST(RunBudget, CancellationFromAnotherThreadStopsTheRun) {
  const net::Network n = net::decompose(gen::array_multiplier(8));
  Budget budget;  // no deadline: cancellation is the only exit
  fault::AtpgOptions opts;
  opts.budget = &budget;

  std::thread canceller([&budget] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    budget.cancel();
  });
  const auto t0 = std::chrono::steady_clock::now();
  const fault::AtpgResult r = fault::run_atpg(n, opts);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  canceller.join();

  EXPECT_TRUE(r.interrupted);
  EXPECT_LT(elapsed, 10.0);
  expect_counters_match_outcomes(r);
}

TEST(RunBudget, GenerousBudgetLeavesSerialAndParallelIdentical) {
  // A budget that never fires must be invisible: parallel under the budget
  // == serial without one, bit for bit.
  const net::Network n = gen::c17();
  const fault::AtpgResult plain = fault::run_atpg(n);

  Budget budget;
  budget.set_deadline_after(3600.0);
  fault::ParallelAtpgOptions popts;
  popts.base.budget = &budget;
  popts.num_threads = 2;
  const fault::AtpgResult budgeted = fault::run_atpg_parallel(n, popts);

  ASSERT_EQ(plain.outcomes.size(), budgeted.outcomes.size());
  for (std::size_t i = 0; i < plain.outcomes.size(); ++i) {
    EXPECT_EQ(plain.outcomes[i].status, budgeted.outcomes[i].status);
    EXPECT_EQ(plain.outcomes[i].test_index, budgeted.outcomes[i].test_index);
    EXPECT_EQ(plain.outcomes[i].engine, budgeted.outcomes[i].engine);
    EXPECT_EQ(plain.outcomes[i].attempts, budgeted.outcomes[i].attempts);
  }
  ASSERT_EQ(plain.tests.size(), budgeted.tests.size());
  for (std::size_t t = 0; t < plain.tests.size(); ++t)
    EXPECT_EQ(plain.tests[t], budgeted.tests[t]);
  EXPECT_FALSE(budgeted.interrupted);
  EXPECT_EQ(budgeted.num_undetermined, 0u);
}

TEST(RunBudget, ParallelTightDeadlineCommitsAConsistentPrefix) {
  const net::Network n = net::decompose(gen::array_multiplier(8));
  Budget budget;
  budget.set_deadline_after(0.03);
  fault::ParallelAtpgOptions popts;
  popts.base.budget = &budget;
  popts.base.random_blocks = 0;  // all faults through SAT: far past the deadline
  popts.num_threads = 4;

  const auto t0 = std::chrono::steady_clock::now();
  const fault::AtpgResult r = fault::run_atpg_parallel(n, popts);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  EXPECT_TRUE(r.interrupted);
  EXPECT_GT(r.num_undetermined, 0u);
  EXPECT_LT(elapsed, 10.0);
  expect_counters_match_outcomes(r);
  // Spot-check the committed prefix: attributed tests genuinely detect.
  std::size_t checked = 0;
  for (const fault::FaultOutcome& o : r.outcomes) {
    if (o.status != fault::FaultStatus::kDetected || checked >= 25) continue;
    ++checked;
    EXPECT_TRUE(detects(n, o.fault, r.tests[o.test()]));
  }
}

}  // namespace
}  // namespace cwatpg
