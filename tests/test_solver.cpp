#include <gtest/gtest.h>

#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "sat/encode.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace cwatpg::sat {
namespace {

/// Brute-force reference: tries all 2^n assignments (n <= 24).
bool brute_force_sat(const Cnf& f) {
  const Var n = f.num_vars();
  EXPECT_LE(n, 24u);
  std::vector<bool> assignment(n);
  for (std::uint64_t m = 0; m < (1ULL << n); ++m) {
    for (Var v = 0; v < n; ++v) assignment[v] = (m >> v) & 1;
    if (f.eval(assignment)) return true;
  }
  return false;
}

/// Random 3-SAT-ish formula.
Cnf random_cnf(Var vars, std::size_t clauses, std::uint64_t seed) {
  cwatpg::Rng rng(seed);
  Cnf f(vars);
  for (std::size_t c = 0; c < clauses; ++c) {
    Clause cl;
    const auto len = static_cast<std::size_t>(rng.range(1, 3));
    for (std::size_t i = 0; i < len; ++i)
      cl.push_back(Lit(static_cast<Var>(rng.below(vars)), rng.chance(0.5)));
    std::sort(cl.begin(), cl.end());
    cl.erase(std::unique(cl.begin(), cl.end()), cl.end());
    f.add_clause(cl);
  }
  return f;
}

TEST(Solver, TrivialSat) {
  Cnf f(1);
  f.add_clause({pos(0)});
  const auto r = solve_cnf(f);
  EXPECT_EQ(r.status, SolveStatus::kSat);
  EXPECT_TRUE(r.model[0]);
}

TEST(Solver, TrivialUnsat) {
  Cnf f(1);
  f.add_clause({pos(0)});
  f.add_clause({neg(0)});
  EXPECT_EQ(solve_cnf(f).status, SolveStatus::kUnsat);
}

TEST(Solver, EmptyFormulaIsSat) {
  Cnf f(3);
  EXPECT_EQ(solve_cnf(f).status, SolveStatus::kSat);
}

TEST(Solver, UnitPropagationChain) {
  // x0 and (~x0|x1)...(~x8|x9) forces all true.
  Cnf f(10);
  f.add_clause({pos(0)});
  for (Var v = 0; v + 1 < 10; ++v) f.add_clause({neg(v), pos(v + 1)});
  const auto r = solve_cnf(f);
  EXPECT_EQ(r.status, SolveStatus::kSat);
  for (Var v = 0; v < 10; ++v) EXPECT_TRUE(r.model[v]);
  EXPECT_EQ(r.stats.decisions, 0u);
}

TEST(Solver, PigeonHole3Into2IsUnsat) {
  // PHP(3,2): pigeon i in hole j -> var 2i+j.
  Cnf f(6);
  for (int i = 0; i < 3; ++i)
    f.add_clause({pos(2 * i), pos(2 * i + 1)});
  for (int j = 0; j < 2; ++j)
    for (int i1 = 0; i1 < 3; ++i1)
      for (int i2 = i1 + 1; i2 < 3; ++i2)
        f.add_clause({neg(2 * i1 + j), neg(2 * i2 + j)});
  EXPECT_EQ(solve_cnf(f).status, SolveStatus::kUnsat);
}

TEST(Solver, ModelSatisfiesFormula) {
  const Cnf f = random_cnf(15, 40, 7);
  const auto r = solve_cnf(f);
  if (r.status == SolveStatus::kSat) {
    EXPECT_TRUE(f.eval(r.model));
  }
}

TEST(Solver, ConflictLimitReturnsUnknown) {
  // A hard-ish pigeonhole with an absurdly low conflict budget.
  Cnf f(20);
  const int holes = 4, pigeons = 5;
  auto var = [&](int p, int h) { return static_cast<Var>(p * holes + h); };
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) c.push_back(pos(var(p, h)));
    f.add_clause(c);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        f.add_clause({neg(var(p1, h)), neg(var(p2, h))});
  SolverConfig cfg;
  cfg.max_conflicts = 2;
  EXPECT_EQ(solve_cnf(f, cfg).status, SolveStatus::kUnknown);
  // And with a real budget it is UNSAT.
  EXPECT_EQ(solve_cnf(f).status, SolveStatus::kUnsat);
}

TEST(Solver, LubySequenceIsCorrectAndTotal) {
  // Regression: the original subtractive descent underflowed whenever the
  // index landed on a subsequence boundary (first at i == 3), turning the
  // restart computation into an infinite loop mid-solve. Pin the sequence
  // and, implicitly, termination.
  const std::uint64_t expected[] = {1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1,
                                    1, 2, 4, 8, 1, 1, 2, 1, 1, 2, 4,
                                    1, 1, 2, 1, 1, 2, 4, 8, 16};
  for (std::size_t i = 0; i < std::size(expected); ++i)
    EXPECT_EQ(Solver::luby(i), expected[i]) << "at index " << i;
  // Self-similarity: Luby(2^k - 2) == 2^(k-1) (last element of each
  // complete subsequence), Luby(2^k - 1) == 1 (start of the next).
  for (std::uint64_t k = 1; k < 30; ++k) {
    EXPECT_EQ(Solver::luby((1ULL << k) - 2), 1ULL << (k - 1));
    EXPECT_EQ(Solver::luby((1ULL << k) - 1), 1u);
  }
}

TEST(Solver, AgreesWithBruteForceOnRandomFormulas) {
  int sat_count = 0, unsat_count = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    // Vary density so the sweep covers both SAT and UNSAT regions.
    const Cnf f = random_cnf(9, 14 + seed % 14, seed);
    const bool expected = brute_force_sat(f);
    const auto r = solve_cnf(f);
    ASSERT_NE(r.status, SolveStatus::kUnknown);
    EXPECT_EQ(r.status == SolveStatus::kSat, expected) << "seed " << seed;
    if (expected) {
      ++sat_count;
      EXPECT_TRUE(f.eval(r.model));
    } else {
      ++unsat_count;
    }
  }
  // The mix must actually exercise both outcomes.
  EXPECT_GT(sat_count, 5);
  EXPECT_GT(unsat_count, 5);
}

TEST(Solver, CircuitSatOnTautologyCone) {
  // OR(a, ~a) is always 1: CIRCUIT-SAT trivially satisfiable.
  net::Network n;
  const auto a = n.add_input("a");
  const auto na = n.add_gate(net::GateType::kNot, {a});
  n.add_output(n.add_gate(net::GateType::kOr, {a, na}), "o");
  const auto r = solve_cnf(encode_circuit_sat(n));
  EXPECT_EQ(r.status, SolveStatus::kSat);
}

TEST(Solver, CircuitSatOnContradictionCone) {
  // AND(a, ~a) is always 0: CIRCUIT-SAT unsatisfiable.
  net::Network n;
  const auto a = n.add_input("a");
  const auto na = n.add_gate(net::GateType::kNot, {a});
  n.add_output(n.add_gate(net::GateType::kAnd, {a, na}), "o");
  EXPECT_EQ(solve_cnf(encode_circuit_sat(n)).status, SolveStatus::kUnsat);
}

TEST(Solver, ModelDecodesToRealTestVector) {
  // CIRCUIT-SAT model on c17 must actually set an output to 1.
  const net::Network n = gen::c17();
  const auto r = solve_cnf(encode_circuit_sat(n));
  ASSERT_EQ(r.status, SolveStatus::kSat);
  std::vector<bool> pattern;
  for (net::NodeId pi : n.inputs()) pattern.push_back(r.model[pi]);
  const auto values = n.eval(pattern);
  bool any = false;
  for (net::NodeId po : n.outputs()) any = any || values[po];
  EXPECT_TRUE(any);
}

TEST(Solver, LargeCircuitInstanceFast) {
  const net::Network n = net::decompose(gen::simple_alu(16));
  const auto r = solve_cnf(encode_circuit_sat(n));
  EXPECT_EQ(r.status, SolveStatus::kSat);
  EXPECT_LT(r.stats.conflicts, 2000u);
}

TEST(Solver, StatsPopulated) {
  const Cnf f = random_cnf(12, 40, 3);
  Solver s(f);
  s.solve();
  EXPECT_GT(s.stats().propagations, 0u);
}

TEST(Solver, RepeatSolveConsistent) {
  const Cnf f = random_cnf(10, 30, 11);
  Solver s(f);
  const auto first = s.solve();
  const auto second = s.solve();
  EXPECT_EQ(first, second);
}

class RandomCnfAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCnfAgreement, MatchesBruteForce) {
  // Denser, larger random instances than the bulk test above.
  const Cnf f = random_cnf(12, 50, GetParam() * 977 + 5);
  const auto r = solve_cnf(f);
  ASSERT_NE(r.status, SolveStatus::kUnknown);
  EXPECT_EQ(r.status == SolveStatus::kSat, brute_force_sat(f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnfAgreement,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace cwatpg::sat
