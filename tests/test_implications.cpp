#include <gtest/gtest.h>

#include "fault/atpg_circuit.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "sat/cache_sat.hpp"
#include "sat/encode.hpp"
#include "sat/implications.hpp"
#include "sat/solver.hpp"

namespace cwatpg::sat {
namespace {

TEST(UnitPropagate, ChainImplication) {
  Cnf f(4);
  f.add_clause({neg(0), pos(1)});
  f.add_clause({neg(1), pos(2)});
  f.add_clause({neg(2), pos(3)});
  std::vector<Lit> implied;
  const Lit a[] = {pos(0)};
  ASSERT_TRUE(unit_propagate(f, a, implied));
  ASSERT_EQ(implied.size(), 3u);
  EXPECT_EQ(implied[0], pos(1));
  EXPECT_EQ(implied[2], pos(3));
}

TEST(UnitPropagate, DetectsConflict) {
  Cnf f(2);
  f.add_clause({neg(0), pos(1)});
  f.add_clause({neg(0), neg(1)});
  std::vector<Lit> implied;
  const Lit a[] = {pos(0)};
  EXPECT_FALSE(unit_propagate(f, a, implied));
}

TEST(UnitPropagate, UnitClausesFireWithoutAssumptions) {
  Cnf f(2);
  f.add_clause({pos(0)});
  f.add_clause({neg(0), pos(1)});
  std::vector<Lit> implied;
  ASSERT_TRUE(unit_propagate(f, {}, implied));
  EXPECT_EQ(implied.size(), 2u);
}

TEST(UnitPropagate, ConflictingAssumptions) {
  Cnf f(1);
  std::vector<Lit> implied;
  const Lit a[] = {pos(0), neg(0)};
  EXPECT_FALSE(unit_propagate(f, a, implied));
}

TEST(StaticImplications, LearnsTransitiveBinaries) {
  // 0 -> 1 -> 2: propagating 0 implies 2, so (~0 ∨ 2) is learned.
  Cnf f(3);
  f.add_clause({neg(0), pos(1)});
  f.add_clause({neg(1), pos(2)});
  ImplicationStats stats;
  const Cnf g = add_static_implications(f, &stats);
  EXPECT_GT(stats.binaries_added, 0u);
  bool found = false;
  for (const Clause& c : g.clauses())
    if (c.size() == 2 &&
        ((c[0] == neg(0) && c[1] == pos(2)) ||
         (c[0] == pos(2) && c[1] == neg(0))))
      found = true;
  EXPECT_TRUE(found);
}

TEST(StaticImplications, SkipsExistingBinaries) {
  Cnf f(2);
  f.add_clause({neg(0), pos(1)});
  ImplicationStats stats;
  add_static_implications(f, &stats);
  EXPECT_EQ(stats.binaries_added, 0u);  // the only implication is direct
}

TEST(StaticImplications, FailedLiteralBecomesUnit) {
  // Propagating x0 conflicts => learn (~x0).
  Cnf f(2);
  f.add_clause({neg(0), pos(1)});
  f.add_clause({neg(0), neg(1)});
  ImplicationStats stats;
  const Cnf g = add_static_implications(f, &stats);
  EXPECT_EQ(stats.failed_literals, 1u);
  bool unit = false;
  for (const Clause& c : g.clauses())
    if (c.size() == 1 && c[0] == neg(0)) unit = true;
  EXPECT_TRUE(unit);
}

TEST(StaticImplications, ProvesUnsatWhenBothFail) {
  Cnf f(2);
  f.add_clause({pos(0), pos(1)});
  f.add_clause({pos(0), neg(1)});
  f.add_clause({neg(0), pos(1)});
  f.add_clause({neg(0), neg(1)});
  ImplicationStats stats;
  add_static_implications(f, &stats);
  EXPECT_TRUE(stats.proved_unsat);
}

TEST(StaticImplications, PreservesSatisfiability) {
  for (const net::Network& n :
       {gen::c17(), net::decompose(gen::comparator(3))}) {
    const Cnf f = encode_circuit_sat(n);
    const Cnf g = add_static_implications(f);
    EXPECT_EQ(solve_cnf(f).status, solve_cnf(g).status);
    // And every model of g is a model of f (g only adds consequences).
    const auto r = solve_cnf(g);
    if (r.status == SolveStatus::kSat) {
      EXPECT_TRUE(f.eval(r.model));
    }
  }
}

TEST(StaticImplications, LearnedClausesAreConsequences) {
  // Check semantic soundness by brute force on a small formula: every
  // learned clause must hold in every model of the original.
  const net::Network n = gen::fig4a_network();
  const Cnf f = encode_constraints(n);
  const Cnf g = add_static_implications(f);
  for (std::uint64_t m = 0; m < (1ULL << f.num_vars()); ++m) {
    std::vector<bool> assignment(f.num_vars());
    for (Var v = 0; v < f.num_vars(); ++v) assignment[v] = (m >> v) & 1;
    if (!f.eval(assignment)) continue;
    EXPECT_TRUE(g.eval(assignment)) << "model " << m;
  }
}

TEST(StaticImplications, ShrinksCacheSatTreeOnAtpgInstances) {
  // The paper's point: the implication preprocessing is one mechanism
  // that tames backtracking. On UNSAT (redundant-fault) miters the
  // augmented formula must never enlarge — and typically shrinks — the
  // Algorithm 1 tree.
  net::Network n;
  const auto a = n.add_input("a");
  const auto na = n.add_gate(net::GateType::kNot, {a});
  const auto g = n.add_gate(net::GateType::kOr, {a, na});
  const auto b = n.add_input("b");
  n.add_output(n.add_gate(net::GateType::kAnd, {g, b}), "o");
  const fault::AtpgCircuit atpg = fault::build_atpg_circuit(
      n, {g, fault::StuckAtFault::kStem, true});
  Cnf f = encode_circuit_sat(atpg.miter);
  f.add_clause({Lit(atpg.good_fault_net, true)});
  const Cnf aug = add_static_implications(f);

  CacheSatConfig cfg;
  cfg.early_sat = false;
  const auto before = cache_sat(f, identity_order(f), cfg);
  // The augmented formula has the same variables; reuse the order.
  const auto after = cache_sat(aug, identity_order(aug), cfg);
  EXPECT_EQ(before.status, after.status);
  EXPECT_LE(after.stats.nodes, before.stats.nodes);
}

TEST(StaticImplications, LearnBudgetRespected) {
  const net::Network n = net::decompose(gen::ripple_carry_adder(4));
  const Cnf f = encode_circuit_sat(n);
  ImplicationConfig cfg;
  cfg.max_learned = 5;
  ImplicationStats stats;
  const Cnf g = add_static_implications(f, &stats, cfg);
  EXPECT_LE(stats.binaries_added + stats.failed_literals, 5u);
  EXPECT_LE(g.num_clauses(), f.num_clauses() + 5);
}

}  // namespace
}  // namespace cwatpg::sat
