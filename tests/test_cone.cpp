#include <gtest/gtest.h>

#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/cone.hpp"
#include "netlist/decompose.hpp"

namespace cwatpg::net {
namespace {

TEST(Cone, TransitiveFanoutIncludesSelfAndPos) {
  const Network n = gen::c17();
  const NodeId g11 = *n.find("11");
  const auto tfo = transitive_fanout(n, g11);
  EXPECT_TRUE(tfo[g11]);
  EXPECT_TRUE(tfo[*n.find("16")]);
  EXPECT_TRUE(tfo[*n.find("19")]);
  EXPECT_TRUE(tfo[*n.find("22")]);
  EXPECT_TRUE(tfo[*n.find("23")]);
  EXPECT_FALSE(tfo[*n.find("10")]);
  EXPECT_FALSE(tfo[*n.find("1")]);
}

TEST(Cone, TransitiveFaninIncludesRoots) {
  const Network n = gen::c17();
  const NodeId g16 = *n.find("16");
  const NodeId roots[] = {g16};
  const auto tfi = transitive_fanin(n, roots);
  EXPECT_TRUE(tfi[g16]);
  EXPECT_TRUE(tfi[*n.find("11")]);
  EXPECT_TRUE(tfi[*n.find("2")]);
  EXPECT_TRUE(tfi[*n.find("3")]);
  EXPECT_TRUE(tfi[*n.find("6")]);
  EXPECT_FALSE(tfi[*n.find("10")]);
  EXPECT_FALSE(tfi[*n.find("7")]);
}

TEST(Cone, ExtractPreservesTopology) {
  const Network n = gen::c17();
  const NodeId roots[] = {n.outputs()[0]};
  const SubCircuit sub = extract(n, transitive_fanin(n, roots));
  EXPECT_NO_THROW(sub.circuit.validate());
  EXPECT_EQ(sub.circuit.outputs().size(), 1u);
  // Mapping is mutually consistent.
  for (NodeId s = 0; s < sub.circuit.node_count(); ++s)
    EXPECT_EQ(sub.to_sub[sub.to_src[s]], s);
}

TEST(Cone, ExtractRejectsOpenMask) {
  const Network n = gen::c17();
  std::vector<bool> mask(n.node_count(), false);
  mask[*n.find("22")] = true;  // gate without its fanins
  EXPECT_THROW(extract(n, mask), std::invalid_argument);
}

TEST(Cone, ExtractRejectsWrongMaskSize) {
  const Network n = gen::c17();
  EXPECT_THROW(extract(n, std::vector<bool>(3, true)),
               std::invalid_argument);
}

TEST(Cone, OutputConeIsSingleOutput) {
  const Network n = decompose(gen::ripple_carry_adder(4));
  for (NodeId po : n.outputs()) {
    const SubCircuit cone = output_cone(n, po);
    EXPECT_EQ(cone.circuit.outputs().size(), 1u);
    EXPECT_NO_THROW(cone.circuit.validate());
  }
}

TEST(Cone, OutputConeSizesGrowAlongCarryChain) {
  const Network n = decompose(gen::ripple_carry_adder(8));
  // s0's cone is tiny; cout's cone is nearly the whole adder.
  const SubCircuit first = output_cone(n, n.outputs().front());
  const SubCircuit last = output_cone(n, n.outputs().back());
  EXPECT_LT(first.circuit.node_count(), last.circuit.node_count());
  EXPECT_GT(last.circuit.node_count(), n.node_count() / 2);
}

TEST(Cone, OutputConeRejectsNonOutput) {
  const Network n = gen::c17();
  EXPECT_THROW(output_cone(n, *n.find("10")), std::invalid_argument);
}

TEST(Cone, FaultConeContainsSiteAndObservers) {
  const Network n = gen::c17();
  const NodeId g11 = *n.find("11");
  const SubCircuit cone = fault_cone(n, g11);
  // Both outputs observe faults on G11, so the cone is the whole circuit.
  EXPECT_EQ(cone.circuit.node_count(), n.node_count());
  EXPECT_EQ(cone.circuit.outputs().size(), 2u);
}

TEST(Cone, FaultConeRestrictsToObservingOutputs) {
  const Network n = gen::c17();
  const NodeId g10 = *n.find("10");
  const SubCircuit cone = fault_cone(n, g10);
  // G10 only reaches output 22.
  EXPECT_EQ(cone.circuit.outputs().size(), 1u);
  EXPECT_LT(cone.circuit.node_count(), n.node_count());
}

TEST(Cone, FaultConeOnPiCoversItsInfluence) {
  const Network n = gen::c17();
  const NodeId pi3 = *n.find("3");  // feeds both NAND(1,3) and NAND(3,6)
  const SubCircuit cone = fault_cone(n, pi3);
  EXPECT_EQ(cone.circuit.outputs().size(), 2u);
  EXPECT_EQ(cone.circuit.node_count(), n.node_count());
}

TEST(Cone, FaultConeUnobservableThrows) {
  Network n;
  const NodeId a = n.add_input("a");
  n.add_gate(GateType::kNot, {a});  // dangling gate
  const NodeId keep = n.add_gate(GateType::kBuf, {a});
  n.add_output(keep, "o");
  EXPECT_THROW(fault_cone(n, 1), std::invalid_argument);
}

TEST(Cone, FaultConeMaskClosedUnderFanin) {
  const Network n = decompose(gen::comparator(4));
  for (NodeId id = 0; id < n.node_count(); id += 3) {
    if (n.type(id) == GateType::kOutput) continue;
    if (n.fanouts(id).empty()) continue;
    const SubCircuit cone = fault_cone(n, id);
    EXPECT_NO_THROW(cone.circuit.validate());
    EXPECT_GE(cone.circuit.outputs().size(), 1u);
  }
}

TEST(Cone, TreeFaultConeIsPathToRootPlusSupport) {
  const Network n = gen::random_tree(30, 3, 5);
  // In a tree, TFO of any node is the single path to the output.
  for (NodeId id = 0; id < n.node_count(); ++id) {
    if (n.fanouts(id).empty()) continue;
    const auto tfo = transitive_fanout(n, id);
    std::size_t count = 0;
    for (NodeId v = 0; v < n.node_count(); ++v)
      if (tfo[v]) ++count;
    EXPECT_LE(count, n.node_count());
    // Path property: each TFO node except the PO marker has exactly one
    // fanout inside the TFO.
    for (NodeId v = 0; v < n.node_count(); ++v) {
      if (!tfo[v] || n.type(v) == GateType::kOutput) continue;
      std::size_t inside = 0;
      for (NodeId fo : n.fanouts(v))
        if (tfo[fo]) ++inside;
      EXPECT_EQ(inside, 1u);
    }
  }
}

}  // namespace
}  // namespace cwatpg::net
