// End-to-end and unit coverage for the serving subsystem (src/svc): the
// cwatpg.rpc/1 frame codec, the content-addressed circuit registry, the
// bounded job queue, and the Server request lifecycle over an in-memory
// duplex transport — including the determinism contract (served run_atpg
// is byte-identical to a direct engine call) and the exactly-one-terminal-
// response guarantee under concurrent submitters (run under TSan via the
// `tsan` ctest label).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "fault/fsim.hpp"
#include "fault/tegus.hpp"
#include "gen/structured.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/decompose.hpp"
#include "svc/client.hpp"
#include "svc/journal.hpp"
#include "svc/proto.hpp"
#include "svc/queue.hpp"
#include "svc/registry.hpp"
#include "svc/server.hpp"
#include "svc/transport.hpp"
#include "util/failpoint.hpp"

namespace cwatpg::svc {
namespace {

// ---- shared helpers -------------------------------------------------------

std::string bench_text(const net::Network& n) {
  std::ostringstream out;
  net::write_bench(out, n);
  return out.str();
}

/// The circuit most server tests serve: small enough that a run_atpg job
/// finishes in milliseconds, large enough to have a real fault list.
net::Network test_circuit() { return net::decompose(gen::comparator(3)); }

obs::Json request_json(std::uint64_t id, const char* kind,
                       obs::Json params = obs::Json::object()) {
  obs::Json j = obs::Json::object();
  j["schema"] = kRpcSchema;
  j["id"] = id;
  j["kind"] = kind;
  j["params"] = std::move(params);
  return j;
}

/// Test-side client: sequences ids, sends requests, reads frames. (Named
/// TestClient because svc::Client — the retrying production client — is
/// also visible in this namespace.)
struct TestClient {
  Transport* t;
  std::uint64_t next_id = 1;

  std::uint64_t send(const char* kind, obs::Json params = obs::Json::object()) {
    const std::uint64_t id = next_id++;
    t->write(request_json(id, kind, std::move(params)));
    return id;
  }

  obs::Json recv() {
    obs::Json frame;
    EXPECT_TRUE(t->read(frame)) << "transport closed while awaiting a frame";
    return frame;
  }

  /// Send + read one frame; only valid for inline (control-plane) kinds.
  obs::Json call(const char* kind, obs::Json params = obs::Json::object()) {
    const std::uint64_t id = send(kind, std::move(params));
    obs::Json resp = recv();
    EXPECT_EQ(resp.at("id").as_u64(), id);
    return resp;
  }
};

/// A Server bound to a duplex pair with its serve() loop on a thread.
struct ServedFixture {
  DuplexPair pair = make_duplex();
  Server server;
  std::thread loop;
  TestClient client{pair.client.get()};

  explicit ServedFixture(ServerOptions options) : server(options) {
    loop = std::thread([this] { server.serve(*pair.server); });
  }
  ~ServedFixture() {
    pair.client->close();  // implicit shutdown if the test didn't send one
    loop.join();
  }

  /// Loads `n` and returns its registry key.
  std::string load(const net::Network& n) {
    obs::Json params = obs::Json::object();
    params["name"] = n.name();
    params["text"] = bench_text(n);
    obs::Json resp = client.call("load_circuit", std::move(params));
    EXPECT_TRUE(resp.at("ok").as_bool()) << resp.dump();
    return resp.at("result").at("circuit").at("key").as_string();
  }
};

// ---- proto: frame codec ---------------------------------------------------

TEST(SvcProto, FrameRoundTrip) {
  obs::Json msg = request_json(42, "status");
  std::stringstream stream;
  write_frame(stream, msg);
  obs::Json back;
  ASSERT_TRUE(read_frame(stream, back));
  EXPECT_EQ(back, msg);
  // Stream is now at a clean boundary: next read is EOF, not an error.
  EXPECT_FALSE(read_frame(stream, back));
}

TEST(SvcProto, BackToBackFramesStayFramed) {
  std::stringstream stream;
  for (int i = 0; i < 3; ++i)
    write_frame(stream, request_json(static_cast<std::uint64_t>(i), "status"));
  obs::Json frame;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(read_frame(stream, frame));
    EXPECT_EQ(frame.at("id").as_u64(), static_cast<std::uint64_t>(i));
  }
  EXPECT_FALSE(read_frame(stream, frame));
}

TEST(SvcProto, OversizedFrameRejectedBeforeAllocation) {
  // Header advertises 1 GiB; the cap must fire on the header alone.
  std::stringstream stream;
  stream << (std::size_t(1) << 30) << "\n";
  obs::Json frame;
  EXPECT_THROW(read_frame(stream, frame, 1024), ProtocolError);
}

TEST(SvcProto, TruncatedPayloadIsAnError) {
  std::stringstream stream;
  stream << "100\n{\"partial\":true}";
  obs::Json frame;
  EXPECT_THROW(read_frame(stream, frame), ProtocolError);
}

TEST(SvcProto, MalformedHeaderIsAnError) {
  std::stringstream stream("not-a-length\n{}");
  obs::Json frame;
  EXPECT_THROW(read_frame(stream, frame), ProtocolError);
}

TEST(SvcProto, DeeplyNestedPayloadRejected) {
  // A hostile "[[[[…" document must fail the svc depth limit, not recurse
  // the parser into the ground.
  std::string bomb(kMaxFrameDepth + 1, '[');
  bomb.append(kMaxFrameDepth + 1, ']');
  std::stringstream stream;
  stream << bomb.size() << "\n" << bomb;
  obs::Json frame;
  EXPECT_THROW(read_frame(stream, frame), ProtocolError);
}

TEST(SvcProto, RequestValidation) {
  EXPECT_NO_THROW(Request::from_json(request_json(1, "run_atpg")));

  obs::Json no_schema = request_json(1, "status");
  no_schema["schema"] = "cwatpg.rpc/99";
  EXPECT_THROW(Request::from_json(no_schema), ProtocolError);

  obs::Json bad_kind = request_json(1, "frobnicate");
  EXPECT_THROW(Request::from_json(bad_kind), ProtocolError);

  obs::Json bad_params = request_json(1, "status");
  bad_params["params"] = "not an object";
  EXPECT_THROW(Request::from_json(bad_params), ProtocolError);

  obs::Json no_id = obs::Json::object();
  no_id["schema"] = kRpcSchema;
  no_id["kind"] = "status";
  EXPECT_THROW(Request::from_json(no_id), ProtocolError);

  // params may be omitted entirely; it defaults to an empty object.
  obs::Json minimal = obs::Json::object();
  minimal["schema"] = kRpcSchema;
  minimal["id"] = std::uint64_t(7);
  minimal["kind"] = "status";
  const Request req = Request::from_json(minimal);
  EXPECT_TRUE(req.params.is_object());
  EXPECT_EQ(req.kind, RequestKind::kStatus);
}

TEST(SvcProto, KindNamesRoundTrip) {
  for (RequestKind kind :
       {RequestKind::kLoadCircuit, RequestKind::kRunAtpg, RequestKind::kFsim,
        RequestKind::kStatus, RequestKind::kCancel, RequestKind::kShutdown}) {
    const auto parsed = parse_request_kind(to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_request_kind("no_such_kind").has_value());
}

TEST(SvcProto, BitCodecRoundTrip) {
  const std::vector<bool> bits = {true, false, false, true, true};
  EXPECT_EQ(encode_bits(bits), "10011");
  EXPECT_EQ(decode_bits("10011", 5), bits);
  EXPECT_THROW(decode_bits("10011", 4), ProtocolError);  // wrong length
  EXPECT_THROW(decode_bits("10x11", 5), ProtocolError);  // bad character
}

TEST(SvcProto, ResponseShapes) {
  const obs::Json ok = make_response(9, obs::Json::object());
  EXPECT_EQ(ok.at("schema").as_string(), kRpcSchema);
  EXPECT_TRUE(ok.at("ok").as_bool());
  EXPECT_EQ(ok.at("id").as_u64(), 9u);

  const obs::Json err = make_error(9, ErrorCode::kOverloaded, "try later");
  EXPECT_FALSE(err.at("ok").as_bool());
  EXPECT_EQ(err.at("error").at("code").as_string(), "overloaded");
  EXPECT_EQ(err.at("error").at("message").as_string(), "try later");
}

// ---- transports -----------------------------------------------------------

TEST(SvcTransport, StreamRoundTrip) {
  std::stringstream wire;
  StreamTransport writer(wire, wire);
  writer.write(request_json(1, "status"));
  writer.write(request_json(2, "status"));
  obs::Json frame;
  ASSERT_TRUE(writer.read(frame));
  EXPECT_EQ(frame.at("id").as_u64(), 1u);
  ASSERT_TRUE(writer.read(frame));
  EXPECT_EQ(frame.at("id").as_u64(), 2u);
  EXPECT_FALSE(writer.read(frame));
}

TEST(SvcTransport, DuplexDeliversBothDirectionsInOrder) {
  DuplexPair pair = make_duplex();
  pair.client->write(request_json(1, "status"));
  pair.server->write(make_response(1, obs::Json::object()));
  obs::Json frame;
  ASSERT_TRUE(pair.server->read(frame));
  EXPECT_EQ(frame.at("kind").as_string(), "status");
  ASSERT_TRUE(pair.client->read(frame));
  EXPECT_TRUE(frame.at("ok").as_bool());
}

TEST(SvcTransport, CloseDrainsThenSignalsEof) {
  DuplexPair pair = make_duplex();
  pair.client->write(request_json(1, "status"));
  pair.client->close();
  obs::Json frame;
  ASSERT_TRUE(pair.server->read(frame));  // buffered frame survives close
  EXPECT_FALSE(pair.server->read(frame));
}

// ---- registry -------------------------------------------------------------

TEST(SvcRegistry, LoadDedupsByContent) {
  CircuitRegistry reg(std::size_t(64) << 20);
  const std::string text = bench_text(test_circuit());
  const auto a = reg.load_bench(text, "first");
  const auto b = reg.load_bench(text, "second");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());  // the same cached entry, not a copy
  const RegistryStats stats = reg.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.loads, 2u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(SvcRegistry, ContentHashIgnoresNames) {
  auto build = [](const char* in1, const char* in2, const char* out) {
    net::Network n;
    const auto a = n.add_input(in1);
    const auto b = n.add_input(in2);
    n.add_output(n.add_gate(net::GateType::kAnd, {a, b}), out);
    return n;
  };
  EXPECT_EQ(content_hash(build("a", "b", "o")),
            content_hash(build("x", "y", "z")));

  net::Network other;
  const auto a = other.add_input("a");
  const auto b = other.add_input("b");
  other.add_output(other.add_gate(net::GateType::kOr, {a, b}), "o");
  EXPECT_NE(content_hash(build("a", "b", "o")), content_hash(other));
}

TEST(SvcRegistry, EntryPrecomputesFaultListAndCnf) {
  CircuitRegistry reg(std::size_t(64) << 20);
  const net::Network n = test_circuit();
  const auto entry = reg.load_bench(bench_text(n), "c");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->faults.size(), fault::collapsed_fault_list(n).size());
  EXPECT_GT(entry->base_cnf.num_clauses(), 0u);
  EXPECT_GT(entry->approx_bytes, 0u);
  EXPECT_EQ(entry->key.size(), 16u);
  // The pinned shared miter covers the entry's whole collapsed fault list.
  ASSERT_NE(entry->miter, nullptr);
  EXPECT_GT(entry->miter->num_clauses(), entry->base_cnf.num_clauses());
  for (const fault::StuckAtFault& f : entry->faults)
    EXPECT_TRUE(entry->miter->covers(f));
}

TEST(SvcRegistry, LruEvictionUnderByteBudget) {
  // A 1-byte budget forces eviction on every insert, but the registry must
  // always retain the latest entry (a cache that cannot hold what it was
  // just asked to load is useless).
  CircuitRegistry reg(1);
  const auto first = reg.load_bench(bench_text(test_circuit()), "first");
  const auto second =
      reg.load_bench(bench_text(net::decompose(gen::comparator(4))), "second");
  const RegistryStats stats = reg.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  // The evicted entry stays alive through our shared_ptr: eviction can
  // never yank a circuit out from under an in-flight job.
  EXPECT_FALSE(first->faults.empty());
  EXPECT_EQ(reg.find(first->key), nullptr);   // gone from the registry
  EXPECT_NE(reg.find(second->key), nullptr);  // the newest entry retained
}

TEST(SvcRegistry, FindMissCountsAndReturnsNull) {
  CircuitRegistry reg(std::size_t(64) << 20);
  EXPECT_EQ(reg.find("0000000000000000"), nullptr);
  EXPECT_EQ(reg.stats().misses, 1u);
}

// ---- job queue ------------------------------------------------------------

Job make_job(std::uint64_t id, int priority = 0) {
  Job job;
  job.request_id = id;
  job.priority = priority;
  job.budget = std::make_shared<Budget>();
  return job;
}

TEST(SvcQueue, PriorityFirstFifoWithinLevel) {
  JobQueue q(8);
  ASSERT_TRUE(q.push(make_job(1, 0)));
  ASSERT_TRUE(q.push(make_job(2, 5)));
  ASSERT_TRUE(q.push(make_job(3, 0)));
  ASSERT_TRUE(q.push(make_job(4, 5)));
  Job job;
  std::vector<std::uint64_t> order;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.pop(job));
    order.push_back(job.request_id);
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{2, 4, 1, 3}));
}

TEST(SvcQueue, AdmissionControlRejectsWhenFull) {
  JobQueue q(2);
  EXPECT_TRUE(q.push(make_job(1)));
  EXPECT_TRUE(q.push(make_job(2)));
  EXPECT_FALSE(q.push(make_job(3)));  // full: reject now, not queue forever
  const QueueStats stats = q.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.depth, 2u);
  EXPECT_EQ(stats.max_depth, 2u);
}

TEST(SvcQueue, RemoveTakesQueuedJobExactlyOnce) {
  JobQueue q(4);
  ASSERT_TRUE(q.push(make_job(7)));
  EXPECT_FALSE(q.remove(9, 7).has_value());  // wrong session: not yours
  const auto removed = q.remove(0, 7);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->request_id, 7u);
  EXPECT_FALSE(q.remove(0, 7).has_value());  // second remove: already gone
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_EQ(q.stats().removed, 1u);
}

TEST(SvcQueue, CloseDrainsRemainingJobsThenStops) {
  JobQueue q(4);
  ASSERT_TRUE(q.push(make_job(1)));
  ASSERT_TRUE(q.push(make_job(2)));
  q.close();
  EXPECT_FALSE(q.push(make_job(3)));  // admission closed
  Job job;
  EXPECT_TRUE(q.pop(job));  // shutdown path still drains queued jobs
  EXPECT_TRUE(q.pop(job));
  EXPECT_FALSE(q.pop(job));  // closed AND drained: consumer terminates
}

// ---- server over an in-memory duplex --------------------------------------

TEST(SvcServer, LoadCircuitReportsShapeAndDedups) {
  ServedFixture f({.threads = 1});
  const net::Network n = test_circuit();
  obs::Json params = obs::Json::object();
  params["name"] = "one";
  params["text"] = bench_text(n);
  obs::Json resp = f.client.call("load_circuit", std::move(params));
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
  const obs::Json& circuit = resp.at("result").at("circuit");
  EXPECT_EQ(circuit.at("key").as_string().size(), 16u);
  EXPECT_EQ(circuit.at("inputs").as_u64(), n.inputs().size());
  EXPECT_EQ(circuit.at("outputs").as_u64(), n.outputs().size());
  EXPECT_GT(circuit.at("faults").as_u64(), 0u);
  EXPECT_GT(circuit.at("cnf_clauses").as_u64(), 0u);
  // Idempotency ack: a first load of new content says so...
  EXPECT_FALSE(resp.at("result").at("already_loaded").as_bool());

  // ...and a re-load of identical content (under another name) acks as a
  // dedup hit, so a retrying client — or a cluster coordinator replaying
  // replication after a failover — can tell the no-op apart.
  obs::Json params2 = obs::Json::object();
  params2["name"] = "two";
  params2["text"] = bench_text(n);
  obs::Json resp2 = f.client.call("load_circuit", std::move(params2));
  ASSERT_TRUE(resp2.at("ok").as_bool()) << resp2.dump();
  EXPECT_TRUE(resp2.at("result").at("already_loaded").as_bool());
  EXPECT_EQ(resp2.at("result").at("circuit").at("key").as_string(),
            circuit.at("key").as_string());
  EXPECT_EQ(f.server.registry_stats().entries, 1u);
}

TEST(SvcServer, MalformedRequestsGetBadRequestWithCorrelatedId) {
  ServedFixture f({.threads = 1});
  // Unknown kind: validation fails but the id is recoverable.
  f.client.t->write(request_json(77, "frobnicate"));
  obs::Json resp = f.client.recv();
  EXPECT_EQ(resp.at("id").as_u64(), 77u);
  EXPECT_FALSE(resp.at("ok").as_bool());
  EXPECT_EQ(resp.at("error").at("code").as_string(), "bad_request");

  // Job against a circuit that was never loaded.
  obs::Json params = obs::Json::object();
  params["circuit"] = "ffffffffffffffff";
  resp = f.client.call("run_atpg", std::move(params));
  EXPECT_EQ(resp.at("error").at("code").as_string(), "not_found");

  // Malformed bench text is the client's error, not an internal one.
  params = obs::Json::object();
  params["text"] = "this is not a bench netlist";
  resp = f.client.call("load_circuit", std::move(params));
  EXPECT_EQ(resp.at("error").at("code").as_string(), "bad_request");
}

/// The determinism contract, end to end: a served run_atpg must be
/// byte-identical to calling the engine directly with the same options —
/// at one thread and at several.
TEST(SvcServer, ServedRunAtpgMatchesDirectCallByteForByte) {
  ServedFixture f({.threads = 2});
  const net::Network n = test_circuit();
  const std::string key = f.load(n);

  // The server solves the *round-tripped* network; compare against the
  // same bytes it parsed, not the pre-serialization original.
  const net::Network round_tripped =
      net::read_bench_string(bench_text(n), n.name());
  fault::AtpgOptions direct_opts;
  direct_opts.seed = 1234;
  const fault::AtpgResult direct = fault::run_atpg(round_tripped, direct_opts);

  for (std::uint64_t threads : {std::uint64_t(1), std::uint64_t(3)}) {
    obs::Json params = obs::Json::object();
    params["circuit"] = key;
    params["seed"] = std::uint64_t(1234);
    params["threads"] = threads;
    obs::Json resp = f.client.call("run_atpg", std::move(params));
    ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
    const obs::Json& result = resp.at("result");
    EXPECT_EQ(result.at("engine").as_string(),
              threads > 1 ? "parallel" : "serial");
    EXPECT_FALSE(result.at("interrupted").as_bool());
    EXPECT_EQ(result.at("faults").as_u64(), direct.outcomes.size());
    EXPECT_EQ(result.at("num_detected").as_u64(), direct.num_detected);
    EXPECT_EQ(result.at("num_untestable").as_u64(), direct.num_untestable);
    EXPECT_DOUBLE_EQ(result.at("coverage").as_double(),
                     direct.fault_coverage());
    const obs::Json& tests = result.at("tests");
    ASSERT_EQ(tests.size(), direct.tests.size());
    for (std::size_t i = 0; i < direct.tests.size(); ++i)
      EXPECT_EQ(tests[i].as_string(), encode_bits(direct.tests[i]))
          << "pattern " << i << " diverged at threads=" << threads;
    EXPECT_EQ(result.at("run_report").at("schema").as_string(),
              "cwatpg.run_report/1");
  }
}

/// Same contract for the incremental engine: a served `engine=incremental`
/// job — which runs against the registry's prebuilt pinned miter — must be
/// byte-identical to a direct engine call that builds its own encoding,
/// serial and parallel alike.
TEST(SvcServer, ServedIncrementalMatchesDirectCallByteForByte) {
  ServedFixture f({.threads = 3});
  const net::Network n = test_circuit();
  const std::string key = f.load(n);
  const net::Network round_tripped =
      net::read_bench_string(bench_text(n), n.name());

  fault::AtpgOptions direct_opts;
  direct_opts.seed = 77;
  direct_opts.engine = fault::AtpgEngine::kIncremental;

  for (std::uint64_t threads : {std::uint64_t(1), std::uint64_t(3)}) {
    fault::AtpgResult direct;
    if (threads > 1) {
      fault::ParallelAtpgOptions popts;
      popts.base = direct_opts;
      popts.num_threads = threads;
      direct = fault::run_atpg_parallel(round_tripped, popts);
    } else {
      direct = fault::run_atpg(round_tripped, direct_opts);
    }

    obs::Json params = obs::Json::object();
    params["circuit"] = key;
    params["seed"] = std::uint64_t(77);
    params["threads"] = threads;
    params["engine"] = "incremental";
    obs::Json resp = f.client.call("run_atpg", std::move(params));
    ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
    const obs::Json& result = resp.at("result");
    EXPECT_EQ(result.at("engine").as_string(),
              threads > 1 ? "parallel-incremental" : "incremental");
    EXPECT_EQ(result.at("faults").as_u64(), direct.outcomes.size());
    EXPECT_EQ(result.at("num_detected").as_u64(), direct.num_detected);
    EXPECT_EQ(result.at("num_untestable").as_u64(), direct.num_untestable);
    const obs::Json& tests = result.at("tests");
    ASSERT_EQ(tests.size(), direct.tests.size());
    for (std::size_t i = 0; i < direct.tests.size(); ++i)
      EXPECT_EQ(tests[i].as_string(), encode_bits(direct.tests[i]))
          << "pattern " << i << " diverged at threads=" << threads;
    // kIncremental attribution survives into the report, matching the
    // direct run's count exactly (0 is fine when the random phase already
    // dropped everything — what matters is that the columns agree).
    std::uint64_t direct_incremental = 0;
    for (const fault::FaultOutcome& o : direct.outcomes)
      if (o.engine == fault::SolveEngine::kIncremental) ++direct_incremental;
    EXPECT_EQ(result.at("run_report")
                  .at("faults")
                  .at("solve_engine")
                  .at("incremental")
                  .as_u64(),
              direct_incremental);
  }
}

TEST(SvcServer, RunAtpgRejectsUnknownEngine) {
  ServedFixture f({.threads = 1});
  const std::string key = f.load(test_circuit());
  obs::Json params = obs::Json::object();
  params["circuit"] = key;
  params["engine"] = "quantum";
  obs::Json resp = f.client.call("run_atpg", std::move(params));
  EXPECT_EQ(resp.at("error").at("code").as_string(), "bad_request");
}

TEST(SvcServer, ServedFsimMatchesDirectCall) {
  ServedFixture f({.threads = 1});
  const net::Network n = test_circuit();
  const std::string key = f.load(n);
  const net::Network round_tripped =
      net::read_bench_string(bench_text(n), n.name());

  // Use the direct engine's own tests as the pattern set.
  fault::AtpgOptions opts;
  const fault::AtpgResult atpg = fault::run_atpg(round_tripped, opts);
  const auto faults = fault::collapsed_fault_list(round_tripped);
  const std::vector<bool> direct =
      fault::fault_simulate(round_tripped, faults, atpg.tests);
  const auto direct_detected = static_cast<std::uint64_t>(
      std::count(direct.begin(), direct.end(), true));

  obs::Json patterns = obs::Json::array();
  for (const fault::Pattern& p : atpg.tests) patterns.push_back(encode_bits(p));
  obs::Json params = obs::Json::object();
  params["circuit"] = key;
  params["patterns"] = std::move(patterns);
  obs::Json resp = f.client.call("fsim", std::move(params));
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
  const obs::Json& result = resp.at("result");
  EXPECT_EQ(result.at("patterns").as_u64(), atpg.tests.size());
  EXPECT_EQ(result.at("faults").as_u64(), faults.size());
  EXPECT_EQ(result.at("detected").as_u64(), direct_detected);
}

TEST(SvcServer, FsimRejectsMalformedPatterns) {
  ServedFixture f({.threads = 1});
  const std::string key = f.load(test_circuit());

  obs::Json params = obs::Json::object();
  params["circuit"] = key;
  obs::Json resp = f.client.call("fsim", std::move(params));  // no patterns
  EXPECT_EQ(resp.at("error").at("code").as_string(), "bad_request");

  obs::Json bad = obs::Json::array();
  bad.push_back("01");  // wrong width for the circuit
  params = obs::Json::object();
  params["circuit"] = key;
  params["patterns"] = std::move(bad);
  resp = f.client.call("fsim", std::move(params));
  EXPECT_EQ(resp.at("error").at("code").as_string(), "bad_request");
}

TEST(SvcServer, StatusReportsServerAndPerJobState) {
  ServedFixture f({.threads = 2});
  obs::Json resp = f.client.call("status");
  ASSERT_TRUE(resp.at("ok").as_bool());
  const obs::Json& result = resp.at("result");
  EXPECT_EQ(result.at("threads").as_u64(), 2u);
  EXPECT_FALSE(result.at("shutting_down").as_bool());
  EXPECT_TRUE(result.contains("queue"));
  EXPECT_TRUE(result.contains("registry"));
  EXPECT_TRUE(result.contains("metrics"));

  // Per-job status of an id the server has never seen.
  obs::Json params = obs::Json::object();
  params["job"] = std::uint64_t(424242);
  resp = f.client.call("status", std::move(params));
  EXPECT_EQ(resp.at("result").at("state").as_string(), "unknown");
}

TEST(SvcServer, ExpiredDeadlineYieldsInterruptedResultNotHang) {
  // The deadline is armed at admission and already expired when the job
  // reaches a worker: the engine must stop at its first budget poll and
  // still produce a consistent (empty-progress) terminal response.
  ServedFixture f({.threads = 1});
  const std::string key = f.load(test_circuit());
  obs::Json params = obs::Json::object();
  params["circuit"] = key;
  params["deadline_seconds"] = 1e-9;
  obs::Json resp = f.client.call("run_atpg", std::move(params));
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
  EXPECT_TRUE(resp.at("result").at("interrupted").as_bool());
  EXPECT_EQ(resp.at("result").at("stop").as_string(), "deadline");
}

TEST(SvcServer, CancelProducesExactlyOneTerminalResponse) {
  ServedFixture f({.threads = 1});
  const std::string key = f.load(test_circuit());

  // Cancelling an unknown id is answered inline and touches nothing.
  obs::Json params = obs::Json::object();
  params["job"] = std::uint64_t(999999);
  obs::Json resp = f.client.call("cancel", std::move(params));
  EXPECT_EQ(resp.at("result").at("state").as_string(), "unknown");

  // Submit a job and cancel it immediately. Depending on timing the job is
  // still queued (terminal: `cancelled` error), already running (terminal:
  // ok with interrupted/finished result), or even done — every interleaving
  // is legal, but there must be EXACTLY one terminal for the job id.
  params = obs::Json::object();
  params["circuit"] = key;
  const std::uint64_t job_id = f.client.send("run_atpg", std::move(params));
  params = obs::Json::object();
  params["job"] = job_id;
  const std::uint64_t cancel_id = f.client.send("cancel", std::move(params));

  std::map<std::uint64_t, obs::Json> responses;
  while (responses.size() < 2) {
    obs::Json frame = f.client.recv();
    const std::uint64_t id = frame.at("id").as_u64();
    ASSERT_TRUE(responses.emplace(id, std::move(frame)).second)
        << "duplicate response for id " << id;
  }
  const obs::Json& cancel_resp = responses.at(cancel_id);
  ASSERT_TRUE(cancel_resp.at("ok").as_bool());
  const std::string state = cancel_resp.at("result").at("state").as_string();
  EXPECT_TRUE(state == "cancelled" || state == "cancelling" || state == "done")
      << state;
  const obs::Json& terminal = responses.at(job_id);
  if (!terminal.at("ok").as_bool()) {
    EXPECT_EQ(terminal.at("error").at("code").as_string(), "cancelled");
  }
}

TEST(SvcServer, DuplicateLiveRequestIdRejected) {
  ServedFixture f({.threads = 1});
  // Occupy the single worker with a slow job so id 555 is provably still
  // live (queued behind it) when its duplicate arrives — the tiny test
  // circuit alone solves faster than the reader can turn two frames
  // around.
  const std::string slow_key =
      f.load(net::decompose(gen::array_multiplier(5)));
  const std::string key = f.load(test_circuit());
  obs::Json params = obs::Json::object();
  params["circuit"] = slow_key;
  const std::uint64_t slow_id = f.client.send("run_atpg", std::move(params));

  params = obs::Json::object();
  params["circuit"] = key;
  obs::Json dup = request_json(555, "run_atpg", params);
  f.client.t->write(dup);
  f.client.t->write(dup);

  // Expect the duplicate's bad_request, one terminal for 555 and one for
  // the slow job, in any order.
  bool saw_duplicate_error = false, saw_terminal = false, saw_slow = false;
  for (int i = 0; i < 3; ++i) {
    obs::Json resp = f.client.recv();
    const std::uint64_t id = resp.at("id").as_u64();
    if (id == slow_id) {
      saw_slow = true;
      continue;
    }
    EXPECT_EQ(id, 555u);
    if (!resp.at("ok").as_bool() &&
        resp.at("error").at("code").as_string() == "bad_request") {
      saw_duplicate_error = true;
    } else if (resp.at("ok").as_bool()) {
      saw_terminal = true;
    }
  }
  EXPECT_TRUE(saw_duplicate_error);
  EXPECT_TRUE(saw_terminal);
  EXPECT_TRUE(saw_slow);
}

TEST(SvcServer, OverloadedQueueRejectsNotBlocks) {
  // One worker, one queue slot: flooding must answer `overloaded` for the
  // overflow instead of stalling the reader or growing a backlog. Exact
  // counts depend on scheduling; the invariant is one terminal per job and
  // at least one rejection under a flood this heavy.
  ServedFixture f({.threads = 1, .queue_capacity = 1});
  const std::string key = f.load(test_circuit());
  constexpr int kJobs = 12;
  std::set<std::uint64_t> pending;
  for (int i = 0; i < kJobs; ++i) {
    obs::Json params = obs::Json::object();
    params["circuit"] = key;
    pending.insert(f.client.send("run_atpg", std::move(params)));
  }
  std::size_t overloaded = 0;
  for (int i = 0; i < kJobs; ++i) {
    obs::Json resp = f.client.recv();
    ASSERT_EQ(pending.erase(resp.at("id").as_u64()), 1u)
        << "unexpected or duplicate response " << resp.dump();
    if (!resp.at("ok").as_bool()) {
      EXPECT_EQ(resp.at("error").at("code").as_string(), "overloaded");
      ++overloaded;
    }
  }
  EXPECT_TRUE(pending.empty());
  EXPECT_GT(overloaded, 0u);
  EXPECT_EQ(f.server.queue_stats().rejected, overloaded);
}

TEST(SvcServer, ShutdownDrainsInFlightAndAnswersLast) {
  ServedFixture f({.threads = 1, .queue_capacity = 16});
  const std::string key = f.load(test_circuit());
  constexpr int kJobs = 4;
  std::set<std::uint64_t> jobs;
  for (int i = 0; i < kJobs; ++i) {
    obs::Json params = obs::Json::object();
    params["circuit"] = key;
    jobs.insert(f.client.send("run_atpg", std::move(params)));
  }
  const std::uint64_t shutdown_id = f.client.send("shutdown");

  // The shutdown response is written only after every admitted job has
  // sent its terminal, so it must be the last frame on the stream.
  std::vector<obs::Json> frames;
  for (int i = 0; i < kJobs + 1; ++i) frames.push_back(f.client.recv());
  const obs::Json& last = frames.back();
  EXPECT_EQ(last.at("id").as_u64(), shutdown_id);
  ASSERT_TRUE(last.at("ok").as_bool()) << last.dump();
  EXPECT_TRUE(last.at("result").at("drained").as_bool());
  EXPECT_EQ(last.at("result").at("in_flight").as_u64(), 0u);
  for (int i = 0; i < kJobs; ++i) {
    ASSERT_EQ(jobs.erase(frames[i].at("id").as_u64()), 1u);
    // Each job either completed before the drain or was failed with
    // shutting_down; both are terminal, neither may be dropped.
    if (!frames[i].at("ok").as_bool()) {
      EXPECT_EQ(frames[i].at("error").at("code").as_string(),
                "shutting_down");
    }
  }
  EXPECT_TRUE(jobs.empty());
  obs::Json extra;
  EXPECT_FALSE(f.client.t->read(extra));  // stream closes after shutdown
}

/// The TSan centerpiece: several submitter threads race run_atpg, fsim and
/// cancel requests against one server while jobs complete out of order.
/// Every job must get exactly one terminal response, and a clean shutdown
/// must drain whatever is still in flight.
TEST(SvcServer, ConcurrentClientsEveryJobGetsExactlyOneTerminal) {
  ServedFixture f({.threads = 3, .queue_capacity = 64});
  const net::Network n = test_circuit();
  const std::string key = f.load(n);
  obs::Json fsim_patterns = obs::Json::array();
  fsim_patterns.push_back(std::string(n.inputs().size(), '1'));
  fsim_patterns.push_back(std::string(n.inputs().size(), '0'));

  constexpr int kThreads = 3;
  constexpr int kJobsPerThread = 6;
  std::vector<std::set<std::uint64_t>> job_ids(kThreads);
  std::vector<std::set<std::uint64_t>> control_ids(kThreads);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      // Ids are partitioned per thread so they never collide.
      std::uint64_t next = 1000 + static_cast<std::uint64_t>(t) * 1000;
      for (int i = 0; i < kJobsPerThread; ++i) {
        const std::uint64_t id = next++;
        obs::Json params = obs::Json::object();
        params["circuit"] = key;
        if (i % 3 == 1) {
          params["patterns"] = fsim_patterns;
          f.client.t->write(request_json(id, "fsim", std::move(params)));
        } else {
          params["seed"] = id;
          f.client.t->write(request_json(id, "run_atpg", std::move(params)));
        }
        job_ids[t].insert(id);
        if (i % 3 == 2) {
          // Race a cancel against the job we just submitted.
          const std::uint64_t cancel_id = next++;
          obs::Json cparams = obs::Json::object();
          cparams["job"] = id;
          f.client.t->write(
              request_json(cancel_id, "cancel", std::move(cparams)));
          control_ids[t].insert(cancel_id);
        }
      }
    });
  }
  for (std::thread& s : submitters) s.join();

  std::set<std::uint64_t> expected;
  for (int t = 0; t < kThreads; ++t) {
    expected.insert(job_ids[t].begin(), job_ids[t].end());
    expected.insert(control_ids[t].begin(), control_ids[t].end());
  }
  std::size_t want = expected.size();
  while (want-- > 0) {
    obs::Json resp = f.client.recv();
    const std::uint64_t id = resp.at("id").as_u64();
    ASSERT_EQ(expected.erase(id), 1u)
        << "duplicate or unknown response id " << id;
    if (!resp.at("ok").as_bool()) {
      const std::string code = resp.at("error").at("code").as_string();
      EXPECT_TRUE(code == "cancelled" || code == "overloaded") << code;
    }
  }
  EXPECT_TRUE(expected.empty());

  const std::uint64_t shutdown_id = f.client.send("shutdown");
  obs::Json resp = f.client.recv();
  EXPECT_EQ(resp.at("id").as_u64(), shutdown_id);
  EXPECT_TRUE(resp.at("result").at("drained").as_bool());
}

// ---- resilience -----------------------------------------------------------

#define SKIP_WITHOUT_FAILPOINTS() \
  if (!fp::kEnabled) GTEST_SKIP() << "built with CWATPG_FAILPOINTS=OFF"

/// Satellite regression for StreamTransport partial I/O: the byte-level
/// duplex delivers at most one 256-byte refill per read call, so any
/// frame larger than that arrives through genuine short reads that
/// read_exact must loop over (the bug class where istream::read sets
/// failbit on a merely-paused source).
TEST(SvcTransport, ByteDuplexDeliversLargeFramesThroughShortReads) {
  DuplexPair pair = make_byte_duplex();
  obs::Json params = obs::Json::object();
  params["blob"] = std::string(10000, 'x');  // ~40 refills per frame
  const obs::Json msg = request_json(1, "load_circuit", std::move(params));

  pair.client->write(msg);
  pair.client->write(msg);  // back-to-back: framing must not drift
  obs::Json got;
  ASSERT_TRUE(pair.server->read(got));
  EXPECT_EQ(got, msg);
  ASSERT_TRUE(pair.server->read(got));
  EXPECT_EQ(got, msg);

  pair.server->write(msg);  // and the other direction
  ASSERT_TRUE(pair.client->read(got));
  EXPECT_EQ(got, msg);

  pair.client->close();
  EXPECT_FALSE(pair.server->read(got)) << "close must surface as EOF";
}

TEST(SvcProto, ShortReadAndShortWriteFailpointsRoundTrip) {
  SKIP_WITHOUT_FAILPOINTS();
  obs::Json params = obs::Json::object();
  params["blob"] = std::string(997, 'y');
  const obs::Json msg = request_json(9, "status", std::move(params));

  std::stringstream stream;
  {
    // Writer dribbles 5 bytes per write pass; reader gets at most 3 per
    // read pass. The codec must still deliver the frame intact.
    fp::ScheduleScope fps(
        "svc.proto.write.short=always@5;svc.proto.read.short=always@3");
    write_frame(stream, msg);
    obs::Json got;
    ASSERT_TRUE(read_frame(stream, got));
    EXPECT_EQ(got, msg);
  }
}

TEST(SvcProto, CorruptLengthAndMidFrameEofFailpointsThrow) {
  SKIP_WITHOUT_FAILPOINTS();
  const obs::Json msg = request_json(3, "status");
  obs::Json got;
  {
    std::stringstream stream;
    write_frame(stream, msg);
    fp::ScheduleScope fps("svc.proto.read.corrupt_len=once");
    EXPECT_THROW(read_frame(stream, got), ProtocolError);
  }
  {
    std::stringstream stream;
    write_frame(stream, msg);
    fp::ScheduleScope fps("svc.proto.read.eof=once");
    EXPECT_THROW(read_frame(stream, got), ProtocolError);
  }
}

TEST(SvcClient, RetriesOverloadedWithBackoffUnderSameId) {
  SKIP_WITHOUT_FAILPOINTS();
  ServedFixture f({.threads = 1});
  const std::string key = f.load(test_circuit());

  std::vector<double> sleeps;
  ClientOptions copts;
  copts.sleep_fn = [&sleeps](double s) { sleeps.push_back(s); };
  Client retry(*f.pair.client, copts);

  fp::ScheduleScope fps("svc.queue.full=once");
  obs::Json params = obs::Json::object();
  params["circuit"] = key;
  const std::uint64_t id = retry.submit("run_atpg", std::move(params));
  const std::optional<obs::Json> resp = retry.await(id);
  ASSERT_TRUE(resp.has_value()) << "session tore during a retried submit";
  EXPECT_TRUE(resp->at("ok").as_bool()) << resp->dump();
  EXPECT_EQ(resp->at("id").as_u64(), id) << "resubmission must reuse the id";

  EXPECT_EQ(retry.stats().overloaded, 1u);
  EXPECT_EQ(retry.stats().retries, 1u);
  ASSERT_EQ(sleeps.size(), 1u);
  // First-attempt backoff: base scaled by jitter in [0.5, 1.0).
  EXPECT_GE(sleeps[0], copts.backoff_base_seconds * 0.5);
  EXPECT_LT(sleeps[0], copts.backoff_base_seconds);
}

TEST(SvcClient, ExhaustedRetriesSurfaceTheRejection) {
  SKIP_WITHOUT_FAILPOINTS();
  ServedFixture f({.threads = 1});
  const std::string key = f.load(test_circuit());

  ClientOptions copts;
  copts.max_attempts = 3;
  copts.sleep_fn = [](double) {};
  Client retry(*f.pair.client, copts);

  fp::ScheduleScope fps("svc.queue.full=always");
  obs::Json params = obs::Json::object();
  params["circuit"] = key;
  const std::uint64_t id = retry.submit("run_atpg", std::move(params));
  const std::optional<obs::Json> resp = retry.await(id);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->at("error").at("code").as_string(), "overloaded");
  EXPECT_EQ(retry.stats().retries, 2u) << "3 attempts = 2 resubmissions";
}

TEST(SvcServer, WatchdogCancelsJobWithNoProgress) {
  SKIP_WITHOUT_FAILPOINTS();
  ServedFixture f({.threads = 1,
                   .watchdog_stall_seconds = 0.05,
                   .watchdog_poll_seconds = 0.01});
  const std::string key = f.load(test_circuit());

  // The worker wedges for up to 2s making zero Budget polls; the watchdog
  // must cancel it long before that, after which the stall loop yields
  // and the engine runs to a cancelled (interrupted) — but terminal — end.
  fp::ScheduleScope fps("svc.server.execute.stall=always@2000");
  obs::Json params = obs::Json::object();
  params["circuit"] = key;
  const auto t0 = std::chrono::steady_clock::now();
  obs::Json resp = f.client.call("run_atpg", std::move(params));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_TRUE(resp.at("ok").as_bool()) << resp.dump();
  EXPECT_TRUE(resp.at("result").at("interrupted").as_bool());
  EXPECT_LT(elapsed, 1.5) << "watchdog should cancel at ~50ms, not wait "
                             "out the full stall";
}

TEST(SvcServer, WatchdogDetachesJobThatIgnoresCancel) {
  SKIP_WITHOUT_FAILPOINTS();
  ServedFixture f({.threads = 1,
                   .watchdog_stall_seconds = 0.05,
                   .watchdog_detach_seconds = 0.05,
                   .watchdog_poll_seconds = 0.01});
  const std::string key = f.load(test_circuit());

  // This worker also ignores cancellation (a true wedge, bounded at 700ms
  // so the drain below terminates). Escalation must reach detach: the
  // client gets its one `internal` terminal while the worker is still
  // stuck, and the worker's own eventual finish loses the CAS silently.
  fp::ScheduleScope fps(
      "svc.server.execute.stall=always@700;"
      "svc.server.stall.ignore_cancel=always");
  obs::Json params = obs::Json::object();
  params["circuit"] = key;
  obs::Json resp = f.client.call("run_atpg", std::move(params));
  EXPECT_FALSE(resp.at("ok").as_bool());
  EXPECT_EQ(resp.at("error").at("code").as_string(), "internal");
  EXPECT_NE(resp.at("error").at("message").as_string().find("detached"),
            std::string::npos);

  // Exactly-one-terminal: the next frame is the shutdown response, not a
  // second answer from the detached worker.
  obs::Json shut = f.client.call("shutdown");
  EXPECT_TRUE(shut.at("result").at("drained").as_bool());
}

TEST(SvcServer, WorkerThrowFailpointYieldsInternalTerminal) {
  SKIP_WITHOUT_FAILPOINTS();
  ServedFixture f({.threads = 1});
  const std::string key = f.load(test_circuit());
  fp::ScheduleScope fps("svc.server.execute.throw=once");
  obs::Json params = obs::Json::object();
  params["circuit"] = key;
  obs::Json resp = f.client.call("run_atpg", std::move(params));
  EXPECT_EQ(resp.at("error").at("code").as_string(), "internal");
}

TEST(SvcServer, RegistryEvictionUnderPinningStillServesTheJob) {
  SKIP_WITHOUT_FAILPOINTS();
  ServedFixture f({.threads = 1});
  const std::string key = f.load(test_circuit());

  // find() pins the entry via shared_ptr, then the failpoint evicts the
  // whole registry out from under it. The in-flight job must keep its
  // pinned circuit and complete; only the NEXT lookup misses.
  fp::ScheduleScope fps("svc.registry.evict=once");
  obs::Json params = obs::Json::object();
  params["circuit"] = key;
  obs::Json resp = f.client.call("run_atpg", params);
  EXPECT_TRUE(resp.at("ok").as_bool()) << resp.dump();

  obs::Json resp2 = f.client.call("run_atpg", std::move(params));
  EXPECT_EQ(resp2.at("error").at("code").as_string(), "not_found");
}

TEST(SvcServer, RegistryAllocFailureIsInternalNotBadRequest) {
  SKIP_WITHOUT_FAILPOINTS();
  ServedFixture f({.threads = 1});
  fp::ScheduleScope fps("svc.registry.alloc=once");
  obs::Json params = obs::Json::object();
  params["name"] = "c";
  params["text"] = bench_text(test_circuit());
  obs::Json resp = f.client.call("load_circuit", std::move(params));
  EXPECT_EQ(resp.at("error").at("code").as_string(), "internal")
      << "OOM is the server's failure; bad_request would tell the client "
         "to fix a valid netlist";
}

TEST(SvcServer, SolverAllocFailureIsInternalTerminal) {
  SKIP_WITHOUT_FAILPOINTS();
  ServedFixture f({.threads = 1});
  const std::string key = f.load(test_circuit());
  fp::ScheduleScope fps("sat.solver.alloc=once");
  obs::Json params = obs::Json::object();
  params["circuit"] = key;
  // No random phase: every fault goes to SAT, so the first solve hits the
  // armed allocation failure.
  params["random_blocks"] = 0;
  obs::Json resp = f.client.call("run_atpg", std::move(params));
  EXPECT_EQ(resp.at("error").at("code").as_string(), "internal");
}

/// Shutdown-vs-cancel race: cancels for queued/running jobs arrive
/// back-to-back with the shutdown. Whatever interleaving results, every
/// job and every control request gets exactly one response and the
/// shutdown response comes last. Run at 1 worker (everything queued) and
/// N workers (cancels race live executions) — the latter matters under
/// TSan (`ctest -L tsan`).
void shutdown_cancel_race(std::size_t threads) {
  ServedFixture f({.threads = threads});
  const std::string key = f.load(test_circuit());

  constexpr int kJobs = 6;
  std::vector<std::uint64_t> job_ids;
  for (int i = 0; i < kJobs; ++i) {
    obs::Json params = obs::Json::object();
    params["circuit"] = key;
    params["seed"] = static_cast<std::uint64_t>(i);
    job_ids.push_back(f.client.send("run_atpg", std::move(params)));
  }
  std::vector<std::uint64_t> control_ids;
  for (int i = 0; i < kJobs; i += 2) {
    obs::Json params = obs::Json::object();
    params["job"] = job_ids[static_cast<std::size_t>(i)];
    control_ids.push_back(f.client.send("cancel", std::move(params)));
  }
  const std::uint64_t shutdown_id = f.client.send("shutdown");

  std::map<std::uint64_t, int> seen;
  std::uint64_t last_id = 0;
  obs::Json frame;
  while (f.pair.client->read(frame)) {
    last_id = frame.at("id").as_u64();
    ++seen[last_id];
  }
  EXPECT_EQ(last_id, shutdown_id) << "shutdown must answer last";
  for (const std::uint64_t id : job_ids)
    EXPECT_EQ(seen[id], 1) << "job " << id;
  for (const std::uint64_t id : control_ids)
    EXPECT_EQ(seen[id], 1) << "cancel " << id;
  EXPECT_EQ(seen[shutdown_id], 1);
}

TEST(SvcServer, ShutdownVsCancelRaceSingleWorker) {
  shutdown_cancel_race(1);
}

TEST(SvcServer, ShutdownVsCancelRaceManyWorkers) {
  shutdown_cancel_race(4);
}

TEST(SvcServer, JournalRecordsLifecycleAndReportsInterrupted) {
  const std::string path =
      ::testing::TempDir() + "cwatpg_svc_journal_test.jsonl";
  std::remove(path.c_str());

  {
    ServedFixture f({.threads = 1, .journal_path = path});
    const std::string key = f.load(test_circuit());
    obs::Json params = obs::Json::object();
    params["circuit"] = key;
    obs::Json resp = f.client.call("run_atpg", std::move(params));
    EXPECT_TRUE(resp.at("ok").as_bool()) << resp.dump();
    f.client.call("shutdown");
  }
  {
    const Journal::Recovery rec = Journal::recover(path);
    EXPECT_EQ(rec.records, 2u) << "one accepted + one terminal";
    EXPECT_EQ(rec.corrupt, 0u);
    EXPECT_TRUE(rec.interrupted.empty()) << "clean run leaves nothing open";
  }

  // Simulate a crash: an accepted record the dead process never closed.
  {
    Journal j(path);
    j.record_accepted(777, "run_atpg", "ghost-circuit");
  }
  {
    ServedFixture f({.threads = 1, .journal_path = path});
    obs::Json resp = f.client.call("status");
    const obs::Json& interrupted =
        resp.at("result").at("interrupted_jobs");
    ASSERT_EQ(interrupted.size(), 1u) << resp.dump();
    for (const obs::Json& rec : interrupted.items()) {
      EXPECT_EQ(rec.at("job").as_u64(), 777u);
      EXPECT_EQ(rec.at("kind").as_string(), "run_atpg");
    }
    f.client.call("shutdown");
  }
  // The restart journaled `interrupted` for job 777, so a SECOND restart
  // reports nothing: the loss is surfaced exactly once.
  {
    ServedFixture f({.threads = 1, .journal_path = path});
    obs::Json resp = f.client.call("status");
    EXPECT_EQ(resp.at("result").at("interrupted_jobs").size(), 0u)
        << resp.dump();
  }
  std::remove(path.c_str());
}

TEST(SvcServer, JournalIoFailureDegradesButKeepsServing) {
  SKIP_WITHOUT_FAILPOINTS();
  const std::string path =
      ::testing::TempDir() + "cwatpg_svc_journal_degraded.jsonl";
  std::remove(path.c_str());
  ServedFixture f({.threads = 1, .journal_path = path});
  const std::string key = f.load(test_circuit());

  fp::ScheduleScope fps("svc.journal.io_error=always");
  obs::Json params = obs::Json::object();
  params["circuit"] = key;
  obs::Json resp = f.client.call("run_atpg", std::move(params));
  EXPECT_TRUE(resp.at("ok").as_bool())
      << "a dead disk degrades durability, not availability: "
      << resp.dump();

  obs::Json status = f.client.call("status");
  EXPECT_GE(status.at("result")
                .at("metrics")
                .at("counters")
                .at("svc.journal.failures")
                .as_u64(),
            2u)
      << status.dump();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cwatpg::svc
