// Coverage for the TCP serving layer (src/net): the shared frame-length
// parser, SocketTransport over real stream sockets, the NetServer
// event loop multiplexing concurrent clients onto one svc::Server
// (per-connection routing, disconnect-cancels-ownership, admission,
// idle reaping, the four net.* failpoints, drain-on-shutdown), and the
// cluster coordinator attached to remote TCP workers — including the
// served-vs-direct determinism contract across a real network boundary
// and shard failover when a remote worker dies. The multi-client
// interleavings run under TSan via the `tsan` ctest label.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "fault/tegus.hpp"
#include "gen/structured.hpp"
#include "net/listener.hpp"
#include "net/net_server.hpp"
#include "net/socket.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/decompose.hpp"
#include "svc/client.hpp"
#include "svc/cluster.hpp"
#include "svc/proto.hpp"
#include "svc/server.hpp"
#include "svc/transport.hpp"
#include "util/failpoint.hpp"

namespace cwatpg {
namespace {

// ---- shared helpers (same shapes as test_svc / test_cluster) --------------

std::string bench_text(const net::Network& n) {
  std::ostringstream out;
  net::write_bench(out, n);
  return out.str();
}

net::Network test_circuit() { return net::decompose(gen::comparator(3)); }

obs::Json request_json(std::uint64_t id, const char* kind,
                       obs::Json params = obs::Json::object()) {
  obs::Json j = obs::Json::object();
  j["schema"] = svc::kRpcSchema;
  j["id"] = id;
  j["kind"] = kind;
  j["params"] = std::move(params);
  return j;
}

struct TestClient {
  svc::Transport* t;
  std::uint64_t next_id = 1;

  std::uint64_t send(const char* kind,
                     obs::Json params = obs::Json::object()) {
    const std::uint64_t id = next_id++;
    t->write(request_json(id, kind, std::move(params)));
    return id;
  }

  obs::Json recv() {
    obs::Json frame;
    EXPECT_TRUE(t->read(frame)) << "transport closed while awaiting a frame";
    return frame;
  }

  obs::Json call(const char* kind, obs::Json params = obs::Json::object()) {
    const std::uint64_t id = send(kind, std::move(params));
    obs::Json resp = recv();
    EXPECT_EQ(resp.at("id").as_u64(), id);
    return resp;
  }
};

obs::Json load_params(const net::Network& n) {
  obs::Json params = obs::Json::object();
  params["name"] = n.name();
  params["text"] = bench_text(n);
  return params;
}

/// A Server behind a NetServer event loop on its own thread; clients dial
/// the loopback port the kernel picked.
struct TcpServed {
  svc::Server server;
  netio::NetServer net_server;
  std::thread loop;

  explicit TcpServed(svc::ServerOptions sopts = {.threads = 2},
                     netio::NetServerOptions nopts = {})
      : server(sopts), net_server(server, nopts) {
    loop = std::thread([this] { net_server.run(); });
  }
  ~TcpServed() {
    net_server.stop();  // no-op if a shutdown already ended run()
    loop.join();
  }

  std::unique_ptr<netio::SocketTransport> connect() {
    return std::make_unique<netio::SocketTransport>(
        netio::tcp_connect("127.0.0.1", net_server.port()));
  }
  std::uint64_t counter(const char* name) {
    return server.metrics().snapshot().counters[name];
  }
};

std::string load_over(TestClient& client, const net::Network& n) {
  obs::Json resp = client.call("load_circuit", load_params(n));
  EXPECT_TRUE(resp.at("ok").as_bool()) << resp.dump();
  return resp.at("result").at("circuit").at("key").as_string();
}

// ---- host:port parsing ----------------------------------------------------

TEST(NetParse, HostPortForms) {
  std::string host;
  std::uint16_t port = 0;
  netio::parse_host_port("127.0.0.1:8080", &host, &port);
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  netio::parse_host_port(":0", &host, &port);
  EXPECT_EQ(host, "0.0.0.0");  // empty host = all interfaces
  EXPECT_EQ(port, 0);
  EXPECT_THROW(netio::parse_host_port("no-colon", &host, &port),
               std::runtime_error);
  EXPECT_THROW(netio::parse_host_port("h:", &host, &port),
               std::runtime_error);
  EXPECT_THROW(netio::parse_host_port("h:12x", &host, &port),
               std::runtime_error);
  EXPECT_THROW(netio::parse_host_port("h:65536", &host, &port),
               std::runtime_error);
}

// ---- the shared frame-length parser (one header syntax, every transport) --

TEST(NetFraming, LengthParserAcceptsHeader) {
  svc::FrameLengthParser p;
  for (const char c : {'1', '2', '3'}) EXPECT_FALSE(p.feed(c));
  EXPECT_EQ(p.digits(), 3u);
  EXPECT_TRUE(p.feed('\n'));
  EXPECT_EQ(p.length(), 123u);
  p.reset();
  EXPECT_EQ(p.digits(), 0u);
}

TEST(NetFraming, LengthParserRejectsGarbage) {
  {
    svc::FrameLengthParser p;
    EXPECT_THROW(p.feed('x'), svc::ProtocolError);  // non-digit
  }
  {
    svc::FrameLengthParser p;
    EXPECT_THROW(p.feed('\n'), svc::ProtocolError);  // empty header
  }
  {
    svc::FrameLengthParser p;  // over the digit cap
    bool threw = false;
    try {
      for (std::size_t i = 0; i <= svc::kMaxFrameHeaderDigits; ++i)
        p.feed('9');
    } catch (const svc::ProtocolError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }
  {
    svc::FrameLengthParser p;  // cap checked at the header, pre-allocation
    p.feed('9');
    p.feed('9');
    EXPECT_THROW(p.feed('\n', /*max_bytes=*/10), svc::ProtocolError);
  }
}

// ---- SocketTransport over a socketpair ------------------------------------

struct SocketPair {
  std::unique_ptr<netio::SocketTransport> a, b;
  SocketPair() {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
      throw std::runtime_error("socketpair failed");
    a = std::make_unique<netio::SocketTransport>(sv[0]);
    b = std::make_unique<netio::SocketTransport>(sv[1]);
  }
};

TEST(NetSocket, FramesRoundTripBothDirections) {
  SocketPair sp;
  const obs::Json msg = request_json(7, "status");
  sp.a->write(msg);
  obs::Json got;
  ASSERT_TRUE(sp.b->read(got));
  EXPECT_EQ(got, msg);
  sp.b->write(svc::make_response(7, obs::Json::object()));
  ASSERT_TRUE(sp.a->read(got));
  EXPECT_EQ(got.at("id").as_u64(), 7u);
}

TEST(NetSocket, LargeFrameSurvivesShortReads) {
  if (!fp::kEnabled) GTEST_SKIP() << "built with CWATPG_FAILPOINTS=OFF";
  SocketPair sp;
  obs::Json params = obs::Json::object();
  params["blob"] = std::string(100 * 1024, 'x');
  const obs::Json msg = request_json(1, "status", std::move(params));
  // Deliver at most 4093 bytes per recv: the header and payload are both
  // forced through the reassembly loop.
  fp::ScheduleScope fps("net.read.short=always@4093");
  std::thread writer([&] {
    sp.a->write(msg);
    sp.a->write(msg);  // back-to-back: leftover bytes must carry over
  });
  obs::Json got;
  ASSERT_TRUE(sp.b->read(got));
  EXPECT_EQ(got, msg);
  ASSERT_TRUE(sp.b->read(got));
  EXPECT_EQ(got, msg);
  writer.join();
}

TEST(NetSocket, CleanCloseIsEofMidFrameIsError) {
  {
    SocketPair sp;
    sp.a->write(request_json(1, "status"));
    sp.a->close();
    obs::Json got;
    ASSERT_TRUE(sp.b->read(got));   // buffered frame survives the close
    EXPECT_FALSE(sp.b->read(got));  // then clean EOF at the boundary
  }
  {
    int sv[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv));
    netio::SocketTransport reader(sv[0]);
    ::send(sv[1], "999\n{\"trunc", 11, 0);  // header promises 999 bytes
    ::shutdown(sv[1], SHUT_WR);
    obs::Json got;
    EXPECT_THROW(reader.read(got), svc::ProtocolError);
    ::close(sv[1]);
  }
}

TEST(NetSocket, InjectedResetThrows) {
  if (!fp::kEnabled) GTEST_SKIP() << "built with CWATPG_FAILPOINTS=OFF";
  SocketPair sp;
  fp::ScheduleScope fps("net.conn.reset=once");
  obs::Json got;
  EXPECT_THROW(sp.b->read(got), svc::ProtocolError);
}

TEST(NetSocket, ReadTimeoutSurfacesAsProtocolError) {
  SocketPair sp;
  ASSERT_TRUE(sp.b->set_read_timeout(0.05));
  obs::Json got;
  try {
    sp.b->read(got);
    FAIL() << "read should have timed out";
  } catch (const svc::ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos)
        << e.what();
  }
}

TEST(NetSocket, ClientRecordsTransportErrorOnTimeout) {
  // Satellite contract: a Client with a read timeout tells "peer gone /
  // silent" (transport_errors) apart from "peer pushing back"
  // (overloaded).
  SocketPair sp;
  svc::ClientOptions copts;
  copts.read_timeout_seconds = 0.05;
  svc::Client client(*sp.b, copts);
  EXPECT_THROW(client.call("status"), std::runtime_error);
  EXPECT_EQ(client.stats().transport_errors, 1u);
  EXPECT_NE(client.stats().last_transport_error.find("timed out"),
            std::string::npos)
      << client.stats().last_transport_error;
}

TEST(NetSocket, ClientRecordsPeerGoneWithJobsPending) {
  SocketPair sp;
  svc::Client client(*sp.b);
  client.submit("run_atpg", obs::Json::object());
  sp.a->close();  // peer vanishes owing a terminal
  EXPECT_FALSE(client.await_any().has_value());
  EXPECT_EQ(client.stats().transport_errors, 1u);
  EXPECT_NE(client.stats().last_transport_error.find("pending"),
            std::string::npos);
}

// ---- NetServer: one daemon, many TCP clients ------------------------------

TEST(NetServer, ServesStatusAndGracefulShutdownOverTcp) {
  TcpServed f;
  auto t = f.connect();
  TestClient client{t.get()};
  obs::Json resp = client.call("status");
  ASSERT_TRUE(resp.at("ok").as_bool());
  EXPECT_EQ(resp.at("result").at("sessions").as_u64(), 1u);

  resp = client.call("shutdown");
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
  EXPECT_TRUE(resp.at("result").at("drained").as_bool());
  obs::Json eof;
  EXPECT_FALSE(t->read(eof));  // final frame, then EOF: run() drained itself

  EXPECT_GE(f.counter("net.conns.accepted"), 1u);
  EXPECT_GT(f.counter("net.bytes.in"), 0u);
  EXPECT_GT(f.counter("net.bytes.out"), 0u);
}

TEST(NetServer, ServedRunAtpgOverTcpMatchesDirectCall) {
  // The determinism contract does not stop at the network edge: a
  // run_atpg served over a real socket must match a direct engine call
  // pattern for pattern.
  TcpServed f;
  auto t = f.connect();
  TestClient client{t.get()};
  const net::Network n = test_circuit();
  const std::string key = load_over(client, n);

  const net::Network round_tripped =
      net::read_bench_string(bench_text(n), n.name());
  fault::AtpgOptions direct_opts;
  direct_opts.seed = 1234;
  const fault::AtpgResult direct =
      fault::run_atpg(round_tripped, direct_opts);

  obs::Json params = obs::Json::object();
  params["circuit"] = key;
  params["seed"] = std::uint64_t(1234);
  obs::Json resp = client.call("run_atpg", std::move(params));
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
  const obs::Json& result = resp.at("result");
  EXPECT_EQ(result.at("faults").as_u64(), direct.outcomes.size());
  EXPECT_EQ(result.at("num_detected").as_u64(), direct.num_detected);
  EXPECT_EQ(result.at("num_untestable").as_u64(), direct.num_untestable);
  const obs::Json& tests = result.at("tests");
  ASSERT_EQ(tests.size(), direct.tests.size());
  for (std::size_t i = 0; i < direct.tests.size(); ++i)
    EXPECT_EQ(tests[i].as_string(), svc::encode_bits(direct.tests[i]))
        << "pattern " << i << " diverged over TCP";
}

TEST(NetServer, TwoClientsInterleaveWithPerConnectionRouting) {
  // Two clients on one daemon, deliberately REUSING each other's request
  // ids: sessions must keep them apart — every response routes to the
  // connection that asked, with exactly one terminal per job.
  TcpServed f;
  auto ta = f.connect();
  auto tb = f.connect();
  TestClient a{ta.get()};
  TestClient b{tb.get()};
  const std::string key_a = load_over(a, test_circuit());
  const std::string key_b = load_over(b, test_circuit());
  EXPECT_EQ(key_a, key_b);  // content-addressed: one registry entry

  constexpr int kJobs = 3;
  std::set<std::uint64_t> a_jobs, b_jobs;
  for (int i = 0; i < kJobs; ++i) {  // same id sequence on both sessions
    obs::Json pa = obs::Json::object();
    pa["circuit"] = key_a;
    obs::Json pb = pa;
    a_jobs.insert(a.send("run_atpg", std::move(pa)));
    b_jobs.insert(b.send("run_atpg", std::move(pb)));
  }
  EXPECT_EQ(a_jobs, b_jobs) << "test wants colliding ids across sessions";

  // Interleave a status call with the in-flight jobs — its inline answer
  // and the job terminals may arrive in any order, but every frame must
  // carry an id this session asked about, exactly once.
  const auto pump = [](TestClient& c, const std::set<std::uint64_t>& jobs) {
    const std::uint64_t status_id = c.send("status");
    std::map<std::uint64_t, int> seen;
    std::uint64_t sessions = 0;
    for (std::size_t i = 0; i < jobs.size() + 1; ++i) {
      obs::Json frame = c.recv();
      const std::uint64_t id = frame.at("id").as_u64();
      EXPECT_TRUE(frame.at("ok").as_bool()) << frame.dump();
      if (id == status_id)
        sessions = frame.at("result").at("sessions").as_u64();
      else
        EXPECT_TRUE(jobs.count(id)) << "response for foreign id " << id;
      EXPECT_EQ(++seen[id], 1) << "duplicate frame for id " << id;
    }
    return sessions;
  };
  EXPECT_EQ(pump(a, a_jobs), 2u);  // both sessions alive throughout
  EXPECT_EQ(pump(b, b_jobs), 2u);
}

TEST(NetServer, DisconnectCancelsOnlyThatClientsJobs) {
  // One worker thread: A's big job occupies it while A's and B's small
  // jobs queue behind. A vanishing mid-run must cancel A's work (freeing
  // the worker quickly) and must NOT touch B's queued job.
  TcpServed f({.threads = 1});
  auto ta = f.connect();
  auto tb = f.connect();
  TestClient a{ta.get()};
  TestClient b{tb.get()};
  const std::string slow_key =
      load_over(a, net::decompose(gen::array_multiplier(5)));
  const std::string key = load_over(b, test_circuit());

  obs::Json params = obs::Json::object();
  params["circuit"] = slow_key;
  a.send("run_atpg", std::move(params));  // occupies the worker
  params = obs::Json::object();
  params["circuit"] = slow_key;
  a.send("run_atpg", std::move(params));  // queued, owned by A
  params = obs::Json::object();
  params["circuit"] = key;
  const std::uint64_t b_job = b.send("run_atpg", std::move(params));

  ta.reset();  // A's socket closes: FIN reaches the event loop

  obs::Json resp = b.recv();  // B's job must still produce its terminal
  EXPECT_EQ(resp.at("id").as_u64(), b_job);
  EXPECT_TRUE(resp.at("ok").as_bool()) << resp.dump();

  // A's session must be reaped (B's survives). Poll: the FIN and the
  // teardown race this status call.
  std::uint64_t sessions = 99;
  for (int i = 0; i < 100 && sessions != 1; ++i) {
    sessions = b.call("status").at("result").at("sessions").as_u64();
    if (sessions != 1)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(sessions, 1u);
}

TEST(NetServer, ConnectionLimitAnswersOverloaded) {
  netio::NetServerOptions nopts;
  nopts.max_connections = 1;
  TcpServed f({.threads = 1}, nopts);
  auto t1 = f.connect();
  TestClient c1{t1.get()};
  EXPECT_TRUE(c1.call("status").at("ok").as_bool());  // session 1 is up

  auto t2 = f.connect();
  obs::Json frame;
  ASSERT_TRUE(t2->read(frame)) << "rejected conn still gets an answer";
  EXPECT_EQ(frame.at("id").as_u64(), 0u);  // no request to correlate with
  EXPECT_FALSE(frame.at("ok").as_bool());
  EXPECT_EQ(frame.at("error").at("code").as_string(), "overloaded");
  EXPECT_FALSE(t2->read(frame));  // then closed
  EXPECT_GE(f.counter("net.conns.rejected"), 1u);

  // The slot frees when c1 leaves; a later client gets in. (The FIN and
  // the next connect race, so retry until admitted.)
  t1.reset();
  bool admitted = false;
  for (int i = 0; i < 100 && !admitted; ++i) {
    auto t3 = f.connect();
    TestClient c3{t3.get()};
    const std::uint64_t id = c3.send("status");
    obs::Json resp;
    ASSERT_TRUE(t3->read(resp)) << "no admission verdict at all";
    if (resp.at("id").as_u64() == id && resp.at("ok").as_bool())
      admitted = true;
    else
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(admitted) << "slot never freed after the first client left";
}

TEST(NetServer, IdleConnectionIsReaped) {
  netio::NetServerOptions nopts;
  nopts.idle_timeout_seconds = 0.1;
  TcpServed f({.threads = 1}, nopts);
  auto t = f.connect();
  t->set_read_timeout(5.0);  // fail the test, not the suite, on a hang
  obs::Json frame;
  EXPECT_FALSE(t->read(frame));  // server reaps us: EOF, no bytes
  EXPECT_GE(f.counter("net.conns.closed.idle"), 1u);
}

TEST(NetServer, MalformedFramingAnsweredOnceThenClosed) {
  TcpServed f({.threads = 1});
  const int fd = netio::tcp_connect("127.0.0.1", f.net_server.port());
  ASSERT_EQ(::send(fd, "garbage\n", 8, 0), 8);
  netio::SocketTransport t(fd);  // adopt the fd to read the reply
  obs::Json frame;
  ASSERT_TRUE(t.read(frame));
  EXPECT_EQ(frame.at("id").as_u64(), 0u);
  EXPECT_EQ(frame.at("error").at("code").as_string(), "bad_request");
  EXPECT_FALSE(t.read(frame));  // framing is lost: connection closed
}

// ---- the four net.* failpoints, pinned ------------------------------------

TEST(NetFailpoints, AcceptFailDropsOneConnection) {
  if (!fp::kEnabled) GTEST_SKIP() << "built with CWATPG_FAILPOINTS=OFF";
  TcpServed f({.threads = 1});
  fp::ScheduleScope fps("net.accept.fail=once");
  {
    auto t = f.connect();  // TCP-accepted by the kernel, then dropped
    obs::Json frame;
    EXPECT_FALSE(t->read(frame));
  }
  auto t = f.connect();  // next connection is served normally
  TestClient c{t.get()};
  EXPECT_TRUE(c.call("status").at("ok").as_bool());
  EXPECT_GE(f.counter("net.conns.rejected"), 1u);
}

TEST(NetFailpoints, ServerSideResetTearsConnectionDown) {
  if (!fp::kEnabled) GTEST_SKIP() << "built with CWATPG_FAILPOINTS=OFF";
  TcpServed f({.threads = 1});
  // Raw fd client: only the server's event loop evaluates the site, so
  // `once` deterministically fires server-side.
  const int fd = netio::tcp_connect("127.0.0.1", f.net_server.port());
  fp::ScheduleScope fps("net.conn.reset=once");
  const obs::Json req = request_json(1, "status");
  const std::string payload = req.dump();
  const std::string wire = std::to_string(payload.size()) + "\n" + payload;
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  // The teardown closes the fd with our request still unread, so the
  // kernel answers with RST: the client sees ECONNRESET (or EOF if the
  // bytes were consumed first) — never a response frame.
  char buf[64];
  const ssize_t got = ::recv(fd, buf, sizeof buf, 0);
  EXPECT_LE(got, 0) << "got " << got << " bytes instead of a reset";
  ::close(fd);
  EXPECT_GE(f.counter("net.conns.closed.reset"), 1u);
}

TEST(NetFailpoints, ShortReadsStillServeWholeFrames) {
  if (!fp::kEnabled) GTEST_SKIP() << "built with CWATPG_FAILPOINTS=OFF";
  TcpServed f({.threads = 1});
  fp::ScheduleScope fps("net.read.short=always@7");
  auto t = f.connect();
  TestClient c{t.get()};
  const std::string key = load_over(c, test_circuit());
  EXPECT_FALSE(key.empty());
  EXPECT_TRUE(c.call("status").at("ok").as_bool());
}

TEST(NetFailpoints, WriteStallDelaysButNeverDropsResponses) {
  if (!fp::kEnabled) GTEST_SKIP() << "built with CWATPG_FAILPOINTS=OFF";
  TcpServed f({.threads = 1});
  fp::ScheduleScope fps("net.write.stall=every:2");
  auto t = f.connect();
  TestClient c{t.get()};
  for (int i = 0; i < 8; ++i)
    EXPECT_TRUE(c.call("status").at("ok").as_bool()) << "call " << i;
}

// ---- cluster with remote TCP workers --------------------------------------

/// A remote worker: a full daemon behind its own NetServer — what
/// `cwatpg_serve --listen` runs, minus the process boundary so TSan sees
/// every thread. Stopping it mid-flight closes its connections, which is
/// exactly the EOF a kill -9'd remote worker produces at the coordinator.
struct TcpWorkerDaemon {
  svc::Server server;
  netio::NetServer net_server;
  std::thread loop;

  TcpWorkerDaemon()
      : server(svc::ServerOptions{.threads = 1}), net_server(server) {
    loop = std::thread([this] { net_server.run(); });
  }
  ~TcpWorkerDaemon() { stop(); }
  void stop() {
    net_server.stop();
    if (loop.joinable()) loop.join();
  }
};

obs::Json atpg_params(const std::string& key) {
  obs::Json params = obs::Json::object();
  params["circuit"] = key;
  params["seed"] = std::uint64_t(7);
  params["raw_outcomes"] = true;
  return params;
}

obs::Json single_node_result(const net::Network& n, obs::Json params) {
  svc::DuplexPair pair = svc::make_duplex();
  svc::ServerOptions sopts;
  sopts.threads = 1;
  svc::Server server(sopts);
  std::thread loop([&] { server.serve(*pair.server); });
  TestClient client{pair.client.get()};
  obs::Json loaded = client.call("load_circuit", load_params(n));
  EXPECT_TRUE(loaded.at("ok").as_bool()) << loaded.dump();
  params["circuit"] =
      loaded.at("result").at("circuit").at("key").as_string();
  obs::Json resp = client.call("run_atpg", std::move(params));
  EXPECT_TRUE(resp.at("ok").as_bool()) << resp.dump();
  pair.client->close();
  loop.join();
  return resp.at("result");
}

void expect_same_classification(const obs::Json& single,
                                const obs::Json& cluster) {
  EXPECT_EQ(single.at("faults").as_u64(), cluster.at("faults").as_u64());
  EXPECT_EQ(single.at("num_detected").as_u64(),
            cluster.at("num_detected").as_u64());
  EXPECT_EQ(single.at("num_untestable").as_u64(),
            cluster.at("num_untestable").as_u64());
  EXPECT_EQ(single.at("num_aborted").as_u64(),
            cluster.at("num_aborted").as_u64());
  EXPECT_EQ(single.at("num_undetermined").as_u64(),
            cluster.at("num_undetermined").as_u64());
  EXPECT_EQ(single.at("tests").dump(), cluster.at("tests").dump());
}

struct TcpClusterFixture {
  std::vector<std::unique_ptr<TcpWorkerDaemon>> workers;
  svc::DuplexPair front = svc::make_duplex();
  std::unique_ptr<svc::Cluster> cluster;
  std::thread cluster_loop;
  TestClient client{front.client.get()};

  explicit TcpClusterFixture(std::size_t n, svc::ClusterOptions options = {}) {
    std::vector<svc::Cluster::WorkerEndpoint> endpoints;
    for (std::size_t i = 0; i < n; ++i) {
      workers.push_back(std::make_unique<TcpWorkerDaemon>());
      svc::Cluster::WorkerEndpoint e;
      e.transport = std::make_unique<netio::SocketTransport>(netio::tcp_connect(
          "127.0.0.1", workers.back()->net_server.port()));
      e.name = "tcp:w" + std::to_string(i);
      endpoints.push_back(std::move(e));
    }
    cluster = std::make_unique<svc::Cluster>(std::move(endpoints), options);
    cluster_loop = std::thread([this] { cluster->serve(*front.server); });
  }
  ~TcpClusterFixture() {
    front.client->close();
    cluster_loop.join();
  }

  std::string load(const net::Network& n) {
    obs::Json resp = client.call("load_circuit", load_params(n));
    EXPECT_TRUE(resp.at("ok").as_bool()) << resp.dump();
    return resp.at("result").at("circuit").at("key").as_string();
  }
};

TEST(NetCluster, RemoteTcpWorkersMatchSingleNode) {
  const net::Network n = test_circuit();
  const obs::Json single = single_node_result(n, atpg_params(""));
  svc::ClusterOptions options;
  options.shard_size = 7;  // deliberately unaligned with the fault count
  TcpClusterFixture fx(2, options);
  obs::Json resp = fx.client.call("run_atpg", atpg_params(fx.load(n)));
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
  expect_same_classification(single, resp.at("result"));
}

TEST(NetCluster, RemoteWorkerDeathFailsOverToSurvivor) {
  const net::Network n = test_circuit();
  const obs::Json single = single_node_result(n, atpg_params(""));
  svc::ClusterOptions options;
  options.shard_size = 7;
  TcpClusterFixture fx(2, options);
  const std::string key = fx.load(n);

  // "kill -9" worker 0: its NetServer closes the coordinator's socket,
  // which is the same EOF the kernel sends for a killed process. Every
  // shard must land on the survivor and the answer must not change.
  fx.workers[0]->stop();

  obs::Json resp = fx.client.call("run_atpg", atpg_params(key));
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
  expect_same_classification(single, resp.at("result"));

  const svc::ClusterStats stats = fx.cluster->stats();
  EXPECT_EQ(stats.worker_deaths, 1u);
  EXPECT_EQ(stats.alive, 1u);
}

// ---- tcp_connect_retry ----------------------------------------------------

/// An ephemeral port that was just free: bind, read, release.
std::uint16_t probe_free_port() {
  netio::Listener probe("127.0.0.1", 0);
  return probe.port();
}

TEST(TcpConnectRetry, RefusedConnectionsExhaustOnTheSeededSchedule) {
  svc::RetryOptions retry;
  retry.max_attempts = 3;
  std::vector<double> slept;
  retry.sleep_fn = [&](double s) { slept.push_back(s); };
  const std::uint16_t port = probe_free_port();  // nobody listening now
  EXPECT_THROW(netio::tcp_connect_retry("127.0.0.1", port, 1.0, retry),
               std::runtime_error);
  // One backoff sleep between consecutive attempts; the recorded delays
  // replay the seeded schedule exactly.
  ASSERT_EQ(slept.size(), 2u);
  Rng reference(retry.jitter_seed);
  EXPECT_EQ(slept[0], svc::backoff_delay(retry.backoff, reference, 1));
  EXPECT_EQ(slept[1], svc::backoff_delay(retry.backoff, reference, 2));
}

TEST(TcpConnectRetry, ToleratesAListenerThatBindsLate) {
  // The boot scenario the helper exists for: the coordinator dials while
  // the worker daemon is still starting; the listener appears mid-retry
  // and the dial must land without operator intervention.
  const std::uint16_t port = probe_free_port();
  std::thread binder([port] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    netio::Listener listener("127.0.0.1", port);
    const int fd = listener.accept_one_blocking();
    ::close(fd);
  });
  svc::RetryOptions retry;
  retry.max_attempts = 200;
  retry.backoff.base_seconds = 0.01;
  retry.backoff.max_seconds = 0.05;
  const int fd = netio::tcp_connect_retry("127.0.0.1", port, 1.0, retry);
  EXPECT_GE(fd, 0);
  ::close(fd);
  binder.join();
}

}  // namespace
}  // namespace cwatpg
