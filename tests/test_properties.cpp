// Cross-module property sweeps: invariants that must hold for every
// circuit any generator can produce, and cross-checks between independent
// implementations of the same semantics (scalar eval vs word simulation
// vs CNF encoding vs BDD).
#include <gtest/gtest.h>

#include <memory>

#include "bdd/bdd.hpp"
#include "core/cutwidth.hpp"
#include "gen/hutton.hpp"
#include "gen/kbounded_gen.hpp"
#include "gen/structured.hpp"
#include "gen/suites.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "netlist/simplify.hpp"
#include "netlist/simulate.hpp"
#include "netlist/topo_stats.hpp"
#include "sat/encode.hpp"
#include "util/rng.hpp"

namespace cwatpg {
namespace {

std::vector<net::Network> zoo() {
  std::vector<net::Network> circuits;
  circuits.push_back(gen::c17());
  circuits.push_back(gen::fig4a_network());
  circuits.push_back(gen::ripple_carry_adder(5));
  circuits.push_back(gen::carry_select_adder(9, 3));
  circuits.push_back(gen::decoder(3));
  circuits.push_back(gen::mux_tree(3));
  circuits.push_back(gen::parity_tree(9, 3));
  circuits.push_back(gen::comparator(4));
  circuits.push_back(gen::array_multiplier(3));
  circuits.push_back(gen::cellular_array_1d(5));
  circuits.push_back(gen::cellular_array_2d(3, 4));
  circuits.push_back(gen::and_or_tree(12, 3));
  circuits.push_back(gen::simple_alu(3));
  circuits.push_back(gen::hamming_ecc(8));
  circuits.push_back(gen::random_tree(40, 3, 5));
  circuits.push_back(gen::kbounded_adder(4).circuit);
  circuits.push_back(gen::kbounded_cellular(4).circuit);
  circuits.push_back(gen::kbounded_random(10, 4, 3, 5).circuit);
  {
    gen::HuttonParams p;
    p.num_gates = 70;
    p.num_inputs = 9;
    p.num_outputs = 4;
    p.seed = 11;
    circuits.push_back(gen::hutton_random(p));
  }
  return circuits;
}

TEST(Properties, EveryGeneratorProducesValidNetworks) {
  for (const net::Network& n : zoo()) {
    EXPECT_NO_THROW(n.validate()) << n.name();
    EXPECT_GE(n.outputs().size(), 1u) << n.name();
    EXPECT_GE(n.inputs().size(), 1u) << n.name();
  }
}

TEST(Properties, LevelsRespectFanins) {
  for (const net::Network& n : zoo()) {
    const auto levels = n.levels();
    for (net::NodeId v = 0; v < n.node_count(); ++v)
      for (net::NodeId fi : n.fanins(v))
        EXPECT_LT(levels[fi], levels[v]) << n.name();
  }
}

TEST(Properties, FanoutListsMirrorFanins) {
  for (const net::Network& n : zoo()) {
    for (net::NodeId v = 0; v < n.node_count(); ++v) {
      for (net::NodeId fo : n.fanouts(v)) {
        const auto fis = n.fanins(fo);
        EXPECT_NE(std::find(fis.begin(), fis.end(), v), fis.end())
            << n.name();
      }
    }
  }
}

TEST(Properties, ScalarEvalAgreesWithWordSimulation) {
  Rng rng(3);
  for (const net::Network& n : zoo()) {
    const auto words = net::random_pi_words(const_cast<net::Network&>(n), rng);
    const net::SimFrame frame = net::simulate64(n, words);
    for (int lane = 0; lane < 64; lane += 13) {
      std::vector<bool> pattern(n.inputs().size());
      for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = (words[i] >> lane) & 1;
      const auto scalar = n.eval(pattern);
      for (net::NodeId po : n.outputs())
        ASSERT_EQ(scalar[po], ((frame[po] >> lane) & 1) != 0) << n.name();
    }
  }
}

TEST(Properties, DecomposePreservesFunctionEverywhere) {
  Rng rng(7);
  for (const net::Network& n : zoo()) {
    const net::Network d = net::decompose(n);
    ASSERT_TRUE(net::is_decomposed(d)) << n.name();
    for (int t = 0; t < 24; ++t) {
      std::vector<bool> pattern(n.inputs().size());
      for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = rng.chance(0.5);
      const auto a = n.eval(pattern);
      const auto b = d.eval(pattern);
      for (std::size_t o = 0; o < n.outputs().size(); ++o)
        ASSERT_EQ(a[n.outputs()[o]], b[d.outputs()[o]]) << n.name();
    }
  }
}

TEST(Properties, SimplifyPreservesFunctionEverywhere) {
  Rng rng(9);
  for (const net::Network& n : zoo()) {
    const net::Network s = net::simplify(n);
    ASSERT_EQ(s.inputs().size(), n.inputs().size()) << n.name();
    ASSERT_EQ(s.outputs().size(), n.outputs().size()) << n.name();
    for (int t = 0; t < 24; ++t) {
      std::vector<bool> pattern(n.inputs().size());
      for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = rng.chance(0.5);
      const auto a = n.eval(pattern);
      const auto b = s.eval(pattern);
      for (std::size_t o = 0; o < n.outputs().size(); ++o)
        ASSERT_EQ(a[n.outputs()[o]], b[s.outputs()[o]]) << n.name();
    }
  }
}

TEST(Properties, EncodingConsistentWithSimulationEverywhere) {
  Rng rng(13);
  for (const net::Network& raw : zoo()) {
    const net::Network n = net::decompose(raw);
    const sat::Cnf cnf = sat::encode_constraints(n);
    for (int t = 0; t < 8; ++t) {
      std::vector<bool> pattern(n.inputs().size());
      for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = rng.chance(0.5);
      const auto values = n.eval(pattern);
      const std::vector<bool> assignment(values.begin(), values.end());
      ASSERT_TRUE(cnf.eval(assignment)) << raw.name();
    }
  }
}

TEST(Properties, BddAgreesWithSimulationOnSmallMembers) {
  Rng rng(17);
  for (const net::Network& n : zoo()) {
    if (n.inputs().size() > 14) continue;
    bdd::Manager m(static_cast<std::uint32_t>(n.inputs().size()), 500'000);
    std::vector<bdd::Ref> outs;
    try {
      outs = bdd::build_output_bdds(m, n);
    } catch (const bdd::Manager::NodeLimitExceeded&) {
      continue;  // multiplier-style blowup: fine
    }
    for (int t = 0; t < 16; ++t) {
      const std::size_t pis = n.inputs().size();
      std::vector<bool> pattern(pis);
      const auto buf = std::make_unique<bool[]>(pis);
      for (std::size_t i = 0; i < pis; ++i)
        buf[i] = pattern[i] = rng.chance(0.5);
      const auto values = n.eval(pattern);
      for (std::size_t o = 0; o < outs.size(); ++o)
        ASSERT_EQ(m.eval(outs[o], std::span<const bool>(buf.get(), pis)),
                  values[n.outputs()[o]])
            << n.name();
    }
  }
}

TEST(Properties, HypergraphEdgesMatchDrivenSignals) {
  for (const net::Network& n : zoo()) {
    const net::Hypergraph hg = net::to_hypergraph(n);
    EXPECT_NO_THROW(hg.validate()) << n.name();
    std::size_t driven = 0;
    for (net::NodeId v = 0; v < n.node_count(); ++v)
      if (!n.fanouts(v).empty()) ++driven;
    EXPECT_EQ(hg.num_edges(), driven) << n.name();
  }
}

TEST(Properties, CutWidthInvariantUnderReversal) {
  Rng rng(19);
  for (const net::Network& n : zoo()) {
    core::Ordering order = core::identity_ordering(n.node_count());
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);
    const auto w = core::cut_width(n, order);
    std::reverse(order.begin(), order.end());
    EXPECT_EQ(core::cut_width(n, order), w) << n.name();
  }
}

TEST(Properties, TopoStatsAreFinite) {
  for (const net::Network& n : zoo()) {
    const net::TopoStats s = net::topo_stats(n);
    EXPECT_EQ(s.nodes, n.node_count());
    EXPECT_GE(s.mean_fanout, 0.9) << n.name();  // everything drives someone
    EXPECT_LE(s.fanout1_fraction, 1.0);
    EXPECT_LE(s.reconvergent_stem_fraction, 1.0);
  }
}

TEST(Properties, SuitesAreDeterministic) {
  gen::SuiteOptions opts;
  opts.scale = 0.1;
  const auto a = gen::iscas85_like_suite(opts);
  const auto b = gen::iscas85_like_suite(opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node_count(), b[i].node_count());
    EXPECT_EQ(a[i].name(), b[i].name());
  }
}

}  // namespace
}  // namespace cwatpg
