#include <gtest/gtest.h>

#include "sat/cnf.hpp"

namespace cwatpg::sat {
namespace {

TEST(Lit, EncodingRoundTrip) {
  const Lit p = pos(5);
  const Lit n = neg(5);
  EXPECT_EQ(p.var(), 5u);
  EXPECT_FALSE(p.negated());
  EXPECT_TRUE(n.negated());
  EXPECT_EQ((~p), n);
  EXPECT_EQ((~n), p);
  EXPECT_EQ(Lit::from_code(p.code()), p);
}

TEST(Lit, Ordering) {
  EXPECT_LT(pos(1), neg(1));
  EXPECT_LT(neg(1), pos(2));
}

TEST(Cnf, GrowAndNewVar) {
  Cnf f;
  EXPECT_EQ(f.num_vars(), 0u);
  f.grow_to(4);
  EXPECT_EQ(f.num_vars(), 5u);
  EXPECT_EQ(f.new_var(), 5u);
  EXPECT_EQ(f.num_vars(), 6u);
}

TEST(Cnf, AddClauseDeduplicatesLiterals) {
  Cnf f(3);
  EXPECT_TRUE(f.add_clause({pos(0), pos(0), neg(1)}));
  EXPECT_EQ(f.clause(0).size(), 2u);
}

TEST(Cnf, TautologyDropped) {
  Cnf f(2);
  EXPECT_FALSE(f.add_clause({pos(0), neg(0)}));
  EXPECT_EQ(f.num_clauses(), 0u);
}

TEST(Cnf, EmptyClauseThrows) {
  Cnf f(1);
  EXPECT_THROW(f.add_clause({}), std::invalid_argument);
}

TEST(Cnf, OutOfRangeThrows) {
  Cnf f(2);
  EXPECT_THROW(f.add_clause({pos(7)}), std::invalid_argument);
}

TEST(Cnf, EvalSatisfiedAndNot) {
  Cnf f(2);
  f.add_clause({pos(0), pos(1)});
  f.add_clause({neg(0), pos(1)});
  const std::vector<bool> m1 = {false, true};
  const std::vector<bool> m2 = {true, false};
  EXPECT_TRUE(f.eval(m1));
  EXPECT_FALSE(f.eval(m2));
}

TEST(Cnf, EvalShortAssignmentThrows) {
  Cnf f(3);
  f.add_clause({pos(2)});
  const std::vector<bool> m = {true};
  EXPECT_THROW(f.eval(m), std::invalid_argument);
}

TEST(Cnf, NumLiterals) {
  Cnf f(3);
  f.add_clause({pos(0), pos(1)});
  f.add_clause({neg(2)});
  EXPECT_EQ(f.num_literals(), 3u);
}

TEST(Cnf, DimacsShape) {
  Cnf f(2);
  f.add_clause({pos(0), neg(1)});
  const std::string d = f.to_dimacs();
  EXPECT_NE(d.find("p cnf 2 1"), std::string::npos);
  EXPECT_NE(d.find("1 -2 0"), std::string::npos);
}

}  // namespace
}  // namespace cwatpg::sat
