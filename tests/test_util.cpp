#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/curvefit.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace cwatpg {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Rng, BelowZeroAndOne) {
  Rng rng(7);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, RangeDegenerate) {
  Rng rng(3);
  EXPECT_EQ(rng.range(5, 5), 5);
  EXPECT_EQ(rng.range(5, 4), 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, GeometricMeanRoughlyMatches) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.geometric_at_least_one(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, GeometricFloorsAtOne) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(rng.geometric_at_least_one(0.5), 1u);
}

// ---------------------------------------------------------------- stats

TEST(Stats, SummaryBasics) {
  const double xs[] = {1, 2, 3, 4, 5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, SummarySingle) {
  const double xs[] = {7.5};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.median, 7.5);
  EXPECT_DOUBLE_EQ(s.p99, 7.5);
}

TEST(Stats, PercentileInterpolates) {
  const double xs[] = {0, 10};
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 100), 10.0);
}

TEST(Stats, FractionBelow) {
  const double xs[] = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(fraction_below(xs, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(fraction_below(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(fraction_below(xs, 10), 1.0);
}

TEST(Stats, HistogramCountsEverything) {
  const double xs[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto h = histogram(xs, 5);
  std::size_t total = 0;
  for (auto c : h) total += c;
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(h.size(), 5u);
  EXPECT_EQ(h[0], 2u);
}

TEST(Stats, HistogramDegenerateRange) {
  const double xs[] = {3, 3, 3};
  const auto h = histogram(xs, 4);
  EXPECT_EQ(h[0], 3u);
}

TEST(Stats, HistogramZeroBinsThrows) {
  const double xs[] = {1.0};
  EXPECT_THROW(histogram(xs, 0), std::invalid_argument);
}

TEST(Stats, BucketizeGroupsByX) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i);
  }
  const auto buckets = bucketize(xs, ys, 4);
  ASSERT_EQ(buckets.size(), 4u);
  for (const auto& b : buckets) {
    EXPECT_EQ(b.count, 25u);
    EXPECT_NEAR(b.y_mean, 2.0 * b.x_mean, 1e-9);
  }
  EXPECT_LT(buckets[0].x_mean, buckets[3].x_mean);
}

TEST(Stats, BucketizeMismatchedThrows) {
  const double xs[] = {1, 2};
  const double ys[] = {1};
  EXPECT_THROW(bucketize(xs, ys, 2), std::invalid_argument);
}

// ---------------------------------------------------------------- curvefit

TEST(CurveFit, RecoversLinear) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 1.0);
  }
  const Fit f = fit_curve(xs, ys, FitModel::kLinear);
  EXPECT_NEAR(f.a, 3.0, 1e-9);
  EXPECT_NEAR(f.b, 1.0, 1e-9);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(CurveFit, RecoversLogarithmic) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 50; ++i) {
    xs.push_back(i * 10);
    ys.push_back(2.5 * std::log(i * 10.0) - 4.0);
  }
  const Fit f = fit_curve(xs, ys, FitModel::kLogarithmic);
  EXPECT_NEAR(f.a, 2.5, 1e-9);
  EXPECT_NEAR(f.b, -4.0, 1e-9);
}

TEST(CurveFit, RecoversPower) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 50; ++i) {
    xs.push_back(i);
    ys.push_back(0.5 * std::pow(i, 1.7));
  }
  const Fit f = fit_curve(xs, ys, FitModel::kPower);
  EXPECT_NEAR(f.a, 0.5, 1e-6);
  EXPECT_NEAR(f.b, 1.7, 1e-9);
}

TEST(CurveFit, LogDataPrefersLogModel) {
  // The paper's model-selection claim in miniature: on y = a*log(x)+b data,
  // the logarithmic family must win the RSS ranking.
  std::vector<double> xs, ys;
  Rng rng(17);
  for (int i = 2; i <= 400; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * std::log(i) + 2.0 + (rng.uniform() - 0.5) * 0.4);
  }
  const auto fits = fit_all(xs, ys);
  ASSERT_GE(fits.size(), 3u);
  EXPECT_EQ(fits[0].model, FitModel::kLogarithmic);
}

TEST(CurveFit, LinearDataPrefersLinearModel) {
  std::vector<double> xs, ys;
  Rng rng(19);
  for (int i = 1; i <= 400; ++i) {
    xs.push_back(i);
    ys.push_back(0.02 * i + 5.0 + (rng.uniform() - 0.5) * 0.1);
  }
  const auto fits = fit_all(xs, ys);
  EXPECT_EQ(fits[0].model, FitModel::kLinear);
}

TEST(CurveFit, SkipsNonpositiveXForLog) {
  const double xs[] = {-1, 0, 1, 2, 4, 8};
  const double ys[] = {9, 9, 0, 1, 2, 3};
  const Fit f = fit_curve(xs, ys, FitModel::kLogarithmic);
  EXPECT_EQ(f.n, 4u);
  EXPECT_NEAR(f.a, 1.0 / std::log(2.0), 1e-9);
}

TEST(CurveFit, TooFewPointsThrows) {
  const double xs[] = {1.0};
  const double ys[] = {1.0};
  EXPECT_THROW(fit_curve(xs, ys, FitModel::kLinear), std::invalid_argument);
}

TEST(CurveFit, ConstantXDegeneratesToMean) {
  const double xs[] = {2, 2, 2, 2};
  const double ys[] = {1, 2, 3, 4};
  const Fit f = fit_curve(xs, ys, FitModel::kLinear);
  EXPECT_DOUBLE_EQ(f.a, 0.0);
  EXPECT_DOUBLE_EQ(f.b, 2.5);
}

TEST(CurveFit, DescribeMentionsModel) {
  const double xs[] = {1, 2, 3};
  const double ys[] = {1, 2, 3};
  EXPECT_NE(fit_curve(xs, ys, FitModel::kLinear).describe().find("x"),
            std::string::npos);
  EXPECT_EQ(to_string(FitModel::kPower), "power");
}

// ---------------------------------------------------------------- table

TEST(Table, AlignsAndCounts) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "23"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("long-name"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(cell(1.5, 2), "1.50");
  EXPECT_EQ(cell(std::size_t{42}), "42");
  EXPECT_EQ(cell(-3), "-3");
}

}  // namespace
}  // namespace cwatpg
