#include <gtest/gtest.h>

#include "core/exact_bb.hpp"
#include "core/mla.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "util/rng.hpp"

namespace cwatpg::core {
namespace {

net::Hypergraph random_hg(std::size_t n, std::size_t edges,
                          std::uint64_t seed) {
  Rng rng(seed);
  net::Hypergraph hg;
  hg.num_vertices = n;
  for (std::size_t e = 0; e < edges; ++e) {
    const auto u = static_cast<net::NodeId>(rng.below(n));
    const auto v = static_cast<net::NodeId>(rng.below(n));
    if (u != v) hg.edges.push_back({std::min(u, v), std::max(u, v)});
  }
  return hg;
}

TEST(ExactBb, TrivialGraphs) {
  net::Hypergraph empty;
  const auto r = exact_cutwidth_bb(empty);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->width, 0u);

  net::Hypergraph path;
  path.num_vertices = 5;
  for (net::NodeId v = 0; v + 1 < 5; ++v) path.edges.push_back({v, v + 1});
  const auto p = exact_cutwidth_bb(path);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->width, 1u);
}

TEST(ExactBb, MatchesSubsetDp) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const net::Hypergraph hg = random_hg(10, 16, seed + 40);
    const auto bb = exact_cutwidth_bb(hg);
    ASSERT_TRUE(bb.has_value()) << seed;
    EXPECT_EQ(bb->width, exact_mla(hg).width) << "seed " << seed;
    EXPECT_EQ(cut_width(hg, bb->order), bb->width);
  }
}

TEST(ExactBb, HandlesHyperedges) {
  net::Hypergraph hg;
  hg.num_vertices = 6;
  hg.edges = {{0, 1, 2}, {2, 3, 4}, {4, 5, 0}};
  const auto bb = exact_cutwidth_bb(hg);
  ASSERT_TRUE(bb.has_value());
  EXPECT_EQ(bb->width, exact_mla(hg).width);
}

TEST(ExactBb, NodeBudgetReturnsNullopt) {
  const net::Hypergraph hg = random_hg(16, 40, 7);
  ExactBbConfig cfg;
  cfg.max_nodes = 5;
  EXPECT_FALSE(exact_cutwidth_bb(hg, cfg).has_value());
}

TEST(ExactBb, TooLargeThrows) {
  net::Hypergraph hg;
  hg.num_vertices = 64;
  EXPECT_THROW(exact_cutwidth_bb(hg), std::invalid_argument);
}

TEST(ExactBb, InitialUpperBoundPrunes) {
  const net::Hypergraph hg = random_hg(14, 22, 9);
  const MlaResult approx = mla(hg);
  ExactBbConfig seeded;
  seeded.initial_upper_bound = approx.width + 1;
  const auto with = exact_cutwidth_bb(hg, seeded);
  const auto without = exact_cutwidth_bb(hg);
  ASSERT_TRUE(with && without);
  EXPECT_EQ(with->width, without->width);
  EXPECT_LE(with->nodes, without->nodes);
}

TEST(ExactBb, LowerBoundIsValid) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const net::Hypergraph hg = random_hg(9, 14, seed + 70);
    EXPECT_LE(cutwidth_lower_bound(hg), exact_mla(hg).width) << seed;
  }
}

TEST(ExactBb, LowerBoundStar) {
  net::Hypergraph hg;
  hg.num_vertices = 7;
  for (net::NodeId v = 1; v < 7; ++v) hg.edges.push_back({0, v});
  EXPECT_EQ(cutwidth_lower_bound(hg), 3u);  // ceil(6/2), and it is tight
  EXPECT_EQ(exact_cutwidth_bb(hg)->width, 3u);
}

TEST(ExactBb, MlaAuditOnMidSizeCircuits) {
  // The B&B's whole purpose: measure the MLA approximation factor where
  // the DP can't reach. On a 24-30 node circuit the gap must be <= 2x+1.
  const net::Network n = net::decompose(gen::ripple_carry_adder(2));
  const net::Hypergraph hg = net::to_hypergraph(n);
  ASSERT_LE(hg.num_vertices, 40u);
  const auto bb = exact_cutwidth_bb(hg);
  ASSERT_TRUE(bb.has_value());
  const MlaResult approx = mla(hg);
  EXPECT_GE(approx.width, bb->width);
  EXPECT_LE(approx.width, 2 * bb->width + 1);
}

class ExactBbSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactBbSweep, AgreesWithDpOnDenseGraphs) {
  const net::Hypergraph hg = random_hg(11, 26, GetParam() + 300);
  const auto bb = exact_cutwidth_bb(hg);
  ASSERT_TRUE(bb.has_value());
  EXPECT_EQ(bb->width, exact_mla(hg).width);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactBbSweep,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace cwatpg::core
