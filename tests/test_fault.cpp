#include <gtest/gtest.h>

#include <algorithm>

#include "fault/fault.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"

namespace cwatpg::fault {
namespace {

std::size_t count_stems(const std::vector<StuckAtFault>& faults) {
  return static_cast<std::size_t>(
      std::count_if(faults.begin(), faults.end(),
                    [](const StuckAtFault& f) { return f.is_stem(); }));
}

TEST(Fault, ToString) {
  const net::Network n = gen::c17();
  const StuckAtFault stem{*n.find("11"), StuckAtFault::kStem, true};
  EXPECT_EQ(to_string(n, stem), "11 s-a-1");
  const StuckAtFault branch{*n.find("16"), 1, false};
  EXPECT_EQ(to_string(n, branch), "16.in1 s-a-0");
}

TEST(Fault, AllFaultsC17Count) {
  // c17: 11 driven signals (5 PI + 6 gates), all with fanout; stems: 22.
  // Fanout stems: PI 1 (fo 1? no: PI "1" feeds only NAND 10) — branch
  // faults exist only where driver fanout > 1: signals 3, 11, 16 (fo 2)
  // and PI 1,2,6,7 have fo 1. Each fo-2 signal has 2 branch pins => 3*2
  // pins * 2 values = 12 branch faults. Total 22 + 12 = 34.
  const net::Network n = gen::c17();
  const auto faults = all_faults(n);
  EXPECT_EQ(count_stems(faults), 22u);
  EXPECT_EQ(faults.size(), 34u);
}

TEST(Fault, SingleFanoutBranchesNotListed) {
  const net::Network n = gen::c17();
  for (const auto& f : all_faults(n)) {
    if (f.is_stem()) continue;
    const net::NodeId driver =
        n.fanins(f.node)[static_cast<std::size_t>(f.pin)];
    EXPECT_GT(n.fanouts(driver).size(), 1u);
  }
}

TEST(Fault, DanglingNodesGetNoStemFaults) {
  net::Network n;
  const auto a = n.add_input("a");
  n.add_gate(net::GateType::kNot, {a});  // dangling
  const auto g = n.add_gate(net::GateType::kBuf, {a});
  n.add_output(g, "o");
  for (const auto& f : all_faults(n))
    if (f.is_stem()) {
      EXPECT_FALSE(n.fanouts(f.node).empty());
    }
}

TEST(Fault, CollapseShrinksList) {
  const net::Network n = gen::c17();
  const auto faults = all_faults(n);
  const auto collapsed = collapse(n, faults);
  EXPECT_LT(collapsed.size(), faults.size());
  EXPECT_GT(collapsed.size(), 0u);
}

TEST(Fault, C17CollapsedCount) {
  // Classic result: c17 has 22 collapsed faults under NAND equivalence
  // rules applied to the 34-fault list.
  const net::Network n = gen::c17();
  const auto collapsed = collapsed_fault_list(n);
  EXPECT_EQ(collapsed.size(), 22u);
}

TEST(Fault, CollapseKeepsRepresentativesFromList) {
  const net::Network n = net::decompose(gen::comparator(3));
  const auto faults = all_faults(n);
  const auto collapsed = collapse(n, faults);
  for (const auto& c : collapsed)
    EXPECT_NE(std::find(faults.begin(), faults.end(), c), faults.end());
}

TEST(Fault, CollapseIdempotent) {
  const net::Network n = net::decompose(gen::ripple_carry_adder(3));
  const auto once = collapsed_fault_list(n);
  const auto twice = collapse(n, once);
  EXPECT_EQ(once.size(), twice.size());
}

TEST(Fault, NotGateEquivalence) {
  // a -> NOT -> PO: stem(a, v) == stem(not, ~v): 4 faults collapse to 2.
  net::Network n;
  const auto a = n.add_input("a");
  const auto g = n.add_gate(net::GateType::kNot, {a});
  n.add_output(g, "o");
  EXPECT_EQ(collapsed_fault_list(n).size(), 2u);
}

TEST(Fault, AndGateEquivalence) {
  // AND(a,b) -> PO. Faults: a0,a1,b0,b1,g0,g1 (no branches; single
  // fanouts). a0 == b0 == g0: 6 -> 4.
  net::Network n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto g = n.add_gate(net::GateType::kAnd, {a, b});
  n.add_output(g, "o");
  EXPECT_EQ(collapsed_fault_list(n).size(), 4u);
}

TEST(Fault, OrNorNandEquivalences) {
  for (auto type : {net::GateType::kOr, net::GateType::kNor,
                    net::GateType::kNand}) {
    net::Network n;
    const auto a = n.add_input("a");
    const auto b = n.add_input("b");
    n.add_output(n.add_gate(type, {a, b}), "o");
    EXPECT_EQ(collapsed_fault_list(n).size(), 4u) << to_string(type);
  }
}

TEST(Fault, XorHasNoEquivalences) {
  net::Network n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  n.add_output(n.add_gate(net::GateType::kXor, {a, b}), "o");
  EXPECT_EQ(collapsed_fault_list(n).size(), 6u);
}

TEST(Fault, BranchStemEquivalenceThroughFanout) {
  // a fans out to two NOTs; branch faults into the NOTs collapse with the
  // NOT output stems, but not with each other.
  net::Network n;
  const auto a = n.add_input("a");
  const auto g1 = n.add_gate(net::GateType::kNot, {a});
  const auto g2 = n.add_gate(net::GateType::kNot, {a});
  n.add_output(g1, "o1");
  n.add_output(g2, "o2");
  const auto all = all_faults(n);
  // stems: a(2), g1(2), g2(2); branches into g1,g2: 4. Total 10.
  EXPECT_EQ(all.size(), 10u);
  const auto collapsed = collapse(n, all);
  // branch(g1,v) == stem(g1,~v), branch(g2,v) == stem(g2,~v): 10 -> 6.
  EXPECT_EQ(collapsed.size(), 6u);
}

TEST(Fault, ConeRootIsFaultNode) {
  const StuckAtFault stem{7, StuckAtFault::kStem, true};
  const StuckAtFault branch{9, 2, false};
  EXPECT_EQ(fault_cone_root(stem), 7u);
  EXPECT_EQ(fault_cone_root(branch), 9u);
}

class CollapseRatio : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CollapseRatio, AdderCollapseIsSubstantial) {
  const net::Network n = net::decompose(gen::ripple_carry_adder(GetParam()));
  const auto all = all_faults(n);
  const auto collapsed = collapsed_fault_list(n);
  // Equivalence collapsing on AND/OR/NOT netlists typically removes ~40%.
  EXPECT_LT(collapsed.size(), all.size() * 3 / 4);
}

INSTANTIATE_TEST_SUITE_P(Widths, CollapseRatio,
                         ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace cwatpg::fault
