#include <gtest/gtest.h>

#include "core/cutwidth.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "sat/cache_sat.hpp"
#include "sat/encode.hpp"
#include "util/rng.hpp"

namespace cwatpg::sat {
namespace {

bool brute_force_sat(const Cnf& f) {
  const Var n = f.num_vars();
  EXPECT_LE(n, 22u);
  std::vector<bool> assignment(n);
  for (std::uint64_t m = 0; m < (1ULL << n); ++m) {
    for (Var v = 0; v < n; ++v) assignment[v] = (m >> v) & 1;
    if (f.eval(assignment)) return true;
  }
  return false;
}

Cnf random_cnf(Var vars, std::size_t clauses, std::uint64_t seed) {
  cwatpg::Rng rng(seed);
  Cnf f(vars);
  for (std::size_t c = 0; c < clauses; ++c) {
    Clause cl;
    const auto len = static_cast<std::size_t>(rng.range(1, 3));
    for (std::size_t i = 0; i < len; ++i)
      cl.push_back(Lit(static_cast<Var>(rng.below(vars)), rng.chance(0.5)));
    std::sort(cl.begin(), cl.end());
    cl.erase(std::unique(cl.begin(), cl.end()), cl.end());
    f.add_clause(cl);
  }
  return f;
}

TEST(CacheSat, TrivialCases) {
  Cnf sat1(1);
  sat1.add_clause({pos(0)});
  EXPECT_EQ(cache_sat(sat1, identity_order(sat1)).status, SolveStatus::kSat);

  Cnf unsat(1);
  unsat.add_clause({pos(0)});
  unsat.add_clause({neg(0)});
  EXPECT_EQ(cache_sat(unsat, identity_order(unsat)).status,
            SolveStatus::kUnsat);

  Cnf empty(2);
  EXPECT_EQ(cache_sat(empty, identity_order(empty)).status,
            SolveStatus::kSat);
}

TEST(CacheSat, ModelSatisfiesFormula) {
  const Cnf f = random_cnf(10, 25, 3);
  const auto r = cache_sat(f, identity_order(f));
  if (r.status == SolveStatus::kSat) {
    EXPECT_TRUE(f.eval(r.model));
  }
}

TEST(CacheSat, OrderMustBePermutation) {
  Cnf f(3);
  f.add_clause({pos(0)});
  const Var short_order[] = {0, 1};
  EXPECT_THROW(cache_sat(f, short_order), std::invalid_argument);
  const Var dup[] = {0, 1, 1};
  EXPECT_THROW(cache_sat(f, dup), std::invalid_argument);
  const Var oob[] = {0, 1, 7};
  EXPECT_THROW(cache_sat(f, oob), std::invalid_argument);
}

TEST(CacheSat, AgreesWithBruteForce) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const Cnf f = random_cnf(8, 24, seed);
    const bool expected = brute_force_sat(f);
    const auto r = cache_sat(f, identity_order(f));
    EXPECT_EQ(r.status == SolveStatus::kSat, expected) << "seed " << seed;
  }
}

TEST(CacheSat, AgreesWithBruteForceExactMode) {
  CacheSatConfig cfg;
  cfg.verify_exact = true;
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    const Cnf f = random_cnf(8, 24, seed);
    const auto r = cache_sat(f, identity_order(f), cfg);
    EXPECT_EQ(r.status == SolveStatus::kSat, brute_force_sat(f));
    EXPECT_EQ(r.stats.hash_collisions, 0u) << "seed " << seed;
  }
}

TEST(CacheSat, HashedAndExactModesAgreeOnTreeCount) {
  // If 64-bit residual hashing never collides, both modes visit the
  // identical tree.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Cnf f = random_cnf(10, 30, seed + 55);
    CacheSatConfig hashed;
    CacheSatConfig exact;
    exact.verify_exact = true;
    const auto a = cache_sat(f, identity_order(f), hashed);
    const auto b = cache_sat(f, identity_order(f), exact);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.stats.nodes, b.stats.nodes);
    EXPECT_EQ(a.stats.cache_hits, b.stats.cache_hits);
  }
}

TEST(CacheSat, CachingNeverIncreasesTree) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const Cnf f = random_cnf(10, 32, seed + 200);
    CacheSatConfig with;
    CacheSatConfig without;
    without.use_cache = false;
    const auto a = cache_sat(f, identity_order(f), with);
    const auto b = cache_sat(f, identity_order(f), without);
    EXPECT_EQ(a.status, b.status) << "seed " << seed;
    EXPECT_LE(a.stats.nodes, b.stats.nodes);
  }
}

TEST(CacheSat, CacheActuallyHitsOnStructuredFormula) {
  // The paper's worked example: caching prunes the Figure 5 tree.
  const Cnf f = gen::formula41();
  const auto order = gen::fig4a_ordering_a();
  std::vector<Var> vars(order.begin(), order.end());
  CacheSatConfig cfg;
  cfg.early_sat = false;  // match the paper's full backtracking tree
  const auto r = cache_sat(f, vars, cfg);
  EXPECT_EQ(r.status, SolveStatus::kSat);
}

TEST(CacheSat, Formula41IsSatAndFaultExampleBehaves) {
  const Cnf f = gen::formula41();
  const auto order_a = gen::fig4a_ordering_a();
  const std::vector<Var> va(order_a.begin(), order_a.end());
  const auto r = cache_sat(f, va);
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_TRUE(f.eval(r.model));
}

TEST(CacheSat, PaperPruneExample) {
  // §4.1's concrete prune: after b=0,c=0,f=0 the residual under a=0,h=0
  // equals the residual under a=1,h=0, so the second branch is a cache
  // hit. Verify a hit occurs somewhere below that prefix.
  Cnf f = gen::formula41();
  const auto order = gen::fig4a_ordering_a();
  std::vector<Var> vars(order.begin(), order.end());
  CacheSatConfig cfg;
  cfg.early_sat = false;
  const auto r = cache_sat(f, vars, cfg);
  EXPECT_GT(r.stats.cache_hits, 0u);
}

TEST(CacheSat, NodeLimitAborts) {
  const Cnf f = random_cnf(14, 40, 9);
  CacheSatConfig cfg;
  cfg.max_nodes = 3;
  const auto r = cache_sat(f, identity_order(f), cfg);
  EXPECT_EQ(r.status, SolveStatus::kUnknown);
}

TEST(CacheSat, EarlySatShrinksTreeOnSatisfiable) {
  Cnf f(12);
  f.add_clause({pos(0)});  // satisfied immediately; rest are free vars
  CacheSatConfig eager;
  CacheSatConfig full;
  full.early_sat = false;
  const auto a = cache_sat(f, identity_order(f), eager);
  const auto b = cache_sat(f, identity_order(f), full);
  EXPECT_EQ(a.status, SolveStatus::kSat);
  EXPECT_EQ(b.status, SolveStatus::kSat);
  EXPECT_LT(a.stats.nodes, b.stats.nodes);
}

TEST(CacheSat, StatsAccounting) {
  const Cnf f = random_cnf(9, 30, 21);
  const auto r = cache_sat(f, identity_order(f));
  EXPECT_GT(r.stats.nodes, 0u);
  EXPECT_LE(r.stats.max_depth, 9u);
  if (r.status == SolveStatus::kUnsat) {
    EXPECT_GT(r.stats.null_prunes + r.stats.cache_hits, 0u);
  }
}

TEST(CacheSat, VariableOrderChangesTreeNotAnswer) {
  const Cnf f = random_cnf(10, 30, 31);
  const auto forward = cache_sat(f, identity_order(f));
  std::vector<Var> reversed = identity_order(f);
  std::reverse(reversed.begin(), reversed.end());
  const auto backward = cache_sat(f, reversed);
  EXPECT_EQ(forward.status, backward.status);
}

TEST(CacheSat, CircuitSatAgreesWithCdcl) {
  // Cross-check Algorithm 1 against the CDCL solver on real ATPG-ish
  // encodings (testable and untestable cones).
  net::Network taut;
  const auto a = taut.add_input("a");
  const auto na = taut.add_gate(net::GateType::kNot, {a});
  taut.add_output(taut.add_gate(net::GateType::kAnd, {a, na}), "o");
  const Cnf f = encode_circuit_sat(taut);
  EXPECT_EQ(cache_sat(f, identity_order(f)).status, SolveStatus::kUnsat);

  const Cnf g = encode_circuit_sat(gen::c17());
  EXPECT_EQ(cache_sat(g, identity_order(g)).status, SolveStatus::kSat);
}

class CacheSatOrderSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheSatOrderSweep, RandomOrdersAgreeWithBruteForce) {
  const Cnf f = random_cnf(9, 26, GetParam() + 400);
  const bool expected = brute_force_sat(f);
  cwatpg::Rng rng(GetParam());
  std::vector<Var> order = identity_order(f);
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.below(i)]);
  const auto r = cache_sat(f, order);
  EXPECT_EQ(r.status == SolveStatus::kSat, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheSatOrderSweep,
                         ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace cwatpg::sat
