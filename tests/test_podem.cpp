#include <gtest/gtest.h>

#include "fault/podem.hpp"
#include "fault/tegus.hpp"
#include "gen/hutton.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"

namespace cwatpg::fault {
namespace {

// ----------------------------------------------------------- 5-valued alg

TEST(Eval5, AndTable) {
  using net::GateType;
  const V5 d = V5::kD, db = V5::kDbar, x = V5::kX, one = V5::kOne,
           zero = V5::kZero;
  auto and5 = [](V5 a, V5 b) {
    const V5 ins[] = {a, b};
    return eval5(net::GateType::kAnd, ins);
  };
  EXPECT_EQ(and5(one, one), one);
  EXPECT_EQ(and5(one, zero), zero);
  EXPECT_EQ(and5(d, one), d);
  EXPECT_EQ(and5(d, zero), zero);
  EXPECT_EQ(and5(d, db), zero);  // good 1&0=0, faulty 0&1=0
  EXPECT_EQ(and5(d, d), d);
  EXPECT_EQ(and5(x, zero), zero);
  EXPECT_EQ(and5(x, one), x);
  EXPECT_EQ(and5(x, d), x);
}

TEST(Eval5, NotAndXor) {
  const V5 d[] = {V5::kD};
  EXPECT_EQ(eval5(net::GateType::kNot, d), V5::kDbar);
  const V5 two[] = {V5::kD, V5::kOne};
  EXPECT_EQ(eval5(net::GateType::kXor, two), V5::kDbar);
  const V5 same[] = {V5::kD, V5::kD};
  EXPECT_EQ(eval5(net::GateType::kXor, same), V5::kZero);
}

TEST(Eval5, OrNorTables) {
  const V5 a[] = {V5::kD, V5::kZero};
  EXPECT_EQ(eval5(net::GateType::kOr, a), V5::kD);
  EXPECT_EQ(eval5(net::GateType::kNor, a), V5::kDbar);
  const V5 b[] = {V5::kD, V5::kOne};
  EXPECT_EQ(eval5(net::GateType::kOr, b), V5::kOne);
}

// --------------------------------------------------------------- engine

TEST(Podem, DetectsKnownC17Fault) {
  const net::Network n = gen::c17();
  const StuckAtFault f{*n.find("10"), StuckAtFault::kStem, true};
  const PodemResult r = podem(n, f);
  ASSERT_EQ(r.status, PodemStatus::kDetected);
  EXPECT_TRUE(detects(n, f, r.test));
}

TEST(Podem, AllC17FaultsDetected) {
  const net::Network n = gen::c17();
  for (const StuckAtFault& f : all_faults(n)) {
    const PodemResult r = podem(n, f);
    ASSERT_EQ(r.status, PodemStatus::kDetected) << to_string(n, f);
    EXPECT_TRUE(detects(n, f, r.test)) << to_string(n, f);
  }
}

TEST(Podem, RedundantFaultProvenUntestable) {
  net::Network n;
  const auto a = n.add_input("a");
  const auto na = n.add_gate(net::GateType::kNot, {a});
  const auto g = n.add_gate(net::GateType::kOr, {a, na});
  n.add_output(g, "o");
  const PodemResult r = podem(n, {g, StuckAtFault::kStem, true});
  EXPECT_EQ(r.status, PodemStatus::kUntestable);
}

TEST(Podem, UnobservableSiteUntestable) {
  net::Network n;
  const auto a = n.add_input("a");
  const auto dangle = n.add_gate(net::GateType::kNot, {a});
  n.add_output(n.add_gate(net::GateType::kBuf, {a}), "o");
  const PodemResult r = podem(n, {dangle, StuckAtFault::kStem, false});
  EXPECT_EQ(r.status, PodemStatus::kUntestable);
}

TEST(Podem, BacktrackLimitAborts) {
  const net::Network n = net::decompose(gen::hamming_ecc(16));
  PodemOptions opts;
  opts.max_backtracks = 0;
  const auto faults = collapsed_fault_list(n);
  // With a zero budget, any fault needing >= 1 backtrack aborts; scan for
  // one (XOR-rich circuits always contain some).
  bool aborted = false;
  for (std::size_t i = 0; i < faults.size() && !aborted; ++i)
    aborted = podem(n, faults[i], opts).status == PodemStatus::kAborted;
  EXPECT_TRUE(aborted);
}

TEST(Podem, InvalidFaultThrows) {
  const net::Network n = gen::c17();
  EXPECT_THROW(podem(n, {999, StuckAtFault::kStem, true}),
               std::invalid_argument);
  EXPECT_THROW(podem(n, {*n.find("22"), 9, true}), std::invalid_argument);
}

TEST(Podem, AgreesWithSatOnTestability) {
  // PODEM and the SAT engine must agree fault-by-fault on
  // testable vs untestable across whole circuits.
  for (const net::Network& n :
       {gen::c17(), gen::fig4a_network(),
        net::decompose(gen::ripple_carry_adder(3)),
        net::decompose(gen::simple_alu(2)),
        net::decompose(gen::comparator(3))}) {
    for (const StuckAtFault& f : collapsed_fault_list(n)) {
      const PodemResult structural = podem(n, f);
      Pattern test;
      const FaultOutcome sat_based = generate_test(n, f, {}, test);
      ASSERT_NE(structural.status, PodemStatus::kAborted);
      if (sat_based.status == FaultStatus::kDetected) {
        EXPECT_EQ(structural.status, PodemStatus::kDetected)
            << n.name() << " " << to_string(n, f);
        EXPECT_TRUE(detects(n, f, structural.test));
      } else if (sat_based.status == FaultStatus::kUntestable) {
        EXPECT_EQ(structural.status, PodemStatus::kUntestable)
            << n.name() << " " << to_string(n, f);
      }
    }
  }
}

TEST(Podem, BranchFaultsHandled) {
  const net::Network n = gen::c17();
  const StuckAtFault branch{*n.find("16"), 1, true};
  const PodemResult r = podem(n, branch);
  ASSERT_EQ(r.status, PodemStatus::kDetected);
  EXPECT_TRUE(detects(n, branch, r.test));
}

TEST(Podem, StatsPopulated) {
  const net::Network n = net::decompose(gen::parity_tree(8));
  const auto faults = collapsed_fault_list(n);
  const PodemResult r = podem(n, faults[faults.size() / 2]);
  EXPECT_GT(r.implications, 0u);
  EXPECT_GT(r.decisions, 0u);
}

TEST(Podem, ScoapGuidanceStillCorrect) {
  const net::Network n = net::decompose(gen::hamming_ecc(8));
  PodemOptions guided;
  guided.scoap_guidance = true;
  for (const StuckAtFault& f : collapsed_fault_list(n)) {
    const PodemResult a = podem(n, f);
    const PodemResult b = podem(n, f, guided);
    ASSERT_EQ(a.status, b.status) << to_string(n, f);
    if (b.status == PodemStatus::kDetected) {
      EXPECT_TRUE(detects(n, f, b.test)) << to_string(n, f);
    }
  }
}

TEST(Podem, ScoapGuidanceReducesTotalBacktracks) {
  // Aggregate over an XOR-rich circuit where justification order matters.
  const net::Network n = net::decompose(gen::hamming_ecc(12));
  PodemOptions plain, guided;
  guided.scoap_guidance = true;
  std::uint64_t plain_bt = 0, guided_bt = 0;
  for (const StuckAtFault& f : collapsed_fault_list(n)) {
    plain_bt += podem(n, f, plain).backtracks;
    guided_bt += podem(n, f, guided).backtracks;
  }
  EXPECT_LE(guided_bt, plain_bt + plain_bt / 10);  // never much worse
}

class PodemFamilySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PodemFamilySweep, RandomCircuitsFullyResolved) {
  gen::HuttonParams p;
  p.num_gates = 60;
  p.num_inputs = 10;
  p.num_outputs = 4;
  p.seed = GetParam();
  const net::Network n = net::decompose(gen::hutton_random(p));
  for (const StuckAtFault& f : collapsed_fault_list(n)) {
    const PodemResult r = podem(n, f);
    ASSERT_NE(r.status, PodemStatus::kAborted) << to_string(n, f);
    if (r.status == PodemStatus::kDetected) {
      EXPECT_TRUE(detects(n, f, r.test)) << to_string(n, f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PodemFamilySweep,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace cwatpg::fault
