#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/cutwidth.hpp"
#include "core/mla.hpp"
#include "fault/atpg_circuit.hpp"
#include "gen/hutton.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "netlist/simulate.hpp"
#include "util/rng.hpp"

namespace cwatpg::fault {
namespace {

/// Reference check: the miter's output is 1 exactly when the pattern
/// detects the fault (good vs faulty simulation differ on some observed
/// PO). Exercised over random patterns.
void expect_miter_behaviour(const net::Network& n, const StuckAtFault& fault,
                            std::uint64_t seed) {
  const AtpgCircuit atpg = build_atpg_circuit(n, fault);
  ASSERT_NO_THROW(atpg.miter.validate());
  cwatpg::Rng rng(seed);
  for (int t = 0; t < 8; ++t) {
    // Random full-circuit pattern.
    std::vector<bool> pattern(n.inputs().size());
    for (std::size_t i = 0; i < pattern.size(); ++i)
      pattern[i] = rng.chance(0.5);

    // Reference: does the pattern detect the fault?
    std::vector<std::uint64_t> words(pattern.size());
    for (std::size_t i = 0; i < words.size(); ++i)
      words[i] = pattern[i] ? ~0ULL : 0ULL;
    const net::SimFrame good = net::simulate64(n, words);
    // Faulty value: inject at the branch/stem by re-simulation through the
    // miter is what we are testing, so build the reference by brute eval of
    // the faulted network semantics using fsim-style injection:
    bool detected = false;
    {
      // Scalar faulty sim with pin-accurate injection.
      std::vector<bool> value(n.node_count());
      for (std::size_t i = 0; i < n.inputs().size(); ++i)
        value[n.inputs()[i]] = pattern[i];
      for (net::NodeId id = 0; id < n.node_count(); ++id) {
        const auto& node = n.node(id);
        bool out = value[id];
        switch (node.type) {
          case net::GateType::kInput:
            out = value[id];
            break;
          case net::GateType::kConst0:
            out = false;
            break;
          case net::GateType::kConst1:
            out = true;
            break;
          default: {
            std::vector<std::uint64_t> ins;
            for (std::size_t p = 0; p < node.fanins.size(); ++p) {
              bool v = value[node.fanins[p]];
              if (!fault.is_stem() && id == fault.node &&
                  static_cast<std::int32_t>(p) == fault.pin)
                v = fault.stuck_value;
              ins.push_back(v ? ~0ULL : 0ULL);
            }
            if (node.type == net::GateType::kOutput)
              out = ins[0] != 0;
            else
              out = (net::eval_gate_word(node.type, ins) & 1) != 0;
            break;
          }
        }
        if (fault.is_stem() && id == fault.node) out = fault.stuck_value;
        value[id] = out;
      }
      for (net::NodeId po : n.outputs())
        if (value[po] != ((good[po] & 1) != 0)) detected = true;
    }

    // Miter evaluation on the corresponding support pattern.
    std::vector<bool> miter_pattern;
    for (net::NodeId pi : atpg.support) {
      std::size_t index = 0;
      for (std::size_t i = 0; i < n.inputs().size(); ++i)
        if (n.inputs()[i] == pi) index = i;
      miter_pattern.push_back(pattern[index]);
    }
    const auto miter_values = atpg.miter.eval(miter_pattern);
    bool miter_out = false;
    for (net::NodeId po : atpg.miter.outputs())
      miter_out = miter_out || miter_values[po];
    ASSERT_EQ(miter_out, detected)
        << to_string(n, fault) << " pattern " << t;
  }
}

TEST(AtpgCircuit, StemFaultMiterBehaviour) {
  const net::Network n = gen::c17();
  expect_miter_behaviour(n, {*n.find("11"), StuckAtFault::kStem, true}, 1);
  expect_miter_behaviour(n, {*n.find("11"), StuckAtFault::kStem, false}, 2);
  expect_miter_behaviour(n, {*n.find("22"), StuckAtFault::kStem, false}, 3);
}

TEST(AtpgCircuit, PiFaultMiterBehaviour) {
  const net::Network n = gen::c17();
  expect_miter_behaviour(n, {*n.find("3"), StuckAtFault::kStem, true}, 4);
  expect_miter_behaviour(n, {*n.find("1"), StuckAtFault::kStem, false}, 5);
}

TEST(AtpgCircuit, BranchFaultMiterBehaviour) {
  const net::Network n = gen::c17();
  // Branch faults on the fanout branches of signal 11.
  expect_miter_behaviour(n, {*n.find("16"), 1, true}, 6);
  expect_miter_behaviour(n, {*n.find("19"), 0, false}, 7);
}

TEST(AtpgCircuit, SweepAllFaultsOnSmallCircuits) {
  for (const net::Network& n :
       {net::decompose(gen::ripple_carry_adder(2)),
        net::decompose(gen::comparator(2)), gen::fig4a_network()}) {
    std::uint64_t seed = 10;
    for (const StuckAtFault& f : all_faults(n)) {
      try {
        expect_miter_behaviour(n, f, seed++);
      } catch (const std::invalid_argument&) {
        // unobservable site: acceptable only if it truly reaches no PO
        const auto tfo = net::transitive_fanout(n, f.node);
        bool reaches = false;
        for (net::NodeId po : n.outputs()) reaches = reaches || tfo[po];
        EXPECT_FALSE(reaches);
      }
    }
  }
}

TEST(AtpgCircuit, MiterOutputsMatchObservedPos) {
  const net::Network n = gen::c17();
  const AtpgCircuit a =
      build_atpg_circuit(n, {*n.find("10"), StuckAtFault::kStem, true});
  EXPECT_EQ(a.miter.outputs().size(), 1u);  // G10 reaches only out 22
  const AtpgCircuit b =
      build_atpg_circuit(n, {*n.find("11"), StuckAtFault::kStem, true});
  EXPECT_EQ(b.miter.outputs().size(), 2u);
}

TEST(AtpgCircuit, SupportIsSubsetOfPis) {
  const net::Network n = net::decompose(gen::ripple_carry_adder(6));
  // A fault deep in the carry chain does not depend on later operand bits.
  const auto faults = collapsed_fault_list(n);
  const AtpgCircuit atpg = build_atpg_circuit(n, faults.front());
  EXPECT_LE(atpg.support.size(), n.inputs().size());
  for (net::NodeId pi : atpg.support)
    EXPECT_EQ(n.type(pi), net::GateType::kInput);
}

TEST(AtpgCircuit, InvalidFaultsThrow) {
  const net::Network n = gen::c17();
  EXPECT_THROW(build_atpg_circuit(n, {999, StuckAtFault::kStem, true}),
               std::invalid_argument);
  EXPECT_THROW(build_atpg_circuit(n, {*n.find("22"), 7, true}),
               std::invalid_argument);
}

TEST(AtpgCircuit, UnobservableSiteThrows) {
  net::Network n;
  const auto a = n.add_input("a");
  n.add_gate(net::GateType::kNot, {a});  // dangling
  n.add_output(n.add_gate(net::GateType::kBuf, {a}), "o");
  EXPECT_THROW(build_atpg_circuit(n, {1, StuckAtFault::kStem, true}),
               std::invalid_argument);
}

// --- Lemma 4.2 --------------------------------------------------------------

TEST(TransferOrdering, IsPermutationOfMiter) {
  const net::Network n = gen::c17();
  const StuckAtFault f{*n.find("11"), StuckAtFault::kStem, true};
  const AtpgCircuit atpg = build_atpg_circuit(n, f);
  const auto h = core::identity_ordering(n.node_count());
  const auto h_psi = transfer_ordering(n, atpg, h);
  EXPECT_NO_THROW(core::positions_of(h_psi, atpg.miter.node_count()));
}

TEST(TransferOrdering, RejectsWrongSize) {
  const net::Network n = gen::c17();
  const AtpgCircuit atpg =
      build_atpg_circuit(n, {*n.find("11"), StuckAtFault::kStem, true});
  EXPECT_THROW(transfer_ordering(n, atpg, {0, 1, 2}), std::invalid_argument);
}

/// Lemma 4.2 property: W(C_psi^ATPG, h_psi) <= 2 W(C,h) + 2.
void expect_lemma42(const net::Network& n, const core::Ordering& h) {
  const std::uint32_t w = core::cut_width(n, h);
  for (const StuckAtFault& f : collapsed_fault_list(n)) {
    AtpgCircuit atpg = [&]() -> AtpgCircuit {
      return build_atpg_circuit(n, f);
    }();
    const auto h_psi = transfer_ordering(n, atpg, h);
    const std::uint32_t w_psi = core::cut_width(atpg.miter, h_psi);
    EXPECT_LE(w_psi, core::lemma42_rhs(w)) << to_string(n, f);
  }
}

TEST(Lemma42, HoldsOnC17Topological) {
  const net::Network n = gen::c17();
  expect_lemma42(n, core::identity_ordering(n.node_count()));
}

TEST(Lemma42, HoldsOnC17MlaOrdering) {
  const net::Network n = gen::c17();
  expect_lemma42(n, core::mla(n).order);
}

TEST(Lemma42, HoldsOnFig4aNetwork) {
  const net::Network n = gen::fig4a_network();
  expect_lemma42(n, core::mla(n).order);
}

TEST(Lemma42, HoldsOnAdder) {
  const net::Network n = net::decompose(gen::ripple_carry_adder(4));
  expect_lemma42(n, core::mla(n).order);
}

TEST(Lemma42, HoldsOnTree) {
  const net::Network n = gen::and_or_tree(16, 2);
  expect_lemma42(n, core::tree_ordering(n));
}

class Lemma42RandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma42RandomSweep, HoldsOnRandomCircuits) {
  gen::HuttonParams p;
  p.num_gates = 60;
  p.num_inputs = 8;
  p.num_outputs = 4;
  p.seed = GetParam();
  const net::Network n = gen::hutton_random(p);
  expect_lemma42(n, core::mla(n).order);
  // Random orders too — the lemma's construction is order-agnostic.
  cwatpg::Rng rng(GetParam());
  core::Ordering random_h = core::identity_ordering(n.node_count());
  for (std::size_t i = random_h.size(); i > 1; --i)
    std::swap(random_h[i - 1], random_h[rng.below(i)]);
  expect_lemma42(n, random_h);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma42RandomSweep,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace cwatpg::fault
