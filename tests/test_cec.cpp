#include <gtest/gtest.h>

#include "gen/hutton.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "netlist/simplify.hpp"
#include "verify/cec.hpp"

namespace cwatpg::verify {
namespace {

TEST(Cec, IdenticalCircuitsEquivalent) {
  const net::Network n = gen::c17();
  const CecResult r = check_equivalence(n, n);
  EXPECT_TRUE(r.equivalent);
}

TEST(Cec, DecomposeIsEquivalent) {
  for (const net::Network& n :
       {gen::simple_alu(4), gen::comparator(5), gen::hamming_ecc(8),
        gen::array_multiplier(4)}) {
    const CecResult r = check_equivalence(n, net::decompose(n));
    EXPECT_TRUE(r.equivalent) << n.name();
  }
}

TEST(Cec, SimplifyIsEquivalent) {
  const net::Network n = gen::carry_select_adder(12, 4);
  EXPECT_TRUE(check_equivalence(n, net::simplify(n)).equivalent);
}

TEST(Cec, CarrySelectEqualsRipple) {
  // Two genuinely different implementations of the same function.
  const net::Network csa = gen::carry_select_adder(10, 3);
  const net::Network rca = gen::ripple_carry_adder(10);
  const CecResult r = check_equivalence(csa, rca);
  EXPECT_TRUE(r.equivalent);
}

TEST(Cec, DetectsSingleGateChange) {
  // Same adder with one AND swapped to OR: inequivalent, and the
  // counterexample must be verified (check_equivalence rechecks).
  net::Network good;
  {
    const auto a = good.add_input("a");
    const auto b = good.add_input("b");
    const auto c = good.add_input("c");
    good.add_output(good.add_gate(net::GateType::kAnd, {a, b, c}), "o");
  }
  net::Network bad;
  {
    const auto a = bad.add_input("a");
    const auto b = bad.add_input("b");
    const auto c = bad.add_input("c");
    const auto t = bad.add_gate(net::GateType::kOr, {a, b});
    bad.add_output(bad.add_gate(net::GateType::kAnd, {t, c}), "o");
  }
  const CecResult r = check_equivalence(good, bad);
  ASSERT_FALSE(r.equivalent);
  const auto vg = good.eval(r.counterexample);
  const auto vb = bad.eval(r.counterexample);
  EXPECT_NE(vg[good.outputs()[0]], vb[bad.outputs()[0]]);
}

TEST(Cec, DetectsOutputSwap) {
  net::Network a = gen::c17();
  // Build c17 with outputs swapped.
  net::Network b;
  {
    const net::Network& src = a;
    std::vector<net::NodeId> map(src.node_count());
    std::vector<net::NodeId> po_drivers;
    for (net::NodeId id = 0; id < src.node_count(); ++id) {
      const auto& node = src.node(id);
      if (node.type == net::GateType::kInput) {
        map[id] = b.add_input(src.name_of(id));
      } else if (node.type == net::GateType::kOutput) {
        po_drivers.push_back(map[node.fanins[0]]);
      } else {
        std::vector<net::NodeId> fis;
        for (net::NodeId fi : node.fanins) fis.push_back(map[fi]);
        map[id] = b.add_gate(node.type, std::move(fis));
      }
    }
    b.add_output(po_drivers[1], "o0");
    b.add_output(po_drivers[0], "o1");
  }
  EXPECT_FALSE(check_equivalence(a, b).equivalent);
}

TEST(Cec, InterfaceMismatchThrows) {
  EXPECT_THROW(
      check_equivalence(gen::c17(), gen::ripple_carry_adder(2)),
      std::invalid_argument);
}

TEST(Cec, MiterShape) {
  const net::Network n = gen::c17();
  const net::Network miter = build_cec_miter(n, n);
  EXPECT_EQ(miter.inputs().size(), n.inputs().size());
  EXPECT_EQ(miter.outputs().size(), n.outputs().size());
  EXPECT_NO_THROW(miter.validate());
}

class CecMutationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CecMutationSweep, RandomGateMutationsDetectedOrBenign) {
  gen::HuttonParams p;
  p.num_gates = 40;
  p.num_inputs = 8;
  p.num_outputs = 4;
  p.seed = GetParam();
  const net::Network original = net::decompose(gen::hutton_random(p));

  // Mutate one gate type (AND <-> OR) and check CEC agrees with
  // exhaustive simulation.
  net::Network mutated;
  net::NodeId victim = net::kNullNode;
  for (net::NodeId id = 0; id < original.node_count(); ++id) {
    const auto t = original.type(id);
    if (t == net::GateType::kAnd || t == net::GateType::kOr) {
      victim = id;  // keep last such gate
    }
  }
  ASSERT_NE(victim, net::kNullNode);
  {
    std::vector<net::NodeId> map(original.node_count());
    for (net::NodeId id = 0; id < original.node_count(); ++id) {
      const auto& node = original.node(id);
      std::vector<net::NodeId> fis;
      for (net::NodeId fi : node.fanins) fis.push_back(map[fi]);
      switch (node.type) {
        case net::GateType::kInput:
          map[id] = mutated.add_input(original.name_of(id));
          break;
        case net::GateType::kOutput:
          map[id] = mutated.add_output(fis[0]);
          break;
        default: {
          auto t = node.type;
          if (id == victim)
            t = t == net::GateType::kAnd ? net::GateType::kOr
                                         : net::GateType::kAnd;
          map[id] = mutated.add_gate(t, std::move(fis));
          break;
        }
      }
    }
  }

  const CecResult r = check_equivalence(original, mutated);
  // Reference by exhaustive simulation (8 inputs).
  bool reference_equal = true;
  for (int v = 0; v < 256 && reference_equal; ++v) {
    std::vector<bool> pattern(8);
    for (int i = 0; i < 8; ++i) pattern[i] = (v >> i) & 1;
    const auto x = original.eval(pattern);
    const auto y = mutated.eval(pattern);
    for (std::size_t o = 0; o < original.outputs().size(); ++o)
      if (x[original.outputs()[o]] != y[mutated.outputs()[o]])
        reference_equal = false;
  }
  EXPECT_EQ(r.equivalent, reference_equal) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CecMutationSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace cwatpg::verify
