// Failure diagnosis with a fault dictionary — the flow downstream of ATPG.
//
//   $ ./diagnose [seed]
//
// Generates tests for a circuit, compacts them, builds a fault dictionary,
// then plays tester: plants a random fault in a simulated "device",
// collects its pass/fail signature over the compacted test set, and asks
// the dictionary for the defect candidates. Shows compaction and
// diagnostic resolution trading off.
#include <cstdlib>
#include <iostream>

#include "fault/compact.hpp"
#include "fault/dictionary.hpp"
#include "fault/tegus.hpp"
#include "gen/structured.hpp"
#include "netlist/decompose.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cwatpg;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                      : 2026;

  const net::Network circuit = net::decompose(gen::simple_alu(6));
  const auto faults = fault::collapsed_fault_list(circuit);
  std::cout << "circuit: " << circuit.name() << ", " << faults.size()
            << " collapsed faults\n";

  // 1. Generate and compact a production test set.
  const fault::AtpgResult atpg = fault::run_atpg(circuit);
  const fault::CompactionResult compacted =
      fault::compact_tests(circuit, faults, atpg.tests);
  std::cout << "tests: " << atpg.tests.size() << " generated -> "
            << compacted.tests.size() << " after compaction (coverage "
            << cell(fault::coverage(circuit, faults, compacted.tests) * 100,
                    1)
            << "%)\n\n";

  // 2. Build the dictionary over the compacted set.
  const fault::FaultDictionary dict(circuit, faults, compacted.tests);
  const auto classes = dict.indistinguishable_classes();
  std::cout << "dictionary: " << dict.num_faults() << " faults x "
            << dict.num_tests() << " tests; " << classes.size()
            << " distinguishable classes\n\n";

  // 3. Play tester: plant faults, diagnose from the observed signature.
  Rng rng(seed);
  Table t({"planted fault", "fails", "top candidate", "dist",
           "hit in top-3"});
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t planted = rng.below(faults.size());
    const auto observed = dict.signature_of(planted);
    std::size_t failing = 0;
    for (bool b : observed)
      if (b) ++failing;
    const auto candidates = dict.diagnose(observed, 3);
    bool hit = false;
    for (const auto& c : candidates)
      hit = hit || c.fault_index == planted;
    // An equivalent-signature fault counts as a correct diagnosis too.
    if (!hit) {
      for (const auto& c : candidates)
        if (c.distance == 0) hit = true;
    }
    t.add_row({fault::to_string(circuit, faults[planted]), cell(failing),
               fault::to_string(circuit,
                                faults[candidates[0].fault_index]),
               cell(candidates[0].distance), hit ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\n(planted defects diagnose to themselves or an "
               "indistinguishable equivalent at distance 0.)\n";
  return 0;
}
