// Production-style ATPG flow on a realistic design block.
//
//   $ ./atpg_flow [path/to/netlist.bench]
//
// Without an argument, generates a 16-bit ALU datapath (the workload the
// paper's introduction motivates: test generation for real arithmetic
// logic). Runs the full TEGUS-style flow — tech decomposition, fault
// collapsing, random-pattern phase, SAT phase with fault dropping — and
// prints the kind of report a test engineer reads: phase-by-phase
// coverage, pattern counts, redundant faults, and the SAT effort profile.
#include <iostream>

#include "fault/tegus.hpp"
#include "gen/structured.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/verilog_io.hpp"
#include "netlist/decompose.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace cwatpg_examples {

/// Reads .bench or structural .v by file extension.
cwatpg::net::Network read_netlist(const std::string& path) {
  if (path.size() >= 2 && path.compare(path.size() - 2, 2, ".v") == 0)
    return cwatpg::net::read_verilog_file(path);
  return cwatpg::net::read_bench_file(path);
}

}  // namespace cwatpg_examples

int main(int argc, char** argv) {
  using namespace cwatpg;

  net::Network design =
      argc > 1 ? cwatpg_examples::read_netlist(argv[1]) : gen::simple_alu(16);
  std::cout << "design: " << design.name() << " (" << design.gate_count()
            << " gates before mapping)\n";

  // The paper's preprocessing: map to <=3-input AND/OR with inverters
  // (SIS tech_decomp equivalent) — also what makes the SAT formulas easy
  // to derive.
  const net::Network circuit = net::decompose(design);
  std::cout << "after tech_decomp: " << circuit.gate_count()
            << " gates, depth " << circuit.depth() << "\n\n";

  Timer timer;
  fault::AtpgOptions options;
  options.random_blocks = 4;  // 256 random patterns up front
  const fault::AtpgResult result = fault::run_atpg(circuit, options);
  const double elapsed = timer.seconds();

  // Phase accounting.
  std::size_t by_random = 0, by_sat = 0, by_drop = 0;
  std::vector<double> solve_ms;
  for (const auto& outcome : result.outcomes) {
    switch (outcome.status) {
      case fault::FaultStatus::kDroppedRandom: ++by_random; break;
      case fault::FaultStatus::kDetected:
        ++by_sat;
        solve_ms.push_back(outcome.solve_seconds * 1e3);
        break;
      case fault::FaultStatus::kDroppedBySim: ++by_drop; break;
      default: break;
    }
  }

  Table report({"metric", "value"});
  report.add_row({"collapsed faults", cell(result.outcomes.size())});
  report.add_row({"detected by random patterns", cell(by_random)});
  report.add_row({"detected by SAT", cell(by_sat)});
  report.add_row({"dropped by simulation", cell(by_drop)});
  report.add_row({"proven redundant", cell(result.num_untestable)});
  report.add_row({"aborted", cell(result.num_aborted)});
  report.add_row({"rescued by escalation", cell(result.num_escalated)});
  if (result.interrupted)
    report.add_row({"unprocessed (run interrupted)",
                    cell(result.num_undetermined)});
  report.add_row({"fault coverage %", cell(result.fault_coverage() * 100, 2)});
  report.add_row({"fault efficiency %",
                  cell(result.fault_efficiency() * 100, 2)});
  report.add_row({"test patterns", cell(result.tests.size())});
  report.add_row({"total seconds", cell(elapsed, 2)});
  report.print(std::cout);

  if (!solve_ms.empty()) {
    const Summary s = summarize(solve_ms);
    std::cout << "\nSAT effort per targeted fault (ms): median "
              << cell(s.median, 3) << ", p90 " << cell(s.p90, 3) << ", max "
              << cell(s.max, 3)
              << "\n(the paper's Figure 1 in miniature: practically every "
                 "instance is trivial)\n";
  }

  // Double-check the final pattern set independently.
  const auto faults = fault::collapsed_fault_list(circuit);
  std::cout << "\nindependent re-simulation of the pattern set: coverage "
            << cell(fault::coverage(circuit, faults, result.tests) * 100, 2)
            << "%\n";
  return 0;
}
