// Budgeted ATPG: deadlines, cancellation, and the escalation ladder.
//
//   $ ./budgeted_atpg
//
// Production test generation runs under a time box. This example shows the
// three budget mechanisms on a deliberately hard circuit (an 8-bit array
// multiplier — the Figure-1 outlier family):
//
//   1. a wall-clock deadline that turns the flow into an anytime
//      algorithm (partial but internally consistent results),
//   2. cooperative cancellation from another thread (ctrl-C plumbing),
//   3. per-solve conflict caps plus the abort-escalation ladder that
//      re-attacks aborted faults with growing budgets and a PODEM
//      fallback.
#include <iostream>
#include <thread>

#include "fault/tegus.hpp"
#include "gen/structured.hpp"
#include "netlist/decompose.hpp"
#include "util/budget.hpp"
#include "util/timer.hpp"

int main() {
  using namespace cwatpg;

  const net::Network circuit = net::decompose(gen::array_multiplier(8));
  std::cout << "circuit: " << circuit.name() << " ("
            << circuit.gate_count() << " gates)\n\n";

  // --- 1. deadline: "give me whatever you have in 150 ms" --------------
  // random_blocks = 0 sends every fault through SAT so the deadline
  // visibly truncates the fault list; the production flow would keep the
  // random phase and the deadline would only ever clip the hard tail.
  {
    Budget budget;
    budget.set_deadline_after(0.15);
    fault::AtpgOptions options;
    options.budget = &budget;
    options.random_blocks = 0;
    Timer timer;
    const fault::AtpgResult r = fault::run_atpg(circuit, options);
    std::cout << "150 ms deadline: " << (r.outcomes.size() - r.num_undetermined)
              << "/" << r.outcomes.size() << " faults classified, coverage "
              << r.fault_coverage() * 100 << "%, interrupted="
              << (r.interrupted ? "yes" : "no") << ", wall "
              << timer.seconds() << " s\n";
  }

  // --- 2. cancellation from another thread -----------------------------
  {
    Budget budget;  // no deadline — cancel() is the only way out
    fault::AtpgOptions options;
    options.budget = &budget;
    options.random_blocks = 0;
    std::thread canceller([&budget] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      budget.cancel();  // what a SIGINT handler or a GUI stop button does
    });
    Timer timer;
    const fault::AtpgResult r = fault::run_atpg(circuit, options);
    canceller.join();
    std::cout << "cancelled at 100 ms: "
              << (r.outcomes.size() - r.num_undetermined) << "/"
              << r.outcomes.size() << " faults classified, wall "
              << timer.seconds() << " s\n";
  }

  // --- 3. conflict caps + the escalation ladder ------------------------
  {
    fault::AtpgOptions options;
    options.random_blocks = 0;        // force every fault through SAT
    options.solver.max_conflicts = 1; // absurdly tight: many solves abort

    fault::AtpgOptions bare = options;
    bare.escalation_rounds = 0;  // ladder off
    bare.podem_fallback = false;
    const fault::AtpgResult without = fault::run_atpg(circuit, bare);

    const fault::AtpgResult with = fault::run_atpg(circuit, options);
    std::cout << "\n1-conflict cap, ladder off: " << without.num_aborted
              << " aborted\n1-conflict cap, ladder on:  " << with.num_aborted
              << " aborted (" << with.num_escalated
              << " rescued by the ladder)\n";

    // Which engine finally cracked each rescued fault? Most rescues need
    // no solve at all: a test recovered for one fault is simulated
    // against the still-aborted tail and drops its detections too.
    std::size_t by_retry = 0, by_podem = 0, by_drop = 0;
    for (const fault::FaultOutcome& o : with.outcomes) {
      if (o.engine == fault::SolveEngine::kSatRetry) ++by_retry;
      if (o.engine == fault::SolveEngine::kPodem) ++by_podem;
    }
    by_drop = with.num_escalated - by_retry - by_podem;
    std::cout << "engine attribution: " << by_retry
              << " by CDCL retry with a grown cap, " << by_podem
              << " by the structural PODEM fallback, " << by_drop
              << " dropped by simulating the recovered tests\n";
  }
  return 0;
}
