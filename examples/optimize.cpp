// ATPG as a logic optimizer — redundancy removal with equivalence proof.
//
//   $ ./optimize
//
// The paper's introduction lists logic optimization among ATPG's
// applications: an untestable stuck-at fault licenses wiring the faulted
// connection to its stuck value. This example builds a deliberately
// redundant datapath (absorption terms and dead logic injected into an
// ALU), runs the redundancy-removal fixpoint, proves the rewrite
// equivalent with the SAT-based checker, and shows fault coverage rising
// to 100%.
#include <iostream>

#include "fault/redundancy.hpp"
#include "fault/tegus.hpp"
#include "gen/structured.hpp"
#include "netlist/decompose.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "verify/cec.hpp"

namespace {

/// An ALU with hand-injected redundancy: absorption wrappers around two
/// outputs and a dangling chain.
cwatpg::net::Network redundant_design() {
  using namespace cwatpg;
  const net::Network alu = net::decompose(gen::simple_alu(4));
  net::Network n;
  n.set_name("alu4_redundant");
  std::vector<net::NodeId> map(alu.node_count());
  std::vector<net::NodeId> po_drivers;
  for (net::NodeId id = 0; id < alu.node_count(); ++id) {
    const auto& node = alu.node(id);
    std::vector<net::NodeId> fis;
    for (net::NodeId fi : node.fanins) fis.push_back(map[fi]);
    switch (node.type) {
      case net::GateType::kInput:
        map[id] = n.add_input(alu.name_of(id));
        break;
      case net::GateType::kOutput:
        po_drivers.push_back(fis[0]);
        break;
      default:
        map[id] = n.add_gate(node.type, std::move(fis));
        break;
    }
  }
  // Absorption: y -> AND(y, OR(y, x)) is the identity, but untestably so.
  const net::NodeId x = n.inputs()[0];
  for (std::size_t o = 0; o < po_drivers.size(); ++o) {
    net::NodeId driver = po_drivers[o];
    if (o % 2 == 0) {
      const auto wrap = n.add_gate(net::GateType::kOr, {driver, x});
      driver = n.add_gate(net::GateType::kAnd, {driver, wrap});
    }
    n.add_output(driver, "y" + std::to_string(o));
  }
  // Dead logic: a chain no output observes.
  auto dead = n.add_gate(net::GateType::kNot, {x});
  n.add_gate(net::GateType::kAnd, {dead, n.inputs()[1]});
  return n;
}

}  // namespace

int main() {
  using namespace cwatpg;
  const net::Network design = redundant_design();
  std::cout << "design: " << design.name() << ", " << design.gate_count()
            << " gates\n\n";

  // Before: coverage is stuck below 100%.
  fault::AtpgOptions atpg_opts;
  atpg_opts.random_blocks = 2;
  const fault::AtpgResult before = fault::run_atpg(design, atpg_opts);

  Timer timer;
  const fault::RedundancyResult opt = fault::remove_redundancy(design);
  const double seconds = timer.seconds();
  const fault::AtpgResult after = fault::run_atpg(opt.circuit, atpg_opts);

  Table t({"metric", "before", "after"});
  t.add_row({"gates", cell(opt.gates_before), cell(opt.gates_after)});
  t.add_row({"fault coverage %", cell(before.fault_coverage() * 100, 2),
             cell(after.fault_coverage() * 100, 2)});
  t.add_row({"redundant faults", cell(before.num_untestable),
             cell(after.num_untestable)});
  t.print(std::cout);
  std::cout << "\nremoved " << opt.removed_faults << " redundancies in "
            << opt.rounds << " rounds (" << cell(seconds, 2) << " s)\n";

  const verify::CecResult cec =
      verify::check_equivalence(design, opt.circuit);
  std::cout << "SAT equivalence check: "
            << (cec.equivalent ? "EQUIVALENT (proof by UNSAT)"
                               : "NOT EQUIVALENT — bug!")
            << "\n";
  return cec.equivalent ? 0 : 1;
}
