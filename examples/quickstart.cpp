// Quickstart: build a circuit, generate a test for a stuck-at fault,
// verify it — the five-minute tour of the library.
//
//   $ ./quickstart
//
// Shows: Network construction, the ISCAS85 c17 benchmark, fault lists,
// the SAT-based test generator, and fault simulation.
#include <iostream>

#include "fault/tegus.hpp"
#include "gen/trees.hpp"

int main() {
  using namespace cwatpg;

  // 1. A circuit. c17 is the classic 6-NAND ISCAS85 example; you can also
  //    build one gate by gate (net::Network::add_input/add_gate/add_output)
  //    or parse any combinational .bench file (net::read_bench_file).
  const net::Network circuit = gen::c17();
  std::cout << "circuit: " << circuit.name() << " — "
            << circuit.inputs().size() << " inputs, "
            << circuit.outputs().size() << " outputs, "
            << circuit.gate_count() << " gates\n";

  // 2. The fault universe: single stuck-at faults, structurally collapsed.
  const auto faults = fault::collapsed_fault_list(circuit);
  std::cout << "collapsed fault list: " << faults.size() << " faults\n\n";

  // 3. Generate a test for one specific fault via the Larrabee ATPG-SAT
  //    construction + CDCL solver.
  const fault::StuckAtFault psi{*circuit.find("11"),
                                fault::StuckAtFault::kStem, true};
  fault::Pattern test;
  const fault::FaultOutcome outcome =
      fault::generate_test(circuit, psi, {}, test);

  std::cout << "fault " << fault::to_string(circuit, psi) << ": ";
  switch (outcome.status) {
    case fault::FaultStatus::kDetected: {
      std::cout << "testable. test vector:";
      for (std::size_t i = 0; i < test.size(); ++i)
        std::cout << ' ' << circuit.name_of(circuit.inputs()[i]) << '='
                  << test[i];
      std::cout << "\n  (SAT instance: " << outcome.sat_vars
                << " vars, " << outcome.sat_clauses << " clauses, solved in "
                << outcome.solve_seconds * 1e3 << " ms)\n";
      // 4. Independent verification by fault simulation.
      std::cout << "  fault simulation confirms detection: "
                << (fault::detects(circuit, psi, test) ? "yes" : "NO")
                << "\n";
      break;
    }
    case fault::FaultStatus::kUntestable:
      std::cout << "redundant (proven untestable)\n";
      break;
    default:
      std::cout << "not resolved\n";
      break;
  }

  // 5. Or run the whole flow at once.
  const fault::AtpgResult report = fault::run_atpg(circuit);
  std::cout << "\nfull ATPG: coverage "
            << report.fault_coverage() * 100 << "%, "
            << report.tests.size() << " patterns, "
            << report.num_untestable << " redundant faults\n";
  return 0;
}
