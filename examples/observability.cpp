// Observability: metrics, trace events, and the canonical run report.
//
//   $ ./observability
//
// The engines run dark by default — no counters, no events, no timing
// beyond the wall-clock stamp. This example switches all three layers on
// for one run of the TEGUS pipeline:
//
//   1. a MetricsRegistry collects named counters and histograms from the
//      solver, the fault simulator, and the pipeline phases,
//   2. a JsonlSink receives structured trace events (one JSON object per
//      line with a monotonic timestamp and a dense thread id),
//   3. build_run_report() folds the AtpgResult into the one JSON schema
//      ("cwatpg.run_report/1") every bench binary also emits via --json.
//
// The same hooks work on run_atpg_parallel — pass them in
// ParallelAtpgOptions::base and the registry merges across workers.
#include <iostream>
#include <sstream>
#include <string>

#include "fault/tegus.hpp"
#include "gen/structured.hpp"
#include "netlist/decompose.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

int main() {
  using namespace cwatpg;

  const net::Network circuit = net::decompose(gen::array_multiplier(4));
  std::cout << "circuit: " << circuit.name() << " ("
            << circuit.gate_count() << " gates)\n\n";

  // --- instrument the run ----------------------------------------------
  obs::MetricsRegistry metrics;
  std::ostringstream trace_out;
  obs::JsonlSink trace(trace_out);

  fault::AtpgOptions options;
  options.metrics = &metrics;
  options.trace = &trace;
  const fault::AtpgResult result = fault::run_atpg(circuit, options);

  // --- 1. the metrics registry -----------------------------------------
  const obs::MetricsSnapshot snap = metrics.snapshot();
  std::cout << "counters:\n";
  for (const auto& [name, value] : snap.counters)
    std::cout << "  " << name << " = " << value << "\n";
  for (const auto& [name, hist] : snap.histograms) {
    std::cout << "histogram " << name << " (" << hist.total
              << " observations):\n";
    for (std::size_t b = 0; b < hist.counts.size(); ++b) {
      std::cout << "  <= ";
      if (b < hist.bounds.size())
        std::cout << hist.bounds[b];
      else
        std::cout << "+inf";
      std::cout << ": " << hist.counts[b] << "\n";
    }
  }

  // --- 2. the trace ----------------------------------------------------
  std::cout << "\ntrace: " << trace.events_written()
            << " events, first lines:\n";
  std::istringstream lines(trace_out.str());
  std::string line;
  for (int i = 0; i < 4 && std::getline(lines, line); ++i)
    std::cout << "  " << line << "\n";

  // --- 3. the canonical run report -------------------------------------
  // Built from the AtpgResult alone, so it is exact even for runs that
  // never attached a registry or sink; attaching the snapshot inlines the
  // free-form metrics under a "metrics" key.
  obs::ReportOptions ropts;
  ropts.label = "observability-example";
  ropts.metrics = &snap;
  const obs::RunReport report = obs::build_run_report(circuit, result, ropts);
  std::cout << "\nrun report (schema " << report.schema << "):\n"
            << report.to_json().dump(2) << "\n";
  return 0;
}
