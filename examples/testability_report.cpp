// Predicting ATPG difficulty from topology — the paper's thesis as a tool.
//
//   $ ./testability_report [path/to/netlist.bench]
//
// Given a circuit (default: a 24-bit carry-select adder), this example
// computes the quantities the paper ties to ATPG complexity and then
// verifies the prediction empirically:
//   1. whole-circuit and per-output-cone cut-width estimates (MLA);
//   2. the Theorem 4.1 / Eq. 4.5 complexity bound and the
//      log-bounded-width classification (is W small relative to log n?);
//   3. an actual ATPG run, confirming the instances are as easy (or as
//      hard) as the width predicted.
#include <cmath>
#include <iostream>

#include "core/bounds.hpp"
#include "core/mla.hpp"
#include "fault/tegus.hpp"
#include "gen/structured.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/verilog_io.hpp"
#include "netlist/decompose.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace cwatpg_examples {

/// Reads .bench or structural .v by file extension.
cwatpg::net::Network read_netlist(const std::string& path) {
  if (path.size() >= 2 && path.compare(path.size() - 2, 2, ".v") == 0)
    return cwatpg::net::read_verilog_file(path);
  return cwatpg::net::read_bench_file(path);
}

}  // namespace cwatpg_examples

int main(int argc, char** argv) {
  using namespace cwatpg;

  const net::Network design = argc > 1 ? cwatpg_examples::read_netlist(argv[1])
                                       : gen::carry_select_adder(24, 6);
  const net::Network circuit = net::decompose(design);
  const std::size_t n = circuit.node_count();
  std::cout << "circuit: " << circuit.name() << " — " << n << " nodes, "
            << circuit.inputs().size() << " PIs, "
            << circuit.outputs().size() << " POs, k_fo = "
            << circuit.max_fanout() << "\n\n";

  // ---- topology analysis ----------------------------------------------------
  const core::MlaResult whole = core::mla(circuit);
  const core::MultiOutputWidth cones = core::mla_multi_output(circuit);
  const double logn = std::log2(static_cast<double>(n));

  Table topo({"quantity", "value"});
  topo.add_row({"whole-circuit cut-width (MLA)", cell(whole.width)});
  topo.add_row({"W(C,H) over output cones (Eq 4.4)", cell(cones.width)});
  topo.add_row({"largest cone n_max", cell(cones.max_cone_size)});
  topo.add_row({"log2(n)", cell(logn, 1)});
  topo.add_row({"W / log2(n)", cell(cones.width / logn, 2)});
  topo.add_row({"Eq 4.5 log2 runtime bound",
                cell(core::eq45_log2_bound(circuit.outputs().size(),
                                           cones.max_cone_size,
                                           circuit.max_fanout(), cones.width),
                     1)});
  topo.print(std::cout);

  const bool looks_log_bounded = cones.width <= 4.0 * logn;
  std::cout << "\nclassification: "
            << (looks_log_bounded
                    ? "log-bounded-width regime — ATPG predicted EASY "
                      "(polynomial, Lemma 5.1)"
                    : "cut-width large relative to log n — ATPG may be hard")
            << "\n\n";

  // ---- empirical confirmation ------------------------------------------------
  fault::AtpgOptions options;
  options.random_blocks = 0;
  options.drop_by_simulation = false;  // one SAT instance per fault
  const fault::AtpgResult result = fault::run_atpg(circuit, options);

  std::vector<double> conflicts;
  for (const auto& o : result.outcomes)
    if (o.sat_vars > 0)
      conflicts.push_back(static_cast<double>(o.solver_stats.conflicts));
  const Summary s = summarize(conflicts);

  Table emp({"empirical ATPG", "value"});
  emp.add_row({"faults targeted", cell(conflicts.size())});
  emp.add_row({"fault efficiency %",
               cell(result.fault_efficiency() * 100, 2)});
  emp.add_row({"median solver conflicts", cell(s.median, 0)});
  emp.add_row({"p99 solver conflicts", cell(s.p99, 0)});
  emp.add_row({"max solver conflicts", cell(s.max, 0)});
  emp.print(std::cout);

  std::cout << "\nreading: small cut-width => small search trees; the "
               "conflict counts above are the practical face of Theorem "
               "4.1's 2^(2 k_fo W) bound.\n";
  return 0;
}
