// Fault-parallel ATPG in a dozen lines.
//
//   $ ./parallel_atpg [threads]
//
// Runs the production TEGUS flow serially and then fault-parallel on a
// work-stealing pool (default: one worker per hardware thread), shows the
// wall-clock difference, and proves the headline guarantee of
// fault/parallel_atpg.hpp on the spot: the parallel result is
// byte-identical to the serial one — same per-fault classification, same
// test patterns — no matter how the workers interleave.
#include <cstdlib>
#include <iostream>

#include "fault/parallel_atpg.hpp"
#include "gen/structured.hpp"
#include "netlist/decompose.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace cwatpg;

  const std::size_t threads =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1]))
               : ThreadPool::default_thread_count();
  const net::Network circuit = net::decompose(gen::simple_alu(16));
  std::cout << "circuit: " << circuit.gate_count() << " gates, "
            << threads << " worker thread(s)\n\n";

  Timer serial_timer;
  const fault::AtpgResult serial = fault::run_atpg(circuit);
  const double serial_s = serial_timer.seconds();

  fault::ParallelAtpgOptions options;
  options.num_threads = threads;
  fault::ParallelStats stats;
  Timer parallel_timer;
  const fault::AtpgResult parallel =
      fault::run_atpg_parallel(circuit, options, &stats);
  const double parallel_s = parallel_timer.seconds();

  Table table({"engine", "seconds", "coverage %", "patterns"});
  table.add_row({"serial run_atpg", cell(serial_s, 3),
                 cell(serial.fault_coverage() * 100, 2),
                 cell(serial.tests.size())});
  table.add_row({"run_atpg_parallel", cell(parallel_s, 3),
                 cell(parallel.fault_coverage() * 100, 2),
                 cell(parallel.tests.size())});
  table.print(std::cout);
  std::cout << "speedup: " << cell(serial_s / parallel_s, 2) << "x\n\n";

  // The determinism contract, checked end to end.
  bool identical = serial.tests == parallel.tests &&
                   serial.outcomes.size() == parallel.outcomes.size();
  for (std::size_t i = 0; identical && i < serial.outcomes.size(); ++i)
    identical = serial.outcomes[i].status == parallel.outcomes[i].status &&
                serial.outcomes[i].test_index ==
                    parallel.outcomes[i].test_index;
  std::cout << "byte-identical classification: "
            << (identical ? "yes" : "NO — engine bug") << "\n";

  Table workers({"worker", "solved", "solve s", "conflicts"});
  for (std::size_t w = 0; w < stats.workers.size(); ++w)
    workers.add_row({cell(w), cell(stats.workers[w].solved),
                     cell(stats.workers[w].solve_seconds, 3),
                     cell(stats.workers[w].solver.conflicts)});
  workers.print(std::cout);
  std::cout << "speculative solves: " << stats.dispatched << " dispatched, "
            << stats.committed << " committed, " << stats.wasted
            << " wasted\n";
  return identical ? 0 : 1;
}
