// Exploring variable orderings and their cut profiles.
//
//   $ ./width_explorer [family]     family in {tree, adder, cellular,
//                                              parity, random, example}
//
// For the chosen circuit family this example prints the cut profile under
// several orderings — topological, random, MLA, and (where the structure
// admits one) the constructive tree / k-bounded orderings — and runs
// Algorithm 1 under each to show the ordering's effect on the actual
// backtracking tree. This is the paper's §4 pipeline as an interactive
// tool.
#include <iostream>
#include <string>

#include "core/bounds.hpp"
#include "core/kbounded.hpp"
#include "core/mla.hpp"
#include "gen/hutton.hpp"
#include "gen/kbounded_gen.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "sat/cache_sat.hpp"
#include "sat/encode.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cwatpg;
  const std::string family = argc > 1 ? argv[1] : "adder";

  net::Network circuit;
  std::vector<std::pair<std::string, core::Ordering>> special;

  if (family == "tree") {
    circuit = gen::and_or_tree(64, 2);
    special.emplace_back("tree (Lemma 5.2)", core::tree_ordering(circuit));
  } else if (family == "cellular") {
    const gen::KBoundedInstance inst = gen::kbounded_cellular(24);
    circuit = inst.circuit;
    special.emplace_back(
        "k-bounded (Thm 5.1)",
        core::kbounded_ordering(
            circuit, core::BlockPartition{inst.block_of, inst.num_blocks},
            inst.k));
  } else if (family == "parity") {
    circuit = net::decompose(gen::parity_tree(24));
  } else if (family == "random") {
    gen::HuttonParams p;
    p.num_gates = 80;
    p.num_inputs = 10;
    p.num_outputs = 4;
    circuit = net::decompose(gen::hutton_random(p));
  } else if (family == "example") {
    circuit = gen::fig4a_network();
  } else {
    const gen::KBoundedInstance inst = gen::kbounded_adder(10);
    circuit = inst.circuit;
    special.emplace_back(
        "k-bounded (Thm 5.1)",
        core::kbounded_ordering(
            circuit, core::BlockPartition{inst.block_of, inst.num_blocks},
            inst.k));
  }

  const std::size_t n = circuit.node_count();
  std::cout << "family '" << family << "': " << circuit.name() << " with "
            << n << " nodes\n\n";

  std::vector<std::pair<std::string, core::Ordering>> orders;
  orders.emplace_back("topological", core::identity_ordering(n));
  {
    Rng rng(1);
    core::Ordering rnd = core::identity_ordering(n);
    for (std::size_t i = rnd.size(); i > 1; --i)
      std::swap(rnd[i - 1], rnd[rng.below(i)]);
    orders.emplace_back("random", std::move(rnd));
  }
  orders.emplace_back("MLA", core::mla(circuit).order);
  for (auto& s : special) orders.push_back(std::move(s));

  const sat::Cnf f = sat::encode_circuit_sat(circuit);
  const net::Hypergraph hg = net::to_hypergraph(circuit);

  Table t({"ordering", "W", "mean cut", "Alg.1 tree nodes", "cache hits"});
  for (const auto& [name, order] : orders) {
    const auto profile = core::cut_profile(hg, order);
    double mean = 0;
    for (auto c : profile) mean += c;
    if (!profile.empty()) mean /= static_cast<double>(profile.size());

    sat::CacheSatConfig cfg;
    cfg.early_sat = false;
    cfg.max_nodes = 5'000'000;
    const std::vector<sat::Var> vars(order.begin(), order.end());
    const auto run = sat::cache_sat(f, vars, cfg);
    t.add_row({name, cell(core::cut_width(hg, order)), cell(mean, 1),
               run.status == sat::SolveStatus::kUnknown
                   ? ">5e6"
                   : cell(run.stats.nodes),
               cell(run.stats.cache_hits)});
  }
  t.print(std::cout);

  std::cout << "\ntip: try './width_explorer tree', 'cellular', 'parity', "
               "'random', 'example'.\n";
  return 0;
}
