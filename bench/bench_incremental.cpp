// Extension bench: per-fault encoding (TEGUS, as the paper analyzes) vs
// incremental shared-miter SAT-ATPG (the modern successor).
//
// The paper's Figure 1 engine re-encodes per fault; modern engines encode
// once with fault selects and solve each fault under assumptions, reusing
// learned clauses. This bench quantifies the trade on the synthetic
// suites: encode time amortization and learned-clause reuse vs the larger
// shared instance. Agreement is asserted fault-by-fault.
#include <iostream>

#include "bench_common.hpp"
#include "fault/incremental.hpp"
#include "fault/tegus.hpp"
#include "gen/suites.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace cwatpg;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Per-fault vs incremental SAT-ATPG",
                "extension: the successor of the paper's TEGUS setting");

  gen::SuiteOptions opts;
  opts.scale = args.scale;
  opts.seed = args.seed;

  Table t({"circuit", "stem faults", "per-fault ms", "incremental ms",
           "speedup", "mismatches"});
  double total_per_fault = 0, total_incremental = 0;
  for (const net::Network& n : gen::iscas85_like_suite(opts)) {
    const auto all = fault::collapsed_fault_list(n);
    std::vector<fault::StuckAtFault> stems;
    for (const auto& f : all)
      if (f.is_stem()) stems.push_back(f);

    Timer timer;
    std::vector<bool> ref_testable(stems.size());
    for (std::size_t i = 0; i < stems.size(); ++i) {
      fault::Pattern test;
      const auto outcome = fault::generate_test(n, stems[i], {}, test);
      ref_testable[i] = outcome.status == fault::FaultStatus::kDetected;
    }
    const double per_fault_ms = timer.millis();

    timer.reset();
    const auto outcomes = fault::run_atpg_incremental(n, stems);
    const double incremental_ms = timer.millis();

    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < stems.size(); ++i) {
      const bool inc_testable =
          outcomes[i].status == sat::SolveStatus::kSat;
      // Unreachable faults: per-fault reports kUnreachable (counted as
      // untestable here), incremental reports UNSAT — both "not testable".
      if (inc_testable != ref_testable[i]) ++mismatches;
    }

    t.add_row({n.name(), cell(stems.size()), cell(per_fault_ms, 0),
               cell(incremental_ms, 0),
               cell(per_fault_ms / std::max(incremental_ms, 0.01), 1) + "x",
               cell(mismatches)});
    total_per_fault += per_fault_ms;
    total_incremental += incremental_ms;
  }
  t.print(std::cout);
  std::cout << "\ntotals: per-fault " << cell(total_per_fault, 0)
            << " ms vs incremental " << cell(total_incremental, 0)
            << " ms\n";
  std::cout << "\nreading: one shared encoding amortizes construction and "
               "lets conflict clauses (largely copy-equivalence facts) "
               "transfer across faults; the per-fault flow wins when cones "
               "are tiny relative to the whole circuit. Mismatches must be "
               "0.\n";
  return 0;
}
