// Extension bench: per-fault encoding (TEGUS, as the paper analyzes) vs
// incremental shared-miter SAT-ATPG (the modern successor), both run
// through the shared pipeline as first-class engines.
//
// The paper's Figure 1 engine re-encodes per fault; the incremental engine
// encodes once with fault selects and solves each fault under assumptions,
// reusing learnt clauses. This bench quantifies the trade on both
// synthetic suites: amortized encode cost and learnt-clause reuse vs the
// larger shared instance. Classification agreement is asserted
// fault-by-fault, and solver effort is attributed honestly: faults the
// incremental run had to hand to the escalation ladder (fresh per-fault
// CNF or PODEM) are counted in a separate fallback column, never folded
// into the incremental one.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "bench_report.hpp"
#include "fault/incremental.hpp"
#include "fault/parallel_atpg.hpp"
#include "fault/tegus.hpp"
#include "gen/suites.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

/// Effort split of one incremental run: queries the shared miter answered
/// itself vs faults that fell back to the escalation ladder.
struct Attribution {
  cwatpg::sat::SolverStats incremental;  ///< kIncremental outcomes only
  std::size_t incremental_solves = 0;
  std::size_t fallback_solves = 0;  ///< kSat/kSatRetry/kPodem outcomes
};

Attribution attribute(const cwatpg::fault::AtpgResult& r) {
  using cwatpg::fault::SolveEngine;
  Attribution a;
  for (const cwatpg::fault::FaultOutcome& o : r.outcomes) {
    if (o.engine == SolveEngine::kIncremental) {
      a.incremental += o.solver_stats;
      ++a.incremental_solves;
    } else if (o.engine != SolveEngine::kNone) {
      ++a.fallback_solves;
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cwatpg;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Per-fault vs incremental SAT-ATPG",
                "extension: the successor of the paper's TEGUS setting");

  gen::SuiteOptions suite_opts;
  suite_opts.scale = args.scale;
  suite_opts.seed = args.seed;

  Table t({"circuit", "faults", "per-fault ms", "incremental ms", "speedup",
           "reuse rate", "fallbacks", "mismatches"});
  double total_per_fault = 0, total_incremental = 0;
  std::uint64_t total_reused = 0, total_propagations = 0;
  std::size_t total_fallbacks = 0, total_mismatches = 0;
  std::vector<obs::RunReport> reports;
  obs::Json circuits = obs::Json::array();

  // One run per (circuit, engine). Dropping is disabled so the comparison
  // is one SAT query per fault for both engines — the random phase would
  // otherwise hide the solve-time difference behind shared simulation.
  const auto run_engine = [&](const net::Network& n,
                              fault::AtpgEngine engine, double& wall_ms) {
    fault::AtpgOptions opts;
    opts.seed = args.seed;
    opts.random_blocks = 0;
    opts.drop_by_simulation = false;
    opts.engine = engine;
    const char* engine_name = fault::to_string(engine);
    Timer timer;
    fault::AtpgResult r;
    obs::ReportOptions ropts;
    ropts.label = std::string(engine_name) + "/" + n.name();
    ropts.seed = args.seed;
    ropts.engine = engine_name;
    fault::ParallelStats pstats;
    if (args.threads > 1) {
      fault::ParallelAtpgOptions popts;
      popts.base = opts;
      popts.num_threads = args.threads;
      r = fault::run_atpg_parallel(n, popts, &pstats);
      ropts.engine = std::string("parallel-") + engine_name;
      ropts.threads = args.threads;
      ropts.parallel = &pstats;
    } else {
      r = fault::run_atpg(n, opts);
    }
    wall_ms = timer.millis();
    reports.push_back(obs::build_run_report(n, r, ropts));
    return r;
  };

  const auto run_circuit = [&](const net::Network& n) {
    double per_fault_ms = 0, incremental_ms = 0;
    const fault::AtpgResult ref =
        run_engine(n, fault::AtpgEngine::kPerFault, per_fault_ms);
    const fault::AtpgResult inc =
        run_engine(n, fault::AtpgEngine::kIncremental, incremental_ms);

    // With dropping disabled both engines classify the identical collapsed
    // list; any status divergence is a bug, not noise.
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < ref.outcomes.size(); ++i)
      if (ref.outcomes[i].status != inc.outcomes[i].status) ++mismatches;

    const Attribution a = attribute(inc);
    const double reuse_rate =
        a.incremental.propagations > 0
            ? static_cast<double>(a.incremental.reused_implications) /
                  static_cast<double>(a.incremental.propagations)
            : 0.0;

    t.add_row({n.name(), cell(ref.outcomes.size()), cell(per_fault_ms, 0),
               cell(incremental_ms, 0),
               cell(per_fault_ms / std::max(incremental_ms, 0.01), 1) + "x",
               cell(reuse_rate, 3), cell(a.fallback_solves),
               cell(mismatches)});
    total_per_fault += per_fault_ms;
    total_incremental += incremental_ms;
    total_reused += a.incremental.reused_implications;
    total_propagations += a.incremental.propagations;
    total_fallbacks += a.fallback_solves;
    total_mismatches += mismatches;

    obs::Json c = obs::Json::object();
    c["circuit"] = n.name();
    c["faults"] = static_cast<std::uint64_t>(ref.outcomes.size());
    c["per_fault_ms"] = per_fault_ms;
    c["incremental_ms"] = incremental_ms;
    c["reuse_rate"] = reuse_rate;
    c["reused_implications"] = a.incremental.reused_implications;
    c["incremental_solves"] =
        static_cast<std::uint64_t>(a.incremental_solves);
    c["fallback_solves"] = static_cast<std::uint64_t>(a.fallback_solves);
    c["mismatches"] = static_cast<std::uint64_t>(mismatches);
    circuits.push_back(std::move(c));
  };

  for (const net::Network& n : gen::iscas85_like_suite(suite_opts))
    run_circuit(n);
  for (const net::Network& n : gen::mcnc_like_suite(suite_opts))
    run_circuit(n);

  t.print(std::cout);
  const double overall_reuse =
      total_propagations > 0
          ? static_cast<double>(total_reused) /
                static_cast<double>(total_propagations)
          : 0.0;
  std::cout << "\ntotals: per-fault " << cell(total_per_fault, 0)
            << " ms vs incremental " << cell(total_incremental, 0)
            << " ms; reuse rate " << cell(overall_reuse, 3) << "; fallbacks "
            << total_fallbacks << "; mismatches " << total_mismatches
            << "\n";
  std::cout << "\nreading: one shared encoding amortizes construction and "
               "lets conflict clauses (largely copy-equivalence facts) "
               "transfer across faults; the per-fault flow wins when cones "
               "are tiny relative to the whole circuit. The fallback column "
               "is solver effort spent OUTSIDE the shared miter (escalation "
               "ladder) and is excluded from the reuse rate. Mismatches "
               "must be 0.\n";

  obs::Json extra = obs::Json::object();
  extra["reuse_rate"] = overall_reuse;
  extra["reused_implications"] = total_reused;
  extra["fallback_solves"] = static_cast<std::uint64_t>(total_fallbacks);
  extra["mismatches"] = static_cast<std::uint64_t>(total_mismatches);
  extra["per_fault_ms"] = total_per_fault;
  extra["incremental_ms"] = total_incremental;
  extra["circuits"] = std::move(circuits);
  if (!bench::emit_report("bench_incremental", args, reports,
                          std::move(extra)))
    return 1;
  return total_mismatches == 0 ? 0 : 1;
}
