// Figure 8(b): cut-width results for the ISCAS85 benchmarks.
//
// Paper setup: 9 ISCAS85 circuits (C3540 and C6288 excluded for MLA
// limitations), same per-fault measurement as Figure 8(a). Here the suite
// is the 9-member ISCAS85-like synthetic suite (see DESIGN.md §1).
#include "fig8_common.hpp"
#include "gen/suites.hpp"

int main(int argc, char** argv) {
  using namespace cwatpg;
  bench::BenchArgs defaults;
  defaults.stride = 4;
  const bench::BenchArgs args = bench::parse_args(argc, argv, defaults);
  bench::banner("Figure 8(b): cut-width vs C_psi^sub size, ISCAS85-like",
                "paper Fig. 8(b) — 9 circuits, log fit wins");
  gen::SuiteOptions opts;
  opts.scale = args.scale;
  opts.seed = args.seed;
  if (!bench::run_fig8(gen::iscas85_like_suite(opts), "ISCAS85-like suite",
                       args.stride, args.csv))
    return 1;
  return 0;
}
