// Service throughput: the cwatpg.rpc/1 daemon under a mixed request load.
//
// Drives an in-process svc::Server over an in-memory duplex transport —
// the same Server + Transport path cwatpg_serve binds to stdin/stdout, so
// the numbers measure the real admission/dispatch/response pipeline, not a
// test shortcut. The workload replays a deterministic trace of run_atpg
// and fsim jobs (mixed priorities and seeds) against a handful of
// registered circuits, with periodic cancels racing live jobs, and reports
// sustained requests/second plus the server's own queue/registry counters.
//
//   --scale=F     trace length multiplier (default workload ~ a few
//                 hundred requests)
//   --threads=N   server job workers: 1 = default, 0 = auto, N > 1 = pool
//   --seed=S      varies the per-job ATPG seeds (never the trace shape)
//   --json=FILE   canonical bench report; `runs` holds the RunReport every
//                 served run_atpg response carried, so served work is
//                 diffable against direct-engine bench artifacts
#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_report.hpp"
#include "gen/structured.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/decompose.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "svc/proto.hpp"
#include "svc/server.hpp"
#include "svc/transport.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace cwatpg;

obs::Json request_json(std::uint64_t id, const char* kind, obs::Json params) {
  obs::Json j = obs::Json::object();
  j["schema"] = svc::kRpcSchema;
  j["id"] = id;
  j["kind"] = kind;
  j["params"] = std::move(params);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs defaults;
  defaults.scale = 0.35;
  const bench::BenchArgs args = bench::parse_args(argc, argv, defaults);
  bench::banner("service throughput — ATPG-as-a-service under mixed load",
                "serving-layer companion to the paper's \"ATPG is easy in "
                "practice\" claim: easy per-instance cost must survive "
                "scheduling, admission and transport");

  svc::ServerOptions sopts;
  sopts.threads = args.threads;
  sopts.queue_capacity = 64;
  svc::Server server(sopts);
  svc::DuplexPair pair = svc::make_duplex();
  std::thread serve_loop([&] { server.serve(*pair.server); });
  svc::Transport& client = *pair.client;

  // ---- register the circuit mix ------------------------------------------
  const std::vector<net::Network> circuits = {
      net::decompose(gen::comparator(3)),
      net::decompose(gen::comparator(4)),
      net::decompose(gen::array_multiplier(4)),
  };
  std::uint64_t next_id = 1;
  std::vector<std::string> keys;
  for (const net::Network& n : circuits) {
    std::ostringstream text;
    net::write_bench(text, n);
    obs::Json params = obs::Json::object();
    params["name"] = n.name();
    params["text"] = text.str();
    client.write(request_json(next_id++, "load_circuit", std::move(params)));
    obs::Json resp;
    if (!client.read(resp) || !resp.at("ok").as_bool()) {
      std::cerr << "load_circuit failed\n";
      return 1;
    }
    keys.push_back(resp.at("result").at("circuit").at("key").as_string());
    std::cout << "registered " << n.name() << " as " << keys.back() << "\n";
  }

  // ---- replay the trace ---------------------------------------------------
  const std::size_t total_jobs = std::max<std::size_t>(
      16, static_cast<std::size_t>(600 * args.scale));
  std::cout << "\nreplaying " << total_jobs << " jobs on "
            << server.threads() << " worker(s)...\n";

  std::size_t sent_jobs = 0, sent_cancels = 0;
  std::vector<std::uint64_t> outstanding;
  Timer wall;
  for (std::size_t i = 0; i < total_jobs; ++i) {
    const std::string& key = keys[i % keys.size()];
    obs::Json params = obs::Json::object();
    params["circuit"] = key;
    const std::uint64_t id = next_id++;
    if (i % 4 == 3) {
      obs::Json patterns = obs::Json::array();
      const std::size_t width = circuits[i % keys.size()].inputs().size();
      patterns.push_back(std::string(width, '0'));
      patterns.push_back(std::string(width, '1'));
      params["patterns"] = std::move(patterns);
      client.write(request_json(id, "fsim", std::move(params)));
    } else {
      params["seed"] = args.seed + static_cast<std::uint64_t>(i);
      params["priority"] = static_cast<std::int64_t>(i % 3) - 1;
      client.write(request_json(id, "run_atpg", std::move(params)));
    }
    outstanding.push_back(id);
    ++sent_jobs;
    if (i % 16 == 15) {
      // Race a cancel against a job submitted a moment ago.
      obs::Json cparams = obs::Json::object();
      cparams["job"] = outstanding[outstanding.size() / 2];
      client.write(request_json(next_id++, "cancel", std::move(cparams)));
      ++sent_cancels;
    }
  }

  // ---- collect every response --------------------------------------------
  std::size_t ok_atpg = 0, ok_fsim = 0, overloaded = 0, cancelled = 0,
              other_errors = 0, cancel_acks = 0;
  std::vector<obs::RunReport> reports;
  const std::size_t expected = sent_jobs + sent_cancels;
  for (std::size_t i = 0; i < expected; ++i) {
    obs::Json resp;
    if (!client.read(resp)) {
      std::cerr << "transport closed with responses outstanding\n";
      return 1;
    }
    if (!resp.at("ok").as_bool()) {
      const std::string code = resp.at("error").at("code").as_string();
      if (code == "overloaded")
        ++overloaded;
      else if (code == "cancelled")
        ++cancelled;
      else
        ++other_errors;
      continue;
    }
    const obs::Json& result = resp.at("result");
    if (result.contains("run_report")) {
      ++ok_atpg;
      reports.push_back(obs::RunReport::from_json(result.at("run_report")));
    } else if (result.contains("fsim")) {
      ++ok_fsim;
    } else {
      ++cancel_acks;  // inline cancel responses carry only job/state
    }
  }
  const double seconds = wall.seconds();

  client.write(request_json(next_id++, "shutdown", obs::Json::object()));
  obs::Json shutdown_resp;
  const bool drained = client.read(shutdown_resp) &&
                       shutdown_resp.at("ok").as_bool() &&
                       shutdown_resp.at("result").at("drained").as_bool();
  serve_loop.join();

  // ---- report -------------------------------------------------------------
  Table table({"metric", "value"});
  table.add_row({"requests", cell(expected)});
  table.add_row({"run_atpg ok", cell(ok_atpg)});
  table.add_row({"fsim ok", cell(ok_fsim)});
  table.add_row({"overloaded", cell(overloaded)});
  table.add_row({"cancelled", cell(cancelled)});
  table.add_row({"cancel acks", cell(cancel_acks)});
  table.add_row({"other errors", cell(other_errors)});
  table.add_row({"wall seconds", cell(seconds, 3)});
  table.add_row({"jobs / second", cell(sent_jobs / std::max(seconds, 1e-9), 1)});
  table.print(std::cout);

  const svc::QueueStats qstats = server.queue_stats();
  const svc::RegistryStats rstats = server.registry_stats();
  std::cout << "\nqueue: admitted " << qstats.admitted << ", rejected "
            << qstats.rejected << ", removed " << qstats.removed
            << ", max depth " << qstats.max_depth << "\n"
            << "registry: " << rstats.entries << " entries, " << rstats.hits
            << " hits, " << rstats.evictions << " evictions\n"
            << "shutdown drained: " << (drained ? "yes" : "NO") << "\n";

  if (!drained || other_errors > 0) {
    std::cerr << "service misbehaved under load\n";
    return 1;
  }

  obs::Json extra = obs::Json::object();
  extra["requests"] = static_cast<std::uint64_t>(expected);
  extra["jobs"] = static_cast<std::uint64_t>(sent_jobs);
  extra["run_atpg_ok"] = static_cast<std::uint64_t>(ok_atpg);
  extra["fsim_ok"] = static_cast<std::uint64_t>(ok_fsim);
  extra["overloaded"] = static_cast<std::uint64_t>(overloaded);
  extra["cancelled"] = static_cast<std::uint64_t>(cancelled);
  extra["wall_seconds"] = seconds;
  extra["jobs_per_second"] = sent_jobs / std::max(seconds, 1e-9);
  extra["queue"] = qstats.to_json();
  extra["registry"] = rstats.to_json();
  if (!bench::emit_report("bench_service_throughput", args, reports,
                          std::move(extra)))
    return 1;
  return 0;
}
