// Service throughput: the cwatpg.rpc/1 daemon under a mixed request load.
//
// Drives a svc::Server through either transport the real daemons use:
//
//   --transport=duplex  in-memory duplex pair — the Server + Transport
//                       path cwatpg_serve binds to stdin/stdout
//   --transport=tcp     a netio::NetServer event loop on loopback, with
//                       --clients=N concurrent TCP connections replaying
//                       independent slices of the trace
//
// The workload replays a deterministic trace of run_atpg and fsim jobs
// (mixed priorities and seeds) against a handful of registered circuits,
// with periodic cancels racing live jobs, and reports sustained
// requests/second plus the server's own queue/registry/net counters. The
// bench FAILS (nonzero exit) if any client loses a response — the
// zero-lost invariant the chaos suite asserts, here under plain load and,
// with --chaos, under lossless net.* failpoint schedules.
//
//   --scale=F       trace length multiplier (default workload ~ a few
//                   hundred requests)
//   --threads=N     server job workers: 1 = default, 0 = auto, N > 1 = pool
//   --seed=S        varies the per-job ATPG seeds (never the trace shape)
//   --clients=N     concurrent TCP clients (tcp only; default 4)
//   --chaos[=SPEC]  arm a failpoint schedule for the whole run; bare
//                   --chaos arms the default lossless net.* schedule
//                   (short reads + stalled writes)
//   --json=FILE     canonical bench report; `runs` holds the RunReport
//                   every served run_atpg response carried, so served work
//                   is diffable against direct-engine bench artifacts
#include <algorithm>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_report.hpp"
#include "gen/structured.hpp"
#include "net/net_server.hpp"
#include "net/socket.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/decompose.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "svc/proto.hpp"
#include "svc/server.hpp"
#include "svc/transport.hpp"
#include "util/failpoint.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace cwatpg;

/// Lossless by construction: short reads and periodically stalled writes
/// slow every byte down but can never drop one, so the zero-lost check
/// stays a hard assertion under it. Tearing sites (net.conn.reset,
/// net.accept.fail) belong to bench_chaos, whose invariant tolerates a
/// torn session.
constexpr const char* kDefaultNetChaos =
    "net.read.short=every:3@512;net.write.stall=every:4";

obs::Json request_json(std::uint64_t id, const char* kind, obs::Json params) {
  obs::Json j = obs::Json::object();
  j["schema"] = svc::kRpcSchema;
  j["id"] = id;
  j["kind"] = kind;
  j["params"] = std::move(params);
  return j;
}

struct TraceTally {
  std::size_t sent_jobs = 0, sent_cancels = 0;
  std::size_t ok_atpg = 0, ok_fsim = 0, overloaded = 0, cancelled = 0,
              other_errors = 0, cancel_acks = 0;
  std::size_t lost = 0;  ///< expected responses the transport never produced
  std::vector<obs::RunReport> reports;

  void merge(const TraceTally& o) {
    sent_jobs += o.sent_jobs;
    sent_cancels += o.sent_cancels;
    ok_atpg += o.ok_atpg;
    ok_fsim += o.ok_fsim;
    overloaded += o.overloaded;
    cancelled += o.cancelled;
    other_errors += o.other_errors;
    cancel_acks += o.cancel_acks;
    lost += o.lost;
    reports.insert(reports.end(), o.reports.begin(), o.reports.end());
  }
};

/// Replays one client's trace slice: registers the circuit mix (the
/// registry is content-addressed, so N clients loading the same circuits
/// share one entry), pumps `total_jobs` mixed jobs with racing cancels,
/// and accounts for every response. Ids are session-scoped, so every
/// client runs the same id sequence — which is exactly the collision the
/// per-connection routing must keep apart.
TraceTally run_trace(svc::Transport& client,
                     const std::vector<net::Network>& circuits,
                     std::size_t total_jobs, std::uint64_t seed) {
  TraceTally tally;
  std::uint64_t next_id = 1;
  std::vector<std::string> keys;
  for (const net::Network& n : circuits) {
    std::ostringstream text;
    net::write_bench(text, n);
    obs::Json params = obs::Json::object();
    params["name"] = n.name();
    params["text"] = text.str();
    client.write(request_json(next_id++, "load_circuit", std::move(params)));
    obs::Json resp;
    if (!client.read(resp) || !resp.at("ok").as_bool()) {
      ++tally.lost;
      return tally;
    }
    keys.push_back(resp.at("result").at("circuit").at("key").as_string());
  }

  std::vector<std::uint64_t> outstanding;
  for (std::size_t i = 0; i < total_jobs; ++i) {
    const std::string& key = keys[i % keys.size()];
    obs::Json params = obs::Json::object();
    params["circuit"] = key;
    const std::uint64_t id = next_id++;
    if (i % 4 == 3) {
      obs::Json patterns = obs::Json::array();
      const std::size_t width = circuits[i % keys.size()].inputs().size();
      patterns.push_back(std::string(width, '0'));
      patterns.push_back(std::string(width, '1'));
      params["patterns"] = std::move(patterns);
      client.write(request_json(id, "fsim", std::move(params)));
    } else {
      params["seed"] = seed + static_cast<std::uint64_t>(i);
      params["priority"] = static_cast<std::int64_t>(i % 3) - 1;
      client.write(request_json(id, "run_atpg", std::move(params)));
    }
    outstanding.push_back(id);
    ++tally.sent_jobs;
    if (i % 16 == 15) {
      // Race a cancel against a job submitted a moment ago.
      obs::Json cparams = obs::Json::object();
      cparams["job"] = outstanding[outstanding.size() / 2];
      client.write(request_json(next_id++, "cancel", std::move(cparams)));
      ++tally.sent_cancels;
    }
  }

  const std::size_t expected = tally.sent_jobs + tally.sent_cancels;
  for (std::size_t i = 0; i < expected; ++i) {
    obs::Json resp;
    if (!client.read(resp)) {
      tally.lost += expected - i;
      return tally;
    }
    if (!resp.at("ok").as_bool()) {
      const std::string code = resp.at("error").at("code").as_string();
      if (code == "overloaded")
        ++tally.overloaded;
      else if (code == "cancelled")
        ++tally.cancelled;
      else
        ++tally.other_errors;
      continue;
    }
    const obs::Json& result = resp.at("result");
    if (result.contains("run_report")) {
      ++tally.ok_atpg;
      tally.reports.push_back(
          obs::RunReport::from_json(result.at("run_report")));
    } else if (result.contains("fsim")) {
      ++tally.ok_fsim;
    } else {
      ++tally.cancel_acks;  // inline cancel responses carry only job/state
    }
  }
  return tally;
}

struct ExtraArgs {
  std::string transport = "duplex";
  std::size_t clients = 4;
  std::string chaos;
};

}  // namespace

int main(int argc, char** argv) {
  // Peel off this bench's own flags; everything else goes to the shared
  // parser (which rejects unknowns).
  ExtraArgs extra_args;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--transport=", 0) == 0) {
      extra_args.transport = arg.substr(12);
      if (extra_args.transport != "duplex" && extra_args.transport != "tcp") {
        std::cerr << "unknown transport: " << extra_args.transport
                  << " (expected duplex|tcp)\n";
        return 2;
      }
    } else if (arg.rfind("--clients=", 0) == 0) {
      extra_args.clients = static_cast<std::size_t>(
          std::max(1L, std::atol(arg.c_str() + 10)));
    } else if (arg == "--chaos") {
      extra_args.chaos = kDefaultNetChaos;
    } else if (arg.rfind("--chaos=", 0) == 0) {
      extra_args.chaos = arg.substr(8);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  bench::BenchArgs defaults;
  defaults.scale = 0.35;
  const bench::BenchArgs args = bench::parse_args(
      static_cast<int>(passthrough.size()), passthrough.data(), defaults);
  bench::banner("service throughput — ATPG-as-a-service under mixed load",
                "serving-layer companion to the paper's \"ATPG is easy in "
                "practice\" claim: easy per-instance cost must survive "
                "scheduling, admission and transport");

  const bool tcp = extra_args.transport == "tcp";
  const std::size_t clients = tcp ? extra_args.clients : 1;
  if (!extra_args.chaos.empty() && !fp::kEnabled)
    std::cout << "(built with CWATPG_FAILPOINTS=OFF — --chaos ignored)\n";
  std::unique_ptr<fp::ScheduleScope> chaos;
  if (!extra_args.chaos.empty() && fp::kEnabled) {
    chaos = std::make_unique<fp::ScheduleScope>(extra_args.chaos);
    std::cout << "chaos schedule: " << extra_args.chaos << "\n";
  }

  svc::ServerOptions sopts;
  sopts.threads = args.threads;
  sopts.queue_capacity = 64;
  svc::Server server(sopts);

  const std::vector<net::Network> circuits = {
      net::decompose(gen::comparator(3)),
      net::decompose(gen::comparator(4)),
      net::decompose(gen::array_multiplier(4)),
  };
  const std::size_t total_jobs = std::max<std::size_t>(
      16, static_cast<std::size_t>(600 * args.scale));
  const std::size_t jobs_per_client =
      std::max<std::size_t>(4, total_jobs / clients);
  std::cout << "replaying " << jobs_per_client << " jobs x " << clients
            << " client(s) over " << extra_args.transport << " on "
            << server.threads() << " worker(s)...\n";

  TraceTally tally;
  bool drained = false;
  Timer wall;
  double seconds = 0;

  if (tcp) {
    netio::NetServerOptions nopts;
    nopts.max_connections = clients + 1;  // trace clients + shutdown conn
    netio::NetServer net_server(server, nopts);
    std::thread loop([&] { net_server.run(); });
    const std::uint16_t port = net_server.port();

    std::mutex merge_mutex;
    std::vector<std::thread> workers;
    for (std::size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        netio::SocketTransport transport(netio::tcp_connect("127.0.0.1", port));
        TraceTally t = run_trace(transport, circuits, jobs_per_client,
                                 args.seed + 1000 * c);
        std::lock_guard<std::mutex> lock(merge_mutex);
        tally.merge(t);
      });
    }
    for (std::thread& w : workers) w.join();
    seconds = wall.seconds();

    // One last connection asks the daemon to drain and watches it go.
    netio::SocketTransport transport(netio::tcp_connect("127.0.0.1", port));
    transport.write(request_json(1, "shutdown", obs::Json::object()));
    obs::Json resp;
    drained = transport.read(resp) && resp.at("ok").as_bool() &&
              resp.at("result").at("drained").as_bool();
    loop.join();
  } else {
    svc::DuplexPair pair = svc::make_duplex();
    std::thread serve_loop([&] { server.serve(*pair.server); });
    tally = run_trace(*pair.client, circuits, jobs_per_client, args.seed);
    seconds = wall.seconds();
    pair.client->write(request_json(100000, "shutdown", obs::Json::object()));
    obs::Json resp;
    drained = pair.client->read(resp) && resp.at("ok").as_bool() &&
              resp.at("result").at("drained").as_bool();
    serve_loop.join();
  }

  const std::size_t expected = tally.sent_jobs + tally.sent_cancels;
  Table table({"metric", "value"});
  table.add_row({"requests", cell(expected)});
  table.add_row({"run_atpg ok", cell(tally.ok_atpg)});
  table.add_row({"fsim ok", cell(tally.ok_fsim)});
  table.add_row({"overloaded", cell(tally.overloaded)});
  table.add_row({"cancelled", cell(tally.cancelled)});
  table.add_row({"cancel acks", cell(tally.cancel_acks)});
  table.add_row({"other errors", cell(tally.other_errors)});
  table.add_row({"lost", cell(tally.lost)});
  table.add_row({"wall seconds", cell(seconds, 3)});
  table.add_row(
      {"jobs / second", cell(tally.sent_jobs / std::max(seconds, 1e-9), 1)});
  table.print(std::cout);

  const svc::QueueStats qstats = server.queue_stats();
  const svc::RegistryStats rstats = server.registry_stats();
  std::cout << "\nqueue: admitted " << qstats.admitted << ", rejected "
            << qstats.rejected << ", removed " << qstats.removed
            << ", max depth " << qstats.max_depth << "\n"
            << "registry: " << rstats.entries << " entries, " << rstats.hits
            << " hits, " << rstats.evictions << " evictions\n";
  if (tcp) {
    const auto counters = server.metrics().snapshot().counters;
    const auto count = [&](const char* name) {
      const auto it = counters.find(name);
      return it == counters.end() ? std::uint64_t(0) : it->second;
    };
    std::cout << "net: " << count("net.conns.accepted") << " conns, "
              << count("net.bytes.in") << " bytes in, "
              << count("net.bytes.out") << " bytes out\n";
  }
  std::cout << "shutdown drained: " << (drained ? "yes" : "NO") << "\n";

  if (!drained || tally.other_errors > 0 || tally.lost > 0) {
    std::cerr << "service misbehaved under load (" << tally.lost
              << " lost, " << tally.other_errors << " unexpected errors, "
              << "drained=" << drained << ")\n";
    return 1;
  }

  obs::Json extra = obs::Json::object();
  extra["transport"] = extra_args.transport;
  extra["clients"] = static_cast<std::uint64_t>(clients);
  extra["chaos"] = extra_args.chaos;
  extra["requests"] = static_cast<std::uint64_t>(expected);
  extra["jobs"] = static_cast<std::uint64_t>(tally.sent_jobs);
  extra["run_atpg_ok"] = static_cast<std::uint64_t>(tally.ok_atpg);
  extra["fsim_ok"] = static_cast<std::uint64_t>(tally.ok_fsim);
  extra["overloaded"] = static_cast<std::uint64_t>(tally.overloaded);
  extra["cancelled"] = static_cast<std::uint64_t>(tally.cancelled);
  extra["lost"] = static_cast<std::uint64_t>(tally.lost);
  extra["wall_seconds"] = seconds;
  extra["jobs_per_second"] = tally.sent_jobs / std::max(seconds, 1e-9);
  extra["queue"] = qstats.to_json();
  extra["registry"] = rstats.to_json();
  std::vector<obs::RunReport> reports = std::move(tally.reports);
  if (!bench::emit_report("bench_service_throughput", args, reports,
                          std::move(extra)))
    return 1;
  return 0;
}
