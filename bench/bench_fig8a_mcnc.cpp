// Figure 8(a): cut-width results for the MCNC91 logic benchmarks.
//
// Paper setup: 48 MCNC91 "logic" circuits (t481 excluded as degenerate),
// mapped to <=3-input AND/OR gates with inverters by SIS tech_decomp; one
// datapoint per fault measuring the approximate cut-width of C_psi^sub
// against its size; a logarithmic curve gives the best least-squares fit.
// Here the suite is the 48-member MCNC-like synthetic suite (see
// DESIGN.md §1 for the substitution argument).
#include "fig8_common.hpp"
#include "gen/suites.hpp"

int main(int argc, char** argv) {
  using namespace cwatpg;
  bench::BenchArgs defaults;
  defaults.stride = 3;
  const bench::BenchArgs args = bench::parse_args(argc, argv, defaults);
  bench::banner("Figure 8(a): cut-width vs C_psi^sub size, MCNC91-like",
                "paper Fig. 8(a) — 48 logic circuits, log fit wins");
  gen::SuiteOptions opts;
  opts.scale = args.scale;
  opts.seed = args.seed;
  if (!bench::run_fig8(gen::mcnc_like_suite(opts), "MCNC91-like suite",
                       args.stride, args.csv))
    return 1;
  return 0;
}
