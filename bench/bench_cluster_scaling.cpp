// Cluster scaling: the sharded coordinator over 1, 2 and 4 workers.
//
// Builds an in-process cluster — svc::Cluster over worker svc::Servers,
// every hop on a byte-level duplex (real cwatpg.rpc/1 frame encode/decode
// on both sides, the same bytes the spawned-process topology ships over
// pipes) — and runs the same ATPG jobs on the two largest ISCAS85-like
// suite members at each worker count. Reports per-count wall-clock,
// speedup over the 1-worker cluster, shard/redispatch counters, and
// verifies the merged classification is IDENTICAL across worker counts
// (the cluster's determinism contract; a mismatch fails the bench).
//
//   --scale=F     suite scale (default 0.25 keeps the smoke run quick)
//   --seed=S      ATPG seed forwarded to every job
//   --json=FILE   canonical bench report; extra.configs carries the
//                 per-worker-count wall/speedup/shards/redispatched rows
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_report.hpp"
#include "gen/suites.hpp"
#include "netlist/bench_io.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "svc/cluster.hpp"
#include "svc/proto.hpp"
#include "svc/server.hpp"
#include "svc/transport.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace cwatpg;

obs::Json request_json(std::uint64_t id, const char* kind, obs::Json params) {
  obs::Json j = obs::Json::object();
  j["schema"] = svc::kRpcSchema;
  j["id"] = id;
  j["kind"] = kind;
  j["params"] = std::move(params);
  return j;
}

struct ConfigResult {
  std::size_t workers = 0;
  double wall_seconds = 0.0;
  std::uint64_t shards = 0;
  std::uint64_t redispatched = 0;
  /// Classification signature per circuit: totals + the test set, dumped;
  /// must be identical across worker counts.
  std::vector<std::string> signatures;
  std::vector<obs::RunReport> reports;
};

/// Runs every circuit once through a fresh `workers`-wide cluster.
ConfigResult run_config(std::size_t workers,
                        const std::vector<net::Network>& circuits,
                        std::uint64_t seed) {
  ConfigResult out;
  out.workers = workers;

  std::vector<std::unique_ptr<svc::Server>> servers;
  std::vector<std::unique_ptr<svc::Transport>> server_sides;
  std::vector<std::thread> server_loops;
  std::vector<svc::Cluster::WorkerEndpoint> endpoints;
  for (std::size_t i = 0; i < workers; ++i) {
    svc::DuplexPair pair = svc::make_byte_duplex();
    svc::ServerOptions sopts;
    sopts.threads = 1;
    servers.push_back(std::make_unique<svc::Server>(sopts));
    svc::Server* server = servers.back().get();
    svc::Transport* side = pair.server.get();
    server_sides.push_back(std::move(pair.server));
    server_loops.emplace_back([server, side] { server->serve(*side); });
    svc::Cluster::WorkerEndpoint e;
    e.transport = std::move(pair.client);
    e.name = "w" + std::to_string(i);
    endpoints.push_back(std::move(e));
  }

  svc::ClusterOptions copts;
  copts.shard_size = 64;
  svc::Cluster cluster(std::move(endpoints), copts);
  svc::DuplexPair front = svc::make_byte_duplex();
  std::thread cluster_loop([&] { cluster.serve(*front.server); });
  svc::Transport& client = *front.client;

  std::uint64_t next_id = 1;
  Timer wall;
  for (const net::Network& n : circuits) {
    std::ostringstream text;
    net::write_bench(text, n);
    obs::Json load = obs::Json::object();
    load["name"] = n.name();
    load["text"] = text.str();
    client.write(request_json(next_id++, "load_circuit", std::move(load)));
    obs::Json resp;
    if (!client.read(resp) || !resp.at("ok").as_bool())
      throw std::runtime_error("load_circuit failed: " + resp.dump());
    const std::string key =
        resp.at("result").at("circuit").at("key").as_string();

    obs::Json params = obs::Json::object();
    params["circuit"] = key;
    params["seed"] = seed;
    client.write(request_json(next_id++, "run_atpg", std::move(params)));
    if (!client.read(resp) || !resp.at("ok").as_bool())
      throw std::runtime_error("run_atpg failed: " + resp.dump());
    const obs::Json& result = resp.at("result");

    obs::Json sig = obs::Json::object();
    sig["circuit"] = n.name();
    sig["num_detected"] = result.at("num_detected").as_u64();
    sig["num_untestable"] = result.at("num_untestable").as_u64();
    sig["num_aborted"] = result.at("num_aborted").as_u64();
    sig["num_undetermined"] = result.at("num_undetermined").as_u64();
    sig["tests"] = result.at("tests");
    out.signatures.push_back(sig.dump());
    out.shards += result.at("cluster").at("shards").as_u64();
    out.redispatched += result.at("cluster").at("redispatched").as_u64();
    out.reports.push_back(
        obs::RunReport::from_json(result.at("run_report")));
  }
  out.wall_seconds = wall.seconds();

  client.write(request_json(next_id++, "shutdown", obs::Json::object()));
  obs::Json shutdown_resp;
  if (!client.read(shutdown_resp) ||
      !shutdown_resp.at("result").at("drained").as_bool())
    throw std::runtime_error("cluster failed to drain");
  front.client->close();
  cluster_loop.join();
  for (std::thread& t : server_loops) t.join();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs defaults;
  defaults.scale = 0.25;
  const bench::BenchArgs args = bench::parse_args(argc, argv, defaults);
  bench::banner("cluster scaling — sharded ATPG over 1/2/4 workers",
                "the paper's easy-in-practice claim, fleet edition: if "
                "per-fault instances are easy, fault-partitioned workers "
                "should scale the wall clock without touching the result");

  // The two largest suite members: the shard queue is only interesting
  // when one circuit yields many shards.
  gen::SuiteOptions sopts;
  sopts.scale = args.scale;
  sopts.seed = args.seed;
  std::vector<net::Network> suite = gen::iscas85_like_suite(sopts);
  std::sort(suite.begin(), suite.end(),
            [](const net::Network& a, const net::Network& b) {
              return a.gate_count() > b.gate_count();
            });
  suite.resize(std::min<std::size_t>(2, suite.size()));
  for (const net::Network& n : suite)
    std::cout << "circuit " << n.name() << ": " << n.gate_count()
              << " gates, " << n.inputs().size() << " inputs\n";

  std::vector<ConfigResult> configs;
  for (const std::size_t workers : {std::size_t(1), std::size_t(2),
                                    std::size_t(4)}) {
    std::cout << "\nrunning " << workers << "-worker cluster...\n";
    configs.push_back(run_config(workers, suite, args.seed));
  }

  // Determinism gate: identical classification at every worker count.
  bool identical = true;
  for (const ConfigResult& c : configs) {
    for (std::size_t i = 0; i < c.signatures.size(); ++i) {
      if (c.signatures[i] != configs[0].signatures[i]) {
        identical = false;
        std::cerr << "MISMATCH: " << c.workers << "-worker result for "
                  << suite[i].name() << " differs from 1-worker result\n";
      }
    }
  }

  Table table({"workers", "wall s", "speedup", "shards", "redispatched"});
  const double base = configs[0].wall_seconds;
  for (const ConfigResult& c : configs)
    table.add_row({cell(c.workers), cell(c.wall_seconds, 3),
                   cell(base / std::max(c.wall_seconds, 1e-9), 2),
                   cell(c.shards), cell(c.redispatched)});
  table.print(std::cout);
  std::cout << "classification identical across worker counts: "
            << (identical ? "yes" : "NO") << "\n";
  if (!identical) return 1;

  obs::Json extra = obs::Json::object();
  obs::Json rows = obs::Json::array();
  std::vector<obs::RunReport> reports;
  for (const ConfigResult& c : configs) {
    obs::Json row = obs::Json::object();
    row["workers"] = static_cast<std::uint64_t>(c.workers);
    row["wall_seconds"] = c.wall_seconds;
    row["speedup"] = base / std::max(c.wall_seconds, 1e-9);
    row["shards"] = c.shards;
    row["redispatched"] = c.redispatched;
    rows.push_back(std::move(row));
    for (const obs::RunReport& r : c.reports) reports.push_back(r);
  }
  extra["configs"] = std::move(rows);
  extra["classification_identical"] = identical;
  if (!bench::emit_report("bench_cluster_scaling", args, reports,
                          std::move(extra)))
    return 1;
  return 0;
}
