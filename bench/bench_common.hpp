// Shared plumbing for the experiment harnesses (one binary per paper
// figure — see DESIGN.md §3). Each binary runs standalone with defaults
// sized to finish in tens of seconds; pass --scale=<f> to grow or shrink
// the workload (1.0 approximates paper-scale circuits) and --stride=<n>
// to subsample fault sites.
#pragma once

#include <cstdio>
#include <fstream>
#include <vector>
#include <cstdlib>
#include <iostream>
#include <string>

namespace cwatpg::bench {

struct BenchArgs {
  double scale = 0.35;   ///< suite size multiplier
  std::size_t stride = 1;  ///< take every stride-th fault site
  std::uint64_t seed = 99;
  /// ATPG worker threads: 0 = serial engine, N >= 1 = run_atpg_parallel
  /// with an N-worker pool (classification is byte-identical either way).
  std::size_t threads = 0;
  std::string csv;  ///< when set, raw datapoints are also written here
};

inline BenchArgs parse_args(int argc, char** argv,
                            BenchArgs defaults = {}) {
  BenchArgs args = defaults;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      args.scale = std::atof(arg.c_str() + 8);
    } else if (arg.rfind("--stride=", 0) == 0) {
      args.stride = static_cast<std::size_t>(
          std::max(1L, std::atol(arg.c_str() + 9)));
    } else if (arg.rfind("--seed=", 0) == 0) {
      args.seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--threads=", 0) == 0) {
      args.threads = static_cast<std::size_t>(
          std::max(0L, std::atol(arg.c_str() + 10)));
    } else if (arg.rfind("--csv=", 0) == 0) {
      args.csv = arg.substr(6);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--scale=F] [--stride=N] [--seed=S] [--threads=N]"
                   " [--csv=FILE]\n";
      std::exit(0);
    }
  }
  return args;
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "reproduces: " << paper_ref << "\n\n";
}

/// Writes (x, y) scatter points as CSV for external plotting. Silently
/// does nothing when `path` is empty; reports failures to stderr without
/// aborting the bench.
inline void write_csv(const std::string& path, const std::string& x_name,
                      const std::string& y_name,
                      const std::vector<double>& xs,
                      const std::vector<double>& ys) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write csv: " << path << "\n";
    return;
  }
  out << x_name << "," << y_name << "\n";
  for (std::size_t i = 0; i < xs.size() && i < ys.size(); ++i)
    out << xs[i] << "," << ys[i] << "\n";
  std::cout << "(raw datapoints written to " << path << ")\n";
}

}  // namespace cwatpg::bench
