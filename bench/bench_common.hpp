// Shared plumbing for the experiment harnesses (one binary per paper
// figure — see DESIGN.md §3). Each binary runs standalone with defaults
// sized to finish in tens of seconds; pass --scale=<f> to grow or shrink
// the workload (1.0 approximates paper-scale circuits) and --stride=<n>
// to subsample fault sites.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "util/threadpool.hpp"

namespace cwatpg::bench {

struct BenchArgs {
  double scale = 0.35;   ///< suite size multiplier
  std::size_t stride = 1;  ///< take every stride-th fault site
  std::uint64_t seed = 99;
  /// ATPG worker threads: 1 (the default) = serial engine, N > 1 =
  /// run_atpg_parallel with an N-worker pool (classification is
  /// byte-identical either way). `--threads=0` means "auto" and is
  /// resolved to hardware concurrency by parse_args via the shared
  /// ThreadPool::resolve_thread_count helper, so benches never see 0.
  std::size_t threads = 1;
  /// Solve engine: "per-fault" (the default — fresh miter/CNF per fault,
  /// TEGUS as the paper analyzes) or "incremental" (one shared
  /// select-instrumented miter queried under assumptions with learnt-
  /// clause reuse). Benches that honor the knob map it onto
  /// fault::AtpgEngine; parse_args rejects anything else.
  std::string engine = "per-fault";
  std::string csv;   ///< when set, raw datapoints are also written here
  /// When set, the bench writes its canonical JSON report (schema
  /// "cwatpg.bench_report/1" wrapping per-run RunReports) here — see
  /// bench_report.hpp / emit_report().
  std::string json;
};

inline void print_usage(std::ostream& out, const char* argv0) {
  out << "usage: " << argv0
      << " [--scale=F] [--stride=N] [--seed=S] [--threads=N]"
         " [--engine=per-fault|incremental] [--csv=FILE] [--json=FILE]\n"
         "  --threads: 1 = serial engine (default), 0 = auto (hardware"
         " concurrency), N > 1 = parallel engine\n"
         "  --engine: per-fault (default) re-encodes per fault;"
         " incremental queries one shared miter under assumptions\n";
}

/// Parses the shared bench flags. Unknown arguments are an error: usage
/// goes to stderr and the process exits with status 2, so a typo'd flag
/// (--sacle=2) can never silently run the default workload and pollute a
/// collected perf trajectory.
inline BenchArgs parse_args(int argc, char** argv,
                            BenchArgs defaults = {}) {
  BenchArgs args = defaults;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      args.scale = std::atof(arg.c_str() + 8);
    } else if (arg.rfind("--stride=", 0) == 0) {
      args.stride = static_cast<std::size_t>(
          std::max(1L, std::atol(arg.c_str() + 9)));
    } else if (arg.rfind("--seed=", 0) == 0) {
      args.seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--threads=", 0) == 0) {
      args.threads = ThreadPool::resolve_thread_count(static_cast<std::size_t>(
          std::max(0L, std::atol(arg.c_str() + 10))));
    } else if (arg.rfind("--engine=", 0) == 0) {
      args.engine = arg.substr(9);
      if (args.engine != "per-fault" && args.engine != "incremental") {
        std::cerr << "unknown engine: " << args.engine << "\n";
        print_usage(std::cerr, argv[0]);
        std::exit(2);
      }
    } else if (arg.rfind("--csv=", 0) == 0) {
      args.csv = arg.substr(6);
    } else if (arg.rfind("--json=", 0) == 0) {
      args.json = arg.substr(7);
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout, argv[0]);
      std::exit(0);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      print_usage(std::cerr, argv[0]);
      std::exit(2);
    }
  }
  return args;
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "reproduces: " << paper_ref << "\n\n";
}

/// Writes (x, y) scatter points as CSV for external plotting. Returns
/// false (after reporting to stderr) when the file cannot be opened or a
/// write fails, so benches can propagate a bad --csv= path as a nonzero
/// exit instead of reporting success with no artifact. An empty `path`
/// (flag not given) is trivially successful.
inline bool write_csv(const std::string& path, const std::string& x_name,
                      const std::string& y_name,
                      const std::vector<double>& xs,
                      const std::vector<double>& ys) {
  if (path.empty()) return true;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write csv: " << path << "\n";
    return false;
  }
  out << x_name << "," << y_name << "\n";
  for (std::size_t i = 0; i < xs.size() && i < ys.size(); ++i)
    out << xs[i] << "," << ys[i] << "\n";
  out.flush();
  if (!out) {
    std::cerr << "write failed for csv: " << path << "\n";
    return false;
  }
  std::cout << "(raw datapoints written to " << path << ")\n";
  return true;
}

}  // namespace cwatpg::bench
