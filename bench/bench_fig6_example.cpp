// Figure 6: cut-width of the example circuit under orderings A and B.
//
// Prints the full cut profile for both orderings of the Figure 4(a)
// signal hypergraph — ordering A (the minimum-cut-width order used in
// Figure 5, W=3, with the single-net "Cut Z" after {b,c,f,a,h}) and the
// alphabetical ordering B — and shows that our MLA approximation recovers
// the minimum width 3.
#include <iostream>

#include "bench_common.hpp"
#include "core/mla.hpp"
#include "gen/trees.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cwatpg;
  bench::parse_args(argc, argv);
  bench::banner("Figure 6: cut-width of the example circuit",
                "paper Fig. 6 — orderings A and B of the Fig. 4(a) circuit");

  const net::Hypergraph hg = gen::fig4a_hypergraph();
  const char* names = "abcdefghi";

  auto show = [&](const core::Ordering& order, const std::string& label) {
    std::cout << "ordering " << label << ": ";
    for (net::NodeId v : order) std::cout << names[v];
    std::cout << "\n";
    const auto profile = core::cut_profile(hg, order);
    Table t({"gap after", "open nets"});
    for (std::size_t i = 0; i < profile.size(); ++i)
      t.add_row({std::string(1, names[order[i]]), cell(profile[i])});
    t.print(std::cout);
    std::cout << "W = " << core::cut_width(hg, order) << "\n\n";
  };

  show(gen::fig4a_ordering_a(), "A (paper, W=3)");
  show(gen::fig4a_ordering_b(), "B (alphabetical)");

  std::cout << "Cut Z check (paper §4.2): after {b,c,f,a,h} exactly one net "
               "(h-i) crosses => at most 2^2 distinct sub-formulas per "
               "Lemma 4.1 (k_fo=1), versus 2^5 naive assignments.\n\n";

  const core::MlaResult m = core::mla(hg);
  std::cout << "MLA recovers W = " << m.width << "\n";
  std::cout << "note: the paper calls ordering A \"a minimum cut-width "
               "ordering\" (W=3), but exact subset-DP MLA finds W=2 — e.g. "
               "ordering b,c,f,a,h,i,g,d,e. The inequality-based results "
               "(Lemma 4.1, Thm 4.1, Lemma 4.2) are unaffected; see "
               "EXPERIMENTS.md.\n";
  return 0;
}
