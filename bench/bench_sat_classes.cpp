// §3.1: do ATPG-SAT instances fall into a polynomial SAT class?
//
// The paper's first candidate explanation — and its refutation: simple
// circuits already yield ATPG-SAT formulas outside Horn, reverse Horn,
// 2-SAT, hidden Horn, and even q-Horn. This harness classifies (a) the
// paper's worked example, (b) CIRCUIT-SAT and ATPG-SAT formulas of real
// small circuits, and (c) a sweep over suite instances, reporting the
// fraction landing in each class.
#include <iostream>

#include "bench_common.hpp"
#include "fault/atpg_circuit.hpp"
#include "gen/structured.hpp"
#include "gen/suites.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "sat/classes.hpp"
#include "sat/encode.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cwatpg;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("SAT-class membership of ATPG-SAT instances",
                "paper §3.1 — tractable classes do not explain easiness");

  // --- individual instances ---------------------------------------------------
  Table t({"formula", "vars", "clauses", "classes"});
  auto report = [&](const sat::Cnf& f, const std::string& name) {
    t.add_row({name, cell(f.num_vars()), cell(f.num_clauses()),
               sat::to_string(sat::classify(f))});
  };

  report(gen::formula41(), "Formula 4.1 (Fig 4a)");
  {
    const net::Network n = gen::fig4a_network();
    const fault::StuckAtFault psi{*n.find("f"), fault::StuckAtFault::kStem,
                                  true};
    const fault::AtpgCircuit atpg = fault::build_atpg_circuit(n, psi);
    report(sat::encode_circuit_sat(atpg.miter), "ATPG-SAT f s-a-1 (Fig 4b)");
  }
  report(sat::encode_circuit_sat(gen::c17()), "CIRCUIT-SAT c17");
  {
    const net::Network n = gen::c17();
    const fault::AtpgCircuit atpg = fault::build_atpg_circuit(
        n, {*n.find("11"), fault::StuckAtFault::kStem, true});
    report(sat::encode_circuit_sat(atpg.miter), "ATPG-SAT c17 G11/1");
  }
  {
    const net::Network n = net::decompose(gen::ripple_carry_adder(4));
    report(sat::encode_circuit_sat(n), "CIRCUIT-SAT add4");
    const auto faults = fault::collapsed_fault_list(n);
    const fault::AtpgCircuit atpg =
        fault::build_atpg_circuit(n, faults[faults.size() / 2]);
    report(sat::encode_circuit_sat(atpg.miter), "ATPG-SAT add4 mid-fault");
  }
  // Contrast: formulas that DO land in the classes.
  {
    sat::Cnf horn(3);
    horn.add_clause({sat::neg(0), sat::neg(1), sat::pos(2)});
    horn.add_clause({sat::neg(2), sat::pos(0)});
    report(horn, "hand-made Horn");
    sat::Cnf two(3);
    two.add_clause({sat::pos(0), sat::pos(1)});
    two.add_clause({sat::neg(1), sat::pos(2)});
    report(two, "hand-made 2-SAT");
  }
  t.print(std::cout);

  // --- suite sweep --------------------------------------------------------------
  gen::SuiteOptions opts;
  opts.scale = args.scale * 0.4;  // q-Horn LP is the costly part
  opts.seed = args.seed;
  std::size_t total = 0, horn = 0, hidden = 0, qhorn = 0, qhorn_checked = 0;
  for (const net::Network& n : gen::iscas85_like_suite(opts)) {
    const auto faults = fault::collapsed_fault_list(n);
    for (std::size_t i = 0; i < faults.size(); i += 7 * args.stride) {
      fault::AtpgCircuit atpg = [&]() -> fault::AtpgCircuit {
        return fault::build_atpg_circuit(n, faults[i]);
      }();
      const sat::Cnf f = sat::encode_circuit_sat(atpg.miter);
      const auto c = sat::classify(f, 260);
      ++total;
      if (c.horn || c.reverse_horn) ++horn;
      if (c.hidden_horn) ++hidden;
      if (c.qhorn_checked) {
        ++qhorn_checked;
        if (c.qhorn) ++qhorn;
      }
    }
  }
  std::cout << "\nsuite sweep over " << total << " ATPG-SAT instances:\n"
            << "  (reverse-)Horn: " << horn << "\n"
            << "  hidden Horn:    " << hidden << "\n"
            << "  q-Horn:         " << qhorn << " of " << qhorn_checked
            << " small enough to run the LP\n";
  std::cout << "\npaper: \"it is unlikely that any ATPG-SAT instances of "
               "practical significance lie in one of the polynomial SAT "
               "classes\" — the counts above make the point on live "
               "instances.\n";
  return 0;
}
