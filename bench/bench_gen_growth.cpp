// §5.2.3: cut-width growth on generated circuits.
//
// The paper strengthens the Figure 8 evidence with Hutton-style generated
// circuits "parameterized to topologically resemble" the suites, extending
// the size axis far beyond the benchmarks; the same logarithmic growth was
// observed. This harness sweeps generated circuits across sizes (and two
// wiring localities) and fits the whole-circuit cut-width estimate versus
// size.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/mla.hpp"
#include "gen/hutton.hpp"
#include "util/curvefit.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace cwatpg;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Generated circuits: cut-width growth (§5.2.3)",
                "paper §5.2.3 — log growth persists at large sizes");

  core::MlaConfig mla_cfg;
  mla_cfg.partition.fm.num_starts = 2;
  mla_cfg.partition.fm.max_passes = 6;

  const double locality[] = {0.92, 0.6};
  const char* locality_name[] = {"local (tree-like)", "global (reconvergent)"};

  for (int li = 0; li < 2; ++li) {
    std::cout << "wiring profile: " << locality_name[li] << "\n";
    Table t({"gates", "nodes", "est. W", "W / log2(n)", "sec"});
    std::vector<double> xs, ys;
    for (double base : {100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0}) {
      const auto gates = static_cast<std::size_t>(base * args.scale * 3);
      if (gates < 30) continue;
      gen::HuttonParams p;
      p.num_gates = gates;
      p.num_inputs = std::max<std::size_t>(8, gates / 12);
      p.num_outputs = std::max<std::size_t>(4, gates / 25);
      p.locality = locality[li];
      p.unbounded_reconvergence = li == 1;
      p.seed = args.seed + static_cast<std::uint64_t>(base) + li;
      const net::Network n = gen::hutton_random(p);
      Timer timer;
      const core::MlaResult m = core::mla(n, mla_cfg);
      const double logn = std::log2(static_cast<double>(n.node_count()));
      t.add_row({cell(gates), cell(n.node_count()), cell(m.width),
                 cell(m.width / logn, 2), cell(timer.seconds(), 1)});
      xs.push_back(static_cast<double>(n.node_count()));
      ys.push_back(static_cast<double>(m.width));
    }
    t.print(std::cout);
    if (xs.size() >= 3) {
      std::cout << "fits (best first):\n";
      for (const Fit& f : fit_all(xs, ys))
        std::cout << "  " << to_string(f.model) << ": " << f.describe()
                  << " (RSS " << cell(f.rss, 1) << ")\n";
    }
    std::cout << "\n";
  }
  std::cout << "paper: W/log2(n) stays roughly flat for realistic (local) "
               "wiring; heavy global reconvergence breaks the log trend.\n";
  return 0;
}
