// §3.3: average-time analysis of ATPG-SAT instances (Purdom–Brown model).
//
// Maps live ATPG-SAT instances into the (v, t, p) random-clause model and
// evaluates the closed-form expected backtracking-tree size and its
// scaling degree — the paper's observation that the formulas land in a
// class that is polynomial *on average*, together with its caveat that
// this cannot give hard conclusions about the ATPG subset.
#include <iostream>

#include "bench_common.hpp"
#include "fault/atpg_circuit.hpp"
#include "gen/suites.hpp"
#include "netlist/decompose.hpp"
#include "sat/average_case.hpp"
#include "sat/encode.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cwatpg;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Average-case (Purdom–Brown) parameters of ATPG-SAT",
                "paper §3.3");

  gen::SuiteOptions opts;
  opts.scale = args.scale;
  opts.seed = args.seed;

  Table t({"circuit", "instances", "med vars", "med clauses", "med len",
           "med log2 E", "med log2 E|nonempty"});
  std::vector<double> all_cond;
  for (const net::Network& n : gen::iscas85_like_suite(opts)) {
    const auto faults = fault::collapsed_fault_list(n);
    std::vector<double> vars, clauses, lens, log2e, log2c;
    for (std::size_t i = 0; i < faults.size(); i += 5 * args.stride) {
      fault::AtpgCircuit atpg = [&]() -> fault::AtpgCircuit {
        return fault::build_atpg_circuit(n, faults[i]);
      }();
      const sat::Cnf f = sat::encode_circuit_sat(atpg.miter);
      const sat::InstanceParams params = sat::measure_params(f);
      vars.push_back(static_cast<double>(params.v));
      clauses.push_back(static_cast<double>(params.t));
      lens.push_back(params.mean_length);
      log2e.push_back(sat::log2_expected_nodes(params));
      log2c.push_back(sat::log2_expected_nodes_nonempty(params));
    }
    all_cond.insert(all_cond.end(), log2c.begin(), log2c.end());
    t.add_row({n.name(), cell(vars.size()), cell(summarize(vars).median, 0),
               cell(summarize(clauses).median, 0),
               cell(summarize(lens).median, 2),
               cell(summarize(log2e).median, 1),
               cell(summarize(log2c).median, 1)});
  }
  t.print(std::cout);

  const Summary d = summarize(all_cond);
  std::cout << "\nconditioned model across all instances: median log2 E = "
            << cell(d.median, 1) << ", p90 " << cell(d.p90, 1) << ", max "
            << cell(d.max, 1) << "\n";
  std::cout << "\nreading (the paper's §3.3 caveat, made concrete): the\n"
               "unconditioned Purdom–Brown expectation at ATPG parameters is\n"
               "dominated by trivially-UNSAT random formulas (log2 E < 0),\n"
               "while the non-empty-conditioned expectation stays small at\n"
               "these sizes but scales with v, not log v. Either way the\n"
               "random (v,t,p) class mispredicts structured ATPG-SAT — the\n"
               "average-case route can only *suggest* easiness; the paper's\n"
               "cut-width characterization is what actually explains it.\n";
  return 0;
}
