// bench_chaos — replayable failure-injection campaigns against the
// in-process service stack.
//
//   $ ./bench_chaos [--schedules=N|ci] [--seed=S] [--jobs=N]
//                   [--replay=K] [--json=FILE]
//
// Each "schedule" is one seeded experiment: a failpoint schedule string is
// drawn from a site catalog (queue admission, registry eviction and
// allocation, solver allocation, spurious budget expiry, worker throws and
// stalls, short reads/writes, torn frames), armed process-wide, and a
// client/server session is run over the byte-level in-memory duplex — the
// retrying svc::Client on one side, a full Server on the other. The
// invariant asserted for every schedule is the service's headline
// guarantee: ZERO LOST RESPONSES — every submitted job reaches exactly one
// terminal outcome unless the schedule tore the session itself (framing
// corruption), in which case the tear must be observed cleanly (no hang,
// no crash) and unresolved jobs are tallied, never silently dropped.
//
// A second pass replays the first K timing-free schedules twice each with
// a fully serial workload and asserts bit-identical outcomes, client
// stats, and per-(domain,site) failpoint counters — the determinism
// contract that makes any chaos failure a one-line repro
// (`--schedules=...` + the printed seed). Timing-dependent sites (worker
// stalls under the watchdog) are excluded from the replay set because
// their outcome legitimately depends on wall-clock racing; they still run
// in the main campaign under the lossless invariant.
//
// Two cluster-shaped campaigns ride along: an UNSUPERVISED one (worker
// deaths permanently shrink the pool) and a SUPERVISED one where the
// coordinator respawns killed workers, heartbeat-probes wedged ones, and
// bisects poison shards down to in-process fallback — same zero-lost
// invariant throughout. A final deterministic KILL DRILL arms
// cluster.worker.eof=always (every worker dies after every reply, so no
// window can ever complete on a worker) and asserts the job still
// completes byte-identical to an undisturbed single-node run with every
// slot respawned at least once.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/structured.hpp"
#include "net/net_server.hpp"
#include "net/socket.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/decompose.hpp"
#include "obs/json.hpp"
#include "svc/client.hpp"
#include "svc/cluster.hpp"
#include "svc/server.hpp"
#include "svc/transport.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace {

using namespace cwatpg;

struct ChaosArgs {
  std::size_t schedules = 200;
  std::size_t replay = 8;  ///< schedules to run twice for determinism
  std::size_t jobs = 6;    ///< jobs per session
  std::uint64_t seed = 2026;
  std::string json;
};

void print_usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--schedules=N|ci] [--seed=S] [--jobs=N]"
               " [--replay=K] [--json=FILE]\n"
               "  --schedules=ci  curated CI-sized campaign (48 schedules)\n",
               argv0);
}

ChaosArgs parse_chaos_args(int argc, char** argv) {
  ChaosArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--schedules=ci") {
      args.schedules = 48;
      args.replay = 6;
      args.jobs = 4;
    } else if (arg.rfind("--schedules=", 0) == 0) {
      args.schedules = static_cast<std::size_t>(
          std::max(1L, std::atol(arg.c_str() + 12)));
    } else if (arg.rfind("--seed=", 0) == 0) {
      args.seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      args.jobs = static_cast<std::size_t>(
          std::max(1L, std::atol(arg.c_str() + 7)));
    } else if (arg.rfind("--replay=", 0) == 0) {
      args.replay = static_cast<std::size_t>(
          std::max(0L, std::atol(arg.c_str() + 9)));
    } else if (arg.rfind("--json=", 0) == 0) {
      args.json = arg.substr(7);
    } else if (arg == "--help" || arg == "-h") {
      print_usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      print_usage(argv[0]);
      std::exit(2);
    }
  }
  return args;
}

// ---- schedule generation --------------------------------------------------

/// Draws one failpoint item. `timing_ok` gates the wall-clock-dependent
/// stall/watchdog sites; `tear_ok` gates the session-tearing framing
/// sites (excluded from the serial determinism replay so every replayed
/// session runs to completion); `byte_io_ok` gates the short-read/write
/// sites, whose HIT counts depend on byte-level cross-thread
/// interleaving (how much of a frame the peer has written when a refill
/// lands) — they stay in the lossless campaign but out of the
/// counter-exact replay.
std::string draw_item(Rng& rng, bool timing_ok, bool tear_ok,
                      bool byte_io_ok, bool* wants_watchdog) {
  const auto num = [&rng](std::uint64_t lo, std::uint64_t hi) {
    return std::to_string(lo + rng.below(hi - lo + 1));
  };
  std::vector<std::string> pool = {
      "svc.queue.full=once",
      "svc.queue.full=nth:" + num(1, 4),
      "svc.queue.full=every:" + num(2, 4),
      "svc.queue.full=prob:0.25:" + num(1, 1u << 20),
      "svc.registry.evict=once",
      "svc.registry.evict=nth:" + num(1, 3),
      "svc.registry.alloc=once",
      "sat.solver.alloc=nth:" + num(1, 8),
      "sat.solver.alloc=prob:0.05:" + num(1, 1u << 20),
      "sat.solver.spurious_budget=prob:0.5:" + num(1, 1u << 20),
      "sat.solver.spurious_budget=always",
      "svc.server.execute.throw=once",
      "svc.server.execute.throw=nth:" + num(1, 4),
  };
  if (byte_io_ok) {
    pool.push_back("svc.proto.read.short=always@" + num(1, 7));
    pool.push_back("svc.proto.write.short=always@" + num(1, 7));
  }
  if (timing_ok) {
    pool.push_back("svc.server.execute.stall=once@30");
    pool.push_back("svc.server.execute.stall=nth:" + num(1, 3) + "@30");
  }
  if (tear_ok) {
    pool.push_back("svc.proto.read.corrupt_len=nth:" + num(4, 12));
    pool.push_back("svc.proto.read.eof=nth:" + num(4, 12));
  }
  const std::string item = pool[rng.below(pool.size())];
  if (item.rfind("svc.server.execute.stall", 0) == 0) *wants_watchdog = true;
  return item;
}

std::string make_schedule(Rng& rng, bool timing_ok, bool tear_ok,
                          bool byte_io_ok, bool* wants_watchdog) {
  const std::size_t items = 1 + rng.below(3);
  std::map<std::string, std::string> by_site;  // dedupe: one spec per site
  for (std::size_t i = 0; i < items; ++i) {
    const std::string item = draw_item(rng, timing_ok, tear_ok, byte_io_ok,
                                       wants_watchdog);
    const std::string site = item.substr(0, item.find('='));
    by_site.emplace(site, item);
  }
  std::string schedule;
  for (const auto& [site, item] : by_site) {
    (void)site;
    if (!schedule.empty()) schedule += ';';
    schedule += item;
  }
  return schedule;
}

// ---- one chaos session ----------------------------------------------------

struct Workload {
  std::string bench_text;
  std::size_t num_inputs = 0;
  std::size_t jobs = 6;
  bool serial = false;  ///< await each job before submitting the next
  bool watchdog = false;
};

struct SessionResult {
  /// request id -> "ok" / "error:<code>" / "unresolved" (torn only).
  std::map<std::uint64_t, std::string> outcomes;
  svc::ClientStats stats;
  bool torn = false;
  std::string counts_dump;  ///< per-(domain,site) hit/fire counters
  std::string violation;    ///< empty = all invariants held
};

std::string outcome_of(const obs::Json& resp) {
  const obs::Json* ok = resp.find("ok");
  if (ok != nullptr && ok->is_bool() && ok->as_bool()) return "ok";
  const obs::Json* error = resp.find("error");
  if (error != nullptr && error->is_object()) {
    if (const obs::Json* code = error->find("code");
        code != nullptr && code->is_string())
      return "error:" + code->as_string();
  }
  return "error:unknown";
}

/// The shared invariant audit: a clean (untorn) session resolves every
/// job, and any session only reports known outcome codes.
void check_invariants(SessionResult& out) {
  static const std::set<std::string> kKnown = {
      "ok",           "error:overloaded", "error:cancelled",
      "error:internal", "error:bad_request", "error:not_found",
      "error:shutting_down", "unresolved"};
  for (const auto& [id, outcome] : out.outcomes) {
    if (!kKnown.count(outcome))
      out.violation = "job " + std::to_string(id) +
                      " has unknown outcome '" + outcome + "'";
    if (outcome == "unresolved" && !out.torn)
      out.violation =
          "job " + std::to_string(id) + " LOST in an untorn session";
  }
}

/// Drives the shared single-session workload — load, mixed run_atpg/fsim
/// jobs, awaits, shutdown — through an already-connected client,
/// recording per-job outcomes and the torn flag. Used by both the duplex
/// and the TCP campaigns, so their invariants are checked over the same
/// traffic shape.
void drive_session(svc::Client& client, const Workload& w,
                   SessionResult& out) {
  std::string key = "never-loaded";
  try {
    obs::Json params = obs::Json::object();
    params["name"] = "chaos";
    params["text"] = w.bench_text;
    const obs::Json resp = client.call("load_circuit", params);
    if (const obs::Json* ok = resp.find("ok");
        ok != nullptr && ok->is_bool() && ok->as_bool())
      key = resp.at("result").at("circuit").at("key").as_string();
  } catch (const std::exception&) {
    out.torn = true;
  }

  std::vector<std::uint64_t> ids;
  const auto await_into = [&](std::uint64_t id) {
    if (out.torn) {
      out.outcomes[id] = "unresolved";
      return;
    }
    const std::optional<obs::Json> resp = client.await(id);
    if (!resp.has_value()) {
      out.torn = true;
      out.outcomes[id] = "unresolved";
    } else {
      out.outcomes[id] = outcome_of(*resp);
    }
  };
  for (std::size_t j = 0; j < w.jobs && !out.torn; ++j) {
    obs::Json params = obs::Json::object();
    params["circuit"] = key;
    std::uint64_t id = 0;
    if (j % 3 == 2) {
      obs::Json patterns = obs::Json::array();
      patterns.push_back(std::string(w.num_inputs, j % 2 ? '1' : '0'));
      params["patterns"] = std::move(patterns);
      id = client.submit("fsim", std::move(params));
    } else {
      params["seed"] = static_cast<std::uint64_t>(j) * 7919 + 13;
      // Alternate the random-pattern phase off so half the ATPG jobs
      // are forced through the SAT path, where the solver failpoints
      // live.
      params["random_blocks"] =
          static_cast<std::uint64_t>(j % 2 == 0 ? 0 : 2);
      id = client.submit("run_atpg", std::move(params));
    }
    ids.push_back(id);
    if (w.serial) await_into(id);
  }
  if (!w.serial)
    for (const std::uint64_t id : ids) await_into(id);

  if (!out.torn) {
    try {
      client.call("shutdown");
    } catch (const std::exception&) {
      out.torn = true;
    }
  }
  out.stats = client.stats();
}

SessionResult run_session(const std::string& schedule, const Workload& w) {
  SessionResult out;
  fp::Registry::instance().reset();
  {
    fp::ScheduleScope fps(schedule);

    svc::ServerOptions sopts;
    sopts.threads = 1;  // one worker: per-domain hit order is replayable
    sopts.queue_capacity = 8;
    if (w.watchdog) {
      sopts.watchdog_stall_seconds = 0.03;
      sopts.watchdog_detach_seconds = 0.05;
      sopts.watchdog_poll_seconds = 0.005;
    }
    svc::Server server(sopts);
    svc::DuplexPair pair = svc::make_byte_duplex();
    std::thread loop([&] { server.serve(*pair.server); });

    {
      svc::ClientOptions copts;
      copts.max_attempts = 4;
      copts.sleep_fn = [](double) {};  // chaos wants retries, not waits
      svc::Client client(*pair.client, copts);
      drive_session(client, w, out);
    }
    pair.client->close();
    loop.join();

    for (const auto& [site, c] : fp::Registry::instance().counts())
      out.counts_dump += site + "=" + std::to_string(c.hits) + "/" +
                         std::to_string(c.fires) + ";";
  }  // ScheduleScope resets the registry for the next session

  check_invariants(out);
  return out;
}

// ---- one TCP chaos session ------------------------------------------------

/// Draws a schedule over the TCP layer's injection sites. Short reads and
/// stalled writes are lossless (they slow bytes down, never drop them);
/// injected resets and accept failures tear the session, which the
/// invariant tolerates — it still demands the tear is CLEAN: the client
/// observes end-of-stream, every unresolved job is tallied, nothing hangs.
std::string make_net_schedule(Rng& rng) {
  const auto num = [&rng](std::uint64_t lo, std::uint64_t hi) {
    return std::to_string(lo + rng.below(hi - lo + 1));
  };
  const std::vector<std::string> net_pool = {
      "net.read.short=always@" + num(1, 7),
      "net.read.short=every:" + num(2, 4) + "@" + num(1, 64),
      "net.write.stall=every:" + num(2, 5),
      "net.write.stall=nth:" + num(1, 6),
      "net.conn.reset=once",
      "net.conn.reset=nth:" + num(2, 40),
      "net.accept.fail=once",
  };
  const std::vector<std::string> worker_pool = {
      "sat.solver.alloc=nth:" + num(1, 8),
      "svc.queue.full=once",
      "svc.server.execute.throw=once",
  };
  std::map<std::string, std::string> by_site;
  const std::string first = net_pool[rng.below(net_pool.size())];
  by_site.emplace(first.substr(0, first.find('=')), first);
  const std::size_t extras = rng.below(3);
  for (std::size_t i = 0; i < extras; ++i) {
    const std::string item =
        rng.below(2) == 0 ? net_pool[rng.below(net_pool.size())]
                          : worker_pool[rng.below(worker_pool.size())];
    by_site.emplace(item.substr(0, item.find('=')), item);
  }
  std::string schedule;
  for (const auto& [site, item] : by_site) {
    (void)site;
    if (!schedule.empty()) schedule += ';';
    schedule += item;
  }
  return schedule;
}

/// The same workload and invariant as run_session, but over a real
/// loopback TCP connection through the netio::NetServer event loop — the
/// full cwatpg_serve --listen stack, injected at the socket layer.
SessionResult run_tcp_session(const std::string& schedule,
                              const Workload& w) {
  SessionResult out;
  fp::Registry::instance().reset();
  {
    fp::ScheduleScope fps(schedule);

    svc::ServerOptions sopts;
    sopts.threads = 1;
    sopts.queue_capacity = 8;
    svc::Server server(sopts);
    netio::NetServer net_server(server);
    std::thread loop([&] { net_server.run(); });

    {
      std::unique_ptr<netio::SocketTransport> transport;
      try {
        transport = std::make_unique<netio::SocketTransport>(
            netio::tcp_connect("127.0.0.1", net_server.port(), 5.0));
      } catch (const std::exception&) {
        out.torn = true;  // accept-side injection can kill the dial itself
      }
      if (transport) {
        // A wedged session must become a torn session, never a hung bench.
        transport->set_read_timeout(10.0);
        svc::ClientOptions copts;
        copts.max_attempts = 4;
        copts.sleep_fn = [](double) {};
        svc::Client client(*transport, copts);
        drive_session(client, w, out);
      }
    }
    net_server.stop();  // no-op when a clean shutdown already ended run()
    loop.join();

    for (const auto& [site, c] : fp::Registry::instance().counts())
      out.counts_dump += site + "=" + std::to_string(c.hits) + "/" +
                         std::to_string(c.fires) + ";";
  }

  check_invariants(out);
  return out;
}

// ---- one cluster chaos session --------------------------------------------

/// Draws a failpoint schedule for the sharded coordinator: always at
/// least one cluster.* site (dropped dispatches, worker deaths eating
/// un-acked replies, truncated shard ingests), optionally mixed with
/// worker-side solver/admission faults. Every site is count-driven, so
/// cluster schedules are wall-clock-free by construction.
std::string make_cluster_schedule(Rng& rng) {
  const auto num = [&rng](std::uint64_t lo, std::uint64_t hi) {
    return std::to_string(lo + rng.below(hi - lo + 1));
  };
  const std::vector<std::string> cluster_pool = {
      "cluster.dispatch.drop=once",
      "cluster.dispatch.drop=nth:" + num(1, 4),
      "cluster.dispatch.drop=prob:0.2:" + num(1, 1u << 20),
      "cluster.worker.eof=once",
      "cluster.worker.eof=nth:" + num(1, 3),
      "cluster.merge.partial=once",
      "cluster.merge.partial=nth:" + num(1, 3),
      "cluster.merge.partial=prob:0.2:" + num(1, 1u << 20),
  };
  const std::vector<std::string> worker_pool = {
      "sat.solver.alloc=nth:" + num(1, 8),
      "sat.solver.spurious_budget=prob:0.5:" + num(1, 1u << 20),
      "svc.queue.full=once",
      "svc.server.execute.throw=once",
  };
  std::map<std::string, std::string> by_site;
  const std::string first = cluster_pool[rng.below(cluster_pool.size())];
  by_site.emplace(first.substr(0, first.find('=')), first);
  const std::size_t extras = rng.below(3);
  for (std::size_t i = 0; i < extras; ++i) {
    const std::string item =
        rng.below(2) == 0 ? cluster_pool[rng.below(cluster_pool.size())]
                          : worker_pool[rng.below(worker_pool.size())];
    by_site.emplace(item.substr(0, item.find('=')), item);
  }
  std::string schedule;
  for (const auto& [site, item] : by_site) {
    (void)site;
    if (!schedule.empty()) schedule += ';';
    schedule += item;
  }
  return schedule;
}

/// One chaos session against a 2-worker sharded cluster: same workload
/// and same zero-lost-jobs invariant as the single-server sessions —
/// every submitted job must reach exactly one terminal response no matter
/// which shards were dropped, truncated, or died with their worker.
SessionResult run_cluster_session(const std::string& schedule,
                                  const Workload& w) {
  SessionResult out;
  fp::Registry::instance().reset();
  {
    fp::ScheduleScope fps(schedule);

    std::vector<std::unique_ptr<svc::Server>> servers;
    std::vector<std::unique_ptr<svc::Transport>> server_sides;
    std::vector<std::thread> server_loops;
    std::vector<svc::Cluster::WorkerEndpoint> endpoints;
    for (std::size_t i = 0; i < 2; ++i) {
      svc::DuplexPair pair = svc::make_duplex();
      svc::ServerOptions sopts;
      sopts.threads = 1;
      sopts.queue_capacity = 8;
      servers.push_back(std::make_unique<svc::Server>(sopts));
      svc::Server* server = servers.back().get();
      svc::Transport* side = pair.server.get();
      server_sides.push_back(std::move(pair.server));
      server_loops.emplace_back([server, side] { server->serve(*side); });
      svc::Cluster::WorkerEndpoint e;
      e.transport = std::move(pair.client);
      e.name = "w" + std::to_string(i);
      endpoints.push_back(std::move(e));
    }

    svc::ClusterOptions copts;
    copts.shard_size = 3;  // several shards per job: real fan-out
    copts.client.max_attempts = 4;
    copts.client.sleep_fn = [](double) {};
    svc::Cluster cluster(std::move(endpoints), copts);
    svc::DuplexPair front = svc::make_duplex();
    std::thread cluster_loop([&] { cluster.serve(*front.server); });

    {
      svc::Client client(*front.client, copts.client);
      std::string key = "never-loaded";
      try {
        obs::Json params = obs::Json::object();
        params["name"] = "chaos";
        params["text"] = w.bench_text;
        const obs::Json resp = client.call("load_circuit", params);
        if (const obs::Json* ok = resp.find("ok");
            ok != nullptr && ok->is_bool() && ok->as_bool())
          key = resp.at("result").at("circuit").at("key").as_string();
      } catch (const std::exception&) {
        out.torn = true;
      }

      std::vector<std::uint64_t> ids;
      for (std::size_t j = 0; j < w.jobs && !out.torn; ++j) {
        obs::Json params = obs::Json::object();
        params["circuit"] = key;
        params["seed"] = static_cast<std::uint64_t>(j) * 7919 + 13;
        params["random_blocks"] =
            static_cast<std::uint64_t>(j % 2 == 0 ? 0 : 2);
        try {
          ids.push_back(client.submit("run_atpg", std::move(params)));
        } catch (const std::exception&) {
          out.torn = true;
        }
      }
      for (const std::uint64_t id : ids) {
        if (out.torn) {
          out.outcomes[id] = "unresolved";
          continue;
        }
        const std::optional<obs::Json> resp = client.await(id);
        if (!resp.has_value()) {
          out.torn = true;
          out.outcomes[id] = "unresolved";
        } else {
          out.outcomes[id] = outcome_of(*resp);
        }
      }
      if (!out.torn) {
        try {
          client.call("shutdown");
        } catch (const std::exception&) {
          out.torn = true;
        }
      }
      out.stats = client.stats();
    }
    front.client->close();
    cluster_loop.join();
    for (std::thread& t : server_loops) t.join();

    for (const auto& [site, c] : fp::Registry::instance().counts())
      out.counts_dump += site + "=" + std::to_string(c.hits) + "/" +
                         std::to_string(c.fires) + ";";
  }

  check_invariants(out);
  return out;
}

// ---- supervised-cluster campaign -------------------------------------------

/// The respawn pool for supervised sessions: in-process Servers created on
/// demand by the cluster's respawn factories, which run on the cluster's
/// worker threads — hence the mutex.
struct WorkerFarm {
  std::mutex mutex;
  std::vector<std::unique_ptr<svc::Server>> servers;
  std::vector<std::unique_ptr<svc::Transport>> sides;
  std::vector<std::thread> loops;

  std::unique_ptr<svc::Transport> boot() {
    svc::DuplexPair pair = svc::make_duplex();
    svc::ServerOptions sopts;
    sopts.threads = 1;
    sopts.queue_capacity = 8;
    std::lock_guard<std::mutex> lock(mutex);
    servers.push_back(std::make_unique<svc::Server>(sopts));
    svc::Server* server = servers.back().get();
    svc::Transport* side = pair.server.get();
    sides.push_back(std::move(pair.server));
    loops.emplace_back([server, side] { server->serve(*side); });
    return std::move(pair.client);
  }

  /// Safe once the cluster's serve() returned: its worker threads (the
  /// only factory callers) are joined by then.
  void join_all() {
    for (std::thread& t : loops) t.join();
  }
};

/// Cluster options for a supervised session: near-instant respawns and a
/// window that tolerates deliberate kill storms, plus fast heartbeats so
/// the wedged-worker site is reachable within a bench-sized session.
svc::ClusterOptions supervised_cluster_options() {
  svc::ClusterOptions copts;
  copts.shard_size = 3;
  copts.client.max_attempts = 4;
  copts.client.sleep_fn = [](double) {};
  copts.supervisor.backoff.base_seconds = 0.0005;
  copts.supervisor.backoff.max_seconds = 0.002;
  copts.supervisor.max_respawns = 200;
  copts.supervisor.respawn_window_seconds = 60.0;
  copts.supervisor.heartbeat_seconds = 0.005;
  copts.supervisor.heartbeat_timeout_seconds = 0.5;
  return copts;
}

/// Draws a schedule over the supervision sites — worker deaths (including
/// storms), wedged heartbeats, failing respawns, poison faults — mixed
/// with worker-side faults. respawn.fail stays bounded (once/nth) so the
/// pool keeps capacity; poison targets may fall past the fault count, in
/// which case the site simply never fires.
std::string make_supervised_schedule(Rng& rng) {
  const auto num = [&rng](std::uint64_t lo, std::uint64_t hi) {
    return std::to_string(lo + rng.below(hi - lo + 1));
  };
  const std::vector<std::string> supervised_pool = {
      "cluster.worker.eof=once",
      "cluster.worker.eof=nth:" + num(1, 5),
      "cluster.worker.eof=every:" + num(2, 4),
      "cluster.worker.eof=prob:0.15:" + num(1, 1u << 20),
      "cluster.heartbeat.stall=once",
      "cluster.heartbeat.stall=nth:" + num(1, 8),
      "cluster.respawn.fail=once",
      "cluster.respawn.fail=nth:" + num(1, 3),
      "cluster.shard.poison=always@" + num(0, 17),
      "cluster.dispatch.drop=once",
      "cluster.merge.partial=nth:" + num(1, 3),
  };
  const std::vector<std::string> worker_pool = {
      "sat.solver.alloc=nth:" + num(1, 8),
      "svc.queue.full=once",
      "svc.server.execute.throw=once",
  };
  std::map<std::string, std::string> by_site;
  const std::string first =
      supervised_pool[rng.below(supervised_pool.size())];
  by_site.emplace(first.substr(0, first.find('=')), first);
  const std::size_t extras = rng.below(3);
  for (std::size_t i = 0; i < extras; ++i) {
    const std::string item =
        rng.below(2) == 0
            ? supervised_pool[rng.below(supervised_pool.size())]
            : worker_pool[rng.below(worker_pool.size())];
    by_site.emplace(item.substr(0, item.find('=')), item);
  }
  std::string schedule;
  for (const auto& [site, item] : by_site) {
    (void)site;
    if (!schedule.empty()) schedule += ';';
    schedule += item;
  }
  return schedule;
}

/// One chaos session against a SUPERVISED 2-worker cluster: every death
/// is respawned under backoff, wedged workers are heartbeat-detected, and
/// poison windows fall back to in-process execution. Invariant unchanged:
/// zero lost responses, every job one terminal.
SessionResult run_supervised_session(const std::string& schedule,
                                     const Workload& w,
                                     std::uint64_t* respawns,
                                     std::uint64_t* deaths) {
  SessionResult out;
  fp::Registry::instance().reset();
  {
    fp::ScheduleScope fps(schedule);

    WorkerFarm farm;
    std::vector<svc::Cluster::WorkerEndpoint> endpoints;
    for (std::size_t i = 0; i < 2; ++i) {
      svc::Cluster::WorkerEndpoint e;
      e.transport = farm.boot();
      e.name = "w" + std::to_string(i);
      e.respawn = [&farm]() {
        svc::Cluster::WorkerEndpoint::Respawned r;
        r.transport = farm.boot();
        return r;
      };
      endpoints.push_back(std::move(e));
    }

    const svc::ClusterOptions copts = supervised_cluster_options();
    svc::Cluster cluster(std::move(endpoints), copts);
    svc::DuplexPair front = svc::make_duplex();
    std::thread cluster_loop([&] { cluster.serve(*front.server); });

    {
      svc::Client client(*front.client, copts.client);
      drive_session(client, w, out);
    }
    front.client->close();
    cluster_loop.join();
    const svc::ClusterStats stats = cluster.stats();
    *respawns += stats.respawns;
    *deaths += stats.worker_deaths;
    farm.join_all();

    for (const auto& [site, c] : fp::Registry::instance().counts())
      out.counts_dump += site + "=" + std::to_string(c.hits) + "/" +
                         std::to_string(c.fires) + ";";
  }

  check_invariants(out);
  return out;
}

// ---- the deterministic kill drill ------------------------------------------

/// Per-fault records with the one legitimately nondeterministic field
/// (per-solve wall seconds) zeroed, dumpable for byte comparison.
std::string normalized_raw_dump(const obs::Json& result) {
  obs::Json raw = obs::Json::array();
  for (const obs::Json& record : result.at("raw").items()) {
    obs::Json r = record;
    r["ss"] = 0.0;
    raw.push_back(std::move(r));
  }
  return raw.dump();
}

/// run_atpg params pinned to the full pipeline (random phase + SAT aborts
/// + escalation), matching the unit suite's hardest merge case.
obs::Json drill_params(const std::string& key) {
  obs::Json params = obs::Json::object();
  params["circuit"] = key;
  params["seed"] = std::uint64_t(7);
  params["random_blocks"] = std::uint64_t(1);
  params["max_conflicts"] = std::uint64_t(6);
  params["escalation_rounds"] = std::uint64_t(2);
  params["raw_outcomes"] = true;
  return params;
}

struct KillDrill {
  std::uint64_t faults = 0;
  std::uint64_t inprocess_faults = 0;
  std::uint64_t worker_deaths = 0;
  std::uint64_t respawns = 0;
  std::uint64_t min_restarts = 0;
  bool identical = false;
  std::string violation;  ///< empty = the drill held
};

/// Every worker is killed after every shard reply — no window can EVER
/// complete on a worker — while the job must still complete with zero
/// lost faults, byte-identical to an undisturbed single-node run, and
/// every slot must have been killed and respawned at least once.
KillDrill run_kill_drill(const Workload& w) {
  KillDrill drill;

  // The undisturbed single-node reference.
  std::string reference;
  {
    fp::Registry::instance().reset();
    svc::ServerOptions sopts;
    sopts.threads = 1;
    svc::Server server(sopts);
    svc::DuplexPair pair = svc::make_byte_duplex();
    std::thread loop([&] { server.serve(*pair.server); });
    {
      svc::Client client(*pair.client, {});
      obs::Json load = obs::Json::object();
      load["name"] = "drill";
      load["text"] = w.bench_text;
      const obs::Json loaded = client.call("load_circuit", std::move(load));
      const std::string key =
          loaded.at("result").at("circuit").at("key").as_string();
      const obs::Json resp = client.call("run_atpg", drill_params(key));
      if (resp.at("ok").as_bool()) {
        drill.faults = resp.at("result").at("faults").as_u64();
        reference = normalized_raw_dump(resp.at("result"));
      } else {
        drill.violation = "reference run failed: " + resp.dump();
      }
      client.call("shutdown");
    }
    pair.client->close();
    loop.join();
  }
  if (!drill.violation.empty()) return drill;

  fp::Registry::instance().reset();
  {
    fp::ScheduleScope fps("cluster.worker.eof=always");

    WorkerFarm farm;
    std::vector<svc::Cluster::WorkerEndpoint> endpoints;
    for (std::size_t i = 0; i < 2; ++i) {
      svc::Cluster::WorkerEndpoint e;
      e.transport = farm.boot();
      e.name = "w" + std::to_string(i);
      e.respawn = [&farm]() {
        svc::Cluster::WorkerEndpoint::Respawned r;
        r.transport = farm.boot();
        return r;
      };
      endpoints.push_back(std::move(e));
    }
    svc::ClusterOptions copts = supervised_cluster_options();
    copts.shard_size = 2;  // many windows: many kills, every slot dies
    copts.supervisor.heartbeat_seconds = 0.0;  // deaths only via the kills
    svc::Cluster cluster(std::move(endpoints), copts);
    svc::DuplexPair front = svc::make_duplex();
    std::thread cluster_loop([&] { cluster.serve(*front.server); });

    {
      svc::Client client(*front.client, copts.client);
      try {
        obs::Json load = obs::Json::object();
        load["name"] = "drill";
        load["text"] = w.bench_text;
        const obs::Json loaded =
            client.call("load_circuit", std::move(load));
        const std::string key =
            loaded.at("result").at("circuit").at("key").as_string();
        const obs::Json resp = client.call("run_atpg", drill_params(key));
        if (!resp.at("ok").as_bool()) {
          drill.violation = "drill job failed: " + resp.dump();
        } else {
          const obs::Json& result = resp.at("result");
          drill.identical = normalized_raw_dump(result) == reference &&
                            result.at("faults").as_u64() == drill.faults;
          drill.inprocess_faults =
              result.at("cluster").at("inprocess_faults").as_u64();
          // Respawns complete asynchronously after the terminal: poll
          // status until every slot reports a restart.
          for (int i = 0; i < 500; ++i) {
            const obs::Json status =
                client.call("status").at("result");
            drill.min_restarts = ~std::uint64_t(0);
            for (const obs::Json& ws :
                 status.at("worker_pool").items())
              drill.min_restarts = std::min(
                  drill.min_restarts, ws.at("restarts").as_u64());
            if (drill.min_restarts >= 1) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          }
        }
        client.call("shutdown");
      } catch (const std::exception& e) {
        drill.violation = std::string("drill session torn: ") + e.what();
      }
    }
    front.client->close();
    cluster_loop.join();
    const svc::ClusterStats stats = cluster.stats();
    drill.worker_deaths = stats.worker_deaths;
    drill.respawns = stats.respawns;
    farm.join_all();
  }

  if (drill.violation.empty()) {
    if (!drill.identical)
      drill.violation = "drill result diverged from the single-node run";
    else if (drill.inprocess_faults != drill.faults)
      drill.violation = "expected every fault in-process, got " +
                        std::to_string(drill.inprocess_faults) + "/" +
                        std::to_string(drill.faults);
    else if (drill.worker_deaths < 2)
      drill.violation = "expected every worker killed at least once";
    else if (drill.min_restarts < 1)
      drill.violation = "a slot was never respawned";
  }
  return drill;
}

std::string summary_of(const SessionResult& r) {
  std::string s;
  for (const auto& [id, outcome] : r.outcomes)
    s += std::to_string(id) + ":" + outcome + ";";
  s += "|sent=" + std::to_string(r.stats.requests_sent);
  s += ",resp=" + std::to_string(r.stats.responses);
  s += ",over=" + std::to_string(r.stats.overloaded);
  s += ",retry=" + std::to_string(r.stats.retries);
  s += ",dup=" + std::to_string(r.stats.duplicate_rejects);
  s += ",serr=" + std::to_string(r.stats.session_errors);
  s += ",torn=" + std::to_string(r.torn ? 1 : 0);
  s += "|" + r.counts_dump;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const ChaosArgs args = parse_chaos_args(argc, argv);
  if (!fp::kEnabled) {
    std::printf("bench_chaos: built with CWATPG_FAILPOINTS=OFF — nothing "
                "to inject, reporting success\n");
    return 0;
  }

  Workload base;
  {
    const net::Network n = net::decompose(gen::comparator(3));
    std::ostringstream text;
    net::write_bench(text, n);
    base.bench_text = text.str();
    base.num_inputs = n.inputs().size();
  }
  base.jobs = args.jobs;

  std::printf("=== bench_chaos: %zu schedules, seed %llu, %zu jobs/session "
              "===\n",
              args.schedules, static_cast<unsigned long long>(args.seed),
              args.jobs);

  std::size_t failures = 0, torn_sessions = 0, unresolved_jobs = 0;
  std::map<std::string, std::size_t> outcome_histogram;

  for (std::size_t s = 0; s < args.schedules; ++s) {
    Rng rng(split_seed(args.seed, s));
    Workload w = base;
    w.watchdog = false;
    const bool timing_ok = s % 4 == 1;
    const bool tear_ok = s % 5 == 3;
    const std::string schedule = make_schedule(
        rng, timing_ok, tear_ok, /*byte_io_ok=*/true, &w.watchdog);
    const SessionResult r = run_session(schedule, w);
    torn_sessions += r.torn ? 1 : 0;
    for (const auto& [id, outcome] : r.outcomes) {
      (void)id;
      ++outcome_histogram[outcome];
      unresolved_jobs += outcome == "unresolved" ? 1 : 0;
    }
    if (!r.violation.empty()) {
      ++failures;
      std::printf("FAIL schedule %zu [%s]: %s\n", s, schedule.c_str(),
                  r.violation.c_str());
    }
  }

  // Cluster campaign: the same lossless invariant with the sharded
  // coordinator in the middle — dropped dispatches, workers dying with
  // un-acked shards, truncated shard replies. A lost or double-counted
  // shard would surface here as an unresolved job or an unknown outcome.
  const std::size_t cluster_schedules =
      std::max<std::size_t>(8, args.schedules / 4);
  std::size_t cluster_torn = 0, cluster_unresolved = 0;
  for (std::size_t s = 0; s < cluster_schedules; ++s) {
    Rng rng(split_seed(args.seed ^ 0xc105'7e12u, s));
    Workload w = base;
    const std::string schedule = make_cluster_schedule(rng);
    const SessionResult r = run_cluster_session(schedule, w);
    cluster_torn += r.torn ? 1 : 0;
    for (const auto& [id, outcome] : r.outcomes) {
      (void)id;
      ++outcome_histogram[outcome];
      cluster_unresolved += outcome == "unresolved" ? 1 : 0;
    }
    if (!r.violation.empty()) {
      ++failures;
      std::printf("FAIL cluster schedule %zu [%s]: %s\n", s,
                  schedule.c_str(), r.violation.c_str());
    }
  }

  // TCP campaign: the same lossless-or-cleanly-torn invariant with the
  // netio::NetServer event loop and a real loopback socket in the middle —
  // short reads, stalled flushes, injected resets and accept failures at
  // the net.* sites. A response lost in the outbox/flush path, or a tear
  // that hangs instead of surfacing as end-of-stream, fails here.
  const std::size_t tcp_schedules =
      std::max<std::size_t>(8, args.schedules / 4);
  std::size_t tcp_torn = 0, tcp_unresolved = 0;
  for (std::size_t s = 0; s < tcp_schedules; ++s) {
    Rng rng(split_seed(args.seed ^ 0x7c9a11e7u, s));
    Workload w = base;
    const std::string schedule = make_net_schedule(rng);
    const SessionResult r = run_tcp_session(schedule, w);
    tcp_torn += r.torn ? 1 : 0;
    for (const auto& [id, outcome] : r.outcomes) {
      (void)id;
      ++outcome_histogram[outcome];
      tcp_unresolved += outcome == "unresolved" ? 1 : 0;
    }
    if (!r.violation.empty()) {
      ++failures;
      std::printf("FAIL net schedule %zu [%s]: %s\n", s, schedule.c_str(),
                  r.violation.c_str());
    }
  }

  // Supervised campaign: the same zero-lost invariant while the
  // supervisor is respawning killed workers, heartbeat-probing wedged
  // ones, and quarantining poison shards into in-process fallback. A
  // respawn that loses a queued window, a heartbeat that misfires on a
  // healthy worker, or a poison window that double-counts faults would
  // surface here as an unresolved job or an unknown outcome.
  const std::size_t supervised_schedules =
      std::max<std::size_t>(8, args.schedules / 4);
  std::size_t supervised_torn = 0, supervised_unresolved = 0;
  std::uint64_t supervised_respawns = 0, supervised_deaths = 0;
  for (std::size_t s = 0; s < supervised_schedules; ++s) {
    Rng rng(split_seed(args.seed ^ 0x5afe'ba5eu, s));
    Workload w = base;
    const std::string schedule = make_supervised_schedule(rng);
    const SessionResult r = run_supervised_session(
        schedule, w, &supervised_respawns, &supervised_deaths);
    supervised_torn += r.torn ? 1 : 0;
    for (const auto& [id, outcome] : r.outcomes) {
      (void)id;
      ++outcome_histogram[outcome];
      supervised_unresolved += outcome == "unresolved" ? 1 : 0;
    }
    if (!r.violation.empty()) {
      ++failures;
      std::printf("FAIL supervised schedule %zu [%s]: %s\n", s,
                  schedule.c_str(), r.violation.c_str());
    }
  }

  // The kill drill: every worker dies after every reply, the job must
  // still come back byte-identical to an undisturbed single-node run.
  const KillDrill drill = run_kill_drill(base);
  if (!drill.violation.empty()) {
    ++failures;
    std::printf("FAIL kill drill: %s\n", drill.violation.c_str());
  }

  // Determinism replay: same schedule + serial workload, twice, compared
  // byte for byte.
  std::size_t replay_mismatches = 0;
  for (std::size_t k = 0; k < args.replay; ++k) {
    Rng rng_a(split_seed(args.seed ^ 0x9e3779b9, k));
    Rng rng_b = rng_a;
    Workload w = base;
    w.serial = true;
    bool unused = false;
    const std::string schedule_a =
        make_schedule(rng_a, /*timing_ok=*/false, /*tear_ok=*/false,
                      /*byte_io_ok=*/false, &unused);
    const std::string schedule_b =
        make_schedule(rng_b, false, false, false, &unused);
    const std::string a = summary_of(run_session(schedule_a, w));
    const std::string b = summary_of(run_session(schedule_b, w));
    if (schedule_a != schedule_b || a != b) {
      ++replay_mismatches;
      std::printf("REPLAY MISMATCH %zu [%s]\n  a: %s\n  b: %s\n", k,
                  schedule_a.c_str(), a.c_str(), b.c_str());
    }
  }

  std::printf("\nsessions: %zu  torn: %zu  unresolved(torn-only): %zu\n",
              args.schedules, torn_sessions, unresolved_jobs);
  std::printf("cluster sessions: %zu  torn: %zu  unresolved(torn-only): "
              "%zu\n",
              cluster_schedules, cluster_torn, cluster_unresolved);
  std::printf("tcp sessions: %zu  torn: %zu  unresolved(torn-only): %zu\n",
              tcp_schedules, tcp_torn, tcp_unresolved);
  std::printf("supervised sessions: %zu  torn: %zu  unresolved(torn-only): "
              "%zu  respawns: %llu  deaths: %llu\n",
              supervised_schedules, supervised_torn, supervised_unresolved,
              static_cast<unsigned long long>(supervised_respawns),
              static_cast<unsigned long long>(supervised_deaths));
  std::printf("kill drill: identical=%s  deaths=%llu  respawns=%llu  "
              "in-process=%llu/%llu\n",
              drill.identical ? "yes" : "NO",
              static_cast<unsigned long long>(drill.worker_deaths),
              static_cast<unsigned long long>(drill.respawns),
              static_cast<unsigned long long>(drill.inprocess_faults),
              static_cast<unsigned long long>(drill.faults));
  for (const auto& [outcome, count] : outcome_histogram)
    std::printf("  %-22s %zu\n", outcome.c_str(), count);
  std::printf("determinism replays: %zu  mismatches: %zu\n", args.replay,
              replay_mismatches);

  if (!args.json.empty()) {
    obs::Json j = obs::Json::object();
    j["schema"] = "cwatpg.chaos_report/1";
    j["schedules"] = static_cast<std::uint64_t>(args.schedules);
    j["seed"] = args.seed;
    j["torn_sessions"] = static_cast<std::uint64_t>(torn_sessions);
    j["unresolved_jobs"] = static_cast<std::uint64_t>(unresolved_jobs);
    j["cluster_sessions"] = static_cast<std::uint64_t>(cluster_schedules);
    j["cluster_torn_sessions"] = static_cast<std::uint64_t>(cluster_torn);
    j["cluster_unresolved_jobs"] =
        static_cast<std::uint64_t>(cluster_unresolved);
    j["tcp_sessions"] = static_cast<std::uint64_t>(tcp_schedules);
    j["tcp_torn_sessions"] = static_cast<std::uint64_t>(tcp_torn);
    j["tcp_unresolved_jobs"] = static_cast<std::uint64_t>(tcp_unresolved);
    j["supervised_sessions"] =
        static_cast<std::uint64_t>(supervised_schedules);
    j["supervised_torn_sessions"] =
        static_cast<std::uint64_t>(supervised_torn);
    j["supervised_unresolved_jobs"] =
        static_cast<std::uint64_t>(supervised_unresolved);
    j["supervised_respawns"] = supervised_respawns;
    j["supervised_worker_deaths"] = supervised_deaths;
    obs::Json dj = obs::Json::object();
    dj["identical"] = drill.identical;
    dj["faults"] = drill.faults;
    dj["inprocess_faults"] = drill.inprocess_faults;
    dj["worker_deaths"] = drill.worker_deaths;
    dj["respawns"] = drill.respawns;
    dj["min_restarts"] = drill.min_restarts;
    dj["lost_jobs"] = std::uint64_t(drill.violation.empty() ? 0 : 1);
    j["kill_drill"] = std::move(dj);
    j["replays"] = static_cast<std::uint64_t>(args.replay);
    j["replay_mismatches"] =
        static_cast<std::uint64_t>(replay_mismatches);
    j["invariant_failures"] = static_cast<std::uint64_t>(failures);
    obs::Json hist = obs::Json::object();
    for (const auto& [outcome, count] : outcome_histogram)
      hist[outcome] = static_cast<std::uint64_t>(count);
    j["outcomes"] = std::move(hist);
    std::ofstream out(args.json);
    out << j.dump(2) << "\n";
  }

  if (failures > 0 || replay_mismatches > 0) {
    std::printf("bench_chaos: FAILED (%zu invariant failures, %zu replay "
                "mismatches)\n",
                failures, replay_mismatches);
    return 1;
  }
  std::printf("bench_chaos: all invariants held — zero lost responses\n");
  return 0;
}
