// bench_chaos — replayable failure-injection campaigns against the
// in-process service stack.
//
//   $ ./bench_chaos [--schedules=N|ci] [--seed=S] [--jobs=N]
//                   [--replay=K] [--json=FILE]
//
// Each "schedule" is one seeded experiment: a failpoint schedule string is
// drawn from a site catalog (queue admission, registry eviction and
// allocation, solver allocation, spurious budget expiry, worker throws and
// stalls, short reads/writes, torn frames), armed process-wide, and a
// client/server session is run over the byte-level in-memory duplex — the
// retrying svc::Client on one side, a full Server on the other. The
// invariant asserted for every schedule is the service's headline
// guarantee: ZERO LOST RESPONSES — every submitted job reaches exactly one
// terminal outcome unless the schedule tore the session itself (framing
// corruption), in which case the tear must be observed cleanly (no hang,
// no crash) and unresolved jobs are tallied, never silently dropped.
//
// A second pass replays the first K timing-free schedules twice each with
// a fully serial workload and asserts bit-identical outcomes, client
// stats, and per-(domain,site) failpoint counters — the determinism
// contract that makes any chaos failure a one-line repro
// (`--schedules=...` + the printed seed). Timing-dependent sites (worker
// stalls under the watchdog) are excluded from the replay set because
// their outcome legitimately depends on wall-clock racing; they still run
// in the main campaign under the lossless invariant.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/structured.hpp"
#include "net/net_server.hpp"
#include "net/socket.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/decompose.hpp"
#include "obs/json.hpp"
#include "svc/client.hpp"
#include "svc/cluster.hpp"
#include "svc/server.hpp"
#include "svc/transport.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace {

using namespace cwatpg;

struct ChaosArgs {
  std::size_t schedules = 200;
  std::size_t replay = 8;  ///< schedules to run twice for determinism
  std::size_t jobs = 6;    ///< jobs per session
  std::uint64_t seed = 2026;
  std::string json;
};

void print_usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--schedules=N|ci] [--seed=S] [--jobs=N]"
               " [--replay=K] [--json=FILE]\n"
               "  --schedules=ci  curated CI-sized campaign (48 schedules)\n",
               argv0);
}

ChaosArgs parse_chaos_args(int argc, char** argv) {
  ChaosArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--schedules=ci") {
      args.schedules = 48;
      args.replay = 6;
      args.jobs = 4;
    } else if (arg.rfind("--schedules=", 0) == 0) {
      args.schedules = static_cast<std::size_t>(
          std::max(1L, std::atol(arg.c_str() + 12)));
    } else if (arg.rfind("--seed=", 0) == 0) {
      args.seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      args.jobs = static_cast<std::size_t>(
          std::max(1L, std::atol(arg.c_str() + 7)));
    } else if (arg.rfind("--replay=", 0) == 0) {
      args.replay = static_cast<std::size_t>(
          std::max(0L, std::atol(arg.c_str() + 9)));
    } else if (arg.rfind("--json=", 0) == 0) {
      args.json = arg.substr(7);
    } else if (arg == "--help" || arg == "-h") {
      print_usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      print_usage(argv[0]);
      std::exit(2);
    }
  }
  return args;
}

// ---- schedule generation --------------------------------------------------

/// Draws one failpoint item. `timing_ok` gates the wall-clock-dependent
/// stall/watchdog sites; `tear_ok` gates the session-tearing framing
/// sites (excluded from the serial determinism replay so every replayed
/// session runs to completion); `byte_io_ok` gates the short-read/write
/// sites, whose HIT counts depend on byte-level cross-thread
/// interleaving (how much of a frame the peer has written when a refill
/// lands) — they stay in the lossless campaign but out of the
/// counter-exact replay.
std::string draw_item(Rng& rng, bool timing_ok, bool tear_ok,
                      bool byte_io_ok, bool* wants_watchdog) {
  const auto num = [&rng](std::uint64_t lo, std::uint64_t hi) {
    return std::to_string(lo + rng.below(hi - lo + 1));
  };
  std::vector<std::string> pool = {
      "svc.queue.full=once",
      "svc.queue.full=nth:" + num(1, 4),
      "svc.queue.full=every:" + num(2, 4),
      "svc.queue.full=prob:0.25:" + num(1, 1u << 20),
      "svc.registry.evict=once",
      "svc.registry.evict=nth:" + num(1, 3),
      "svc.registry.alloc=once",
      "sat.solver.alloc=nth:" + num(1, 8),
      "sat.solver.alloc=prob:0.05:" + num(1, 1u << 20),
      "sat.solver.spurious_budget=prob:0.5:" + num(1, 1u << 20),
      "sat.solver.spurious_budget=always",
      "svc.server.execute.throw=once",
      "svc.server.execute.throw=nth:" + num(1, 4),
  };
  if (byte_io_ok) {
    pool.push_back("svc.proto.read.short=always@" + num(1, 7));
    pool.push_back("svc.proto.write.short=always@" + num(1, 7));
  }
  if (timing_ok) {
    pool.push_back("svc.server.execute.stall=once@30");
    pool.push_back("svc.server.execute.stall=nth:" + num(1, 3) + "@30");
  }
  if (tear_ok) {
    pool.push_back("svc.proto.read.corrupt_len=nth:" + num(4, 12));
    pool.push_back("svc.proto.read.eof=nth:" + num(4, 12));
  }
  const std::string item = pool[rng.below(pool.size())];
  if (item.rfind("svc.server.execute.stall", 0) == 0) *wants_watchdog = true;
  return item;
}

std::string make_schedule(Rng& rng, bool timing_ok, bool tear_ok,
                          bool byte_io_ok, bool* wants_watchdog) {
  const std::size_t items = 1 + rng.below(3);
  std::map<std::string, std::string> by_site;  // dedupe: one spec per site
  for (std::size_t i = 0; i < items; ++i) {
    const std::string item = draw_item(rng, timing_ok, tear_ok, byte_io_ok,
                                       wants_watchdog);
    const std::string site = item.substr(0, item.find('='));
    by_site.emplace(site, item);
  }
  std::string schedule;
  for (const auto& [site, item] : by_site) {
    (void)site;
    if (!schedule.empty()) schedule += ';';
    schedule += item;
  }
  return schedule;
}

// ---- one chaos session ----------------------------------------------------

struct Workload {
  std::string bench_text;
  std::size_t num_inputs = 0;
  std::size_t jobs = 6;
  bool serial = false;  ///< await each job before submitting the next
  bool watchdog = false;
};

struct SessionResult {
  /// request id -> "ok" / "error:<code>" / "unresolved" (torn only).
  std::map<std::uint64_t, std::string> outcomes;
  svc::ClientStats stats;
  bool torn = false;
  std::string counts_dump;  ///< per-(domain,site) hit/fire counters
  std::string violation;    ///< empty = all invariants held
};

std::string outcome_of(const obs::Json& resp) {
  const obs::Json* ok = resp.find("ok");
  if (ok != nullptr && ok->is_bool() && ok->as_bool()) return "ok";
  const obs::Json* error = resp.find("error");
  if (error != nullptr && error->is_object()) {
    if (const obs::Json* code = error->find("code");
        code != nullptr && code->is_string())
      return "error:" + code->as_string();
  }
  return "error:unknown";
}

/// The shared invariant audit: a clean (untorn) session resolves every
/// job, and any session only reports known outcome codes.
void check_invariants(SessionResult& out) {
  static const std::set<std::string> kKnown = {
      "ok",           "error:overloaded", "error:cancelled",
      "error:internal", "error:bad_request", "error:not_found",
      "error:shutting_down", "unresolved"};
  for (const auto& [id, outcome] : out.outcomes) {
    if (!kKnown.count(outcome))
      out.violation = "job " + std::to_string(id) +
                      " has unknown outcome '" + outcome + "'";
    if (outcome == "unresolved" && !out.torn)
      out.violation =
          "job " + std::to_string(id) + " LOST in an untorn session";
  }
}

/// Drives the shared single-session workload — load, mixed run_atpg/fsim
/// jobs, awaits, shutdown — through an already-connected client,
/// recording per-job outcomes and the torn flag. Used by both the duplex
/// and the TCP campaigns, so their invariants are checked over the same
/// traffic shape.
void drive_session(svc::Client& client, const Workload& w,
                   SessionResult& out) {
  std::string key = "never-loaded";
  try {
    obs::Json params = obs::Json::object();
    params["name"] = "chaos";
    params["text"] = w.bench_text;
    const obs::Json resp = client.call("load_circuit", params);
    if (const obs::Json* ok = resp.find("ok");
        ok != nullptr && ok->is_bool() && ok->as_bool())
      key = resp.at("result").at("circuit").at("key").as_string();
  } catch (const std::exception&) {
    out.torn = true;
  }

  std::vector<std::uint64_t> ids;
  const auto await_into = [&](std::uint64_t id) {
    if (out.torn) {
      out.outcomes[id] = "unresolved";
      return;
    }
    const std::optional<obs::Json> resp = client.await(id);
    if (!resp.has_value()) {
      out.torn = true;
      out.outcomes[id] = "unresolved";
    } else {
      out.outcomes[id] = outcome_of(*resp);
    }
  };
  for (std::size_t j = 0; j < w.jobs && !out.torn; ++j) {
    obs::Json params = obs::Json::object();
    params["circuit"] = key;
    std::uint64_t id = 0;
    if (j % 3 == 2) {
      obs::Json patterns = obs::Json::array();
      patterns.push_back(std::string(w.num_inputs, j % 2 ? '1' : '0'));
      params["patterns"] = std::move(patterns);
      id = client.submit("fsim", std::move(params));
    } else {
      params["seed"] = static_cast<std::uint64_t>(j) * 7919 + 13;
      // Alternate the random-pattern phase off so half the ATPG jobs
      // are forced through the SAT path, where the solver failpoints
      // live.
      params["random_blocks"] =
          static_cast<std::uint64_t>(j % 2 == 0 ? 0 : 2);
      id = client.submit("run_atpg", std::move(params));
    }
    ids.push_back(id);
    if (w.serial) await_into(id);
  }
  if (!w.serial)
    for (const std::uint64_t id : ids) await_into(id);

  if (!out.torn) {
    try {
      client.call("shutdown");
    } catch (const std::exception&) {
      out.torn = true;
    }
  }
  out.stats = client.stats();
}

SessionResult run_session(const std::string& schedule, const Workload& w) {
  SessionResult out;
  fp::Registry::instance().reset();
  {
    fp::ScheduleScope fps(schedule);

    svc::ServerOptions sopts;
    sopts.threads = 1;  // one worker: per-domain hit order is replayable
    sopts.queue_capacity = 8;
    if (w.watchdog) {
      sopts.watchdog_stall_seconds = 0.03;
      sopts.watchdog_detach_seconds = 0.05;
      sopts.watchdog_poll_seconds = 0.005;
    }
    svc::Server server(sopts);
    svc::DuplexPair pair = svc::make_byte_duplex();
    std::thread loop([&] { server.serve(*pair.server); });

    {
      svc::ClientOptions copts;
      copts.max_attempts = 4;
      copts.sleep_fn = [](double) {};  // chaos wants retries, not waits
      svc::Client client(*pair.client, copts);
      drive_session(client, w, out);
    }
    pair.client->close();
    loop.join();

    for (const auto& [site, c] : fp::Registry::instance().counts())
      out.counts_dump += site + "=" + std::to_string(c.hits) + "/" +
                         std::to_string(c.fires) + ";";
  }  // ScheduleScope resets the registry for the next session

  check_invariants(out);
  return out;
}

// ---- one TCP chaos session ------------------------------------------------

/// Draws a schedule over the TCP layer's injection sites. Short reads and
/// stalled writes are lossless (they slow bytes down, never drop them);
/// injected resets and accept failures tear the session, which the
/// invariant tolerates — it still demands the tear is CLEAN: the client
/// observes end-of-stream, every unresolved job is tallied, nothing hangs.
std::string make_net_schedule(Rng& rng) {
  const auto num = [&rng](std::uint64_t lo, std::uint64_t hi) {
    return std::to_string(lo + rng.below(hi - lo + 1));
  };
  const std::vector<std::string> net_pool = {
      "net.read.short=always@" + num(1, 7),
      "net.read.short=every:" + num(2, 4) + "@" + num(1, 64),
      "net.write.stall=every:" + num(2, 5),
      "net.write.stall=nth:" + num(1, 6),
      "net.conn.reset=once",
      "net.conn.reset=nth:" + num(2, 40),
      "net.accept.fail=once",
  };
  const std::vector<std::string> worker_pool = {
      "sat.solver.alloc=nth:" + num(1, 8),
      "svc.queue.full=once",
      "svc.server.execute.throw=once",
  };
  std::map<std::string, std::string> by_site;
  const std::string first = net_pool[rng.below(net_pool.size())];
  by_site.emplace(first.substr(0, first.find('=')), first);
  const std::size_t extras = rng.below(3);
  for (std::size_t i = 0; i < extras; ++i) {
    const std::string item =
        rng.below(2) == 0 ? net_pool[rng.below(net_pool.size())]
                          : worker_pool[rng.below(worker_pool.size())];
    by_site.emplace(item.substr(0, item.find('=')), item);
  }
  std::string schedule;
  for (const auto& [site, item] : by_site) {
    (void)site;
    if (!schedule.empty()) schedule += ';';
    schedule += item;
  }
  return schedule;
}

/// The same workload and invariant as run_session, but over a real
/// loopback TCP connection through the netio::NetServer event loop — the
/// full cwatpg_serve --listen stack, injected at the socket layer.
SessionResult run_tcp_session(const std::string& schedule,
                              const Workload& w) {
  SessionResult out;
  fp::Registry::instance().reset();
  {
    fp::ScheduleScope fps(schedule);

    svc::ServerOptions sopts;
    sopts.threads = 1;
    sopts.queue_capacity = 8;
    svc::Server server(sopts);
    netio::NetServer net_server(server);
    std::thread loop([&] { net_server.run(); });

    {
      std::unique_ptr<netio::SocketTransport> transport;
      try {
        transport = std::make_unique<netio::SocketTransport>(
            netio::tcp_connect("127.0.0.1", net_server.port(), 5.0));
      } catch (const std::exception&) {
        out.torn = true;  // accept-side injection can kill the dial itself
      }
      if (transport) {
        // A wedged session must become a torn session, never a hung bench.
        transport->set_read_timeout(10.0);
        svc::ClientOptions copts;
        copts.max_attempts = 4;
        copts.sleep_fn = [](double) {};
        svc::Client client(*transport, copts);
        drive_session(client, w, out);
      }
    }
    net_server.stop();  // no-op when a clean shutdown already ended run()
    loop.join();

    for (const auto& [site, c] : fp::Registry::instance().counts())
      out.counts_dump += site + "=" + std::to_string(c.hits) + "/" +
                         std::to_string(c.fires) + ";";
  }

  check_invariants(out);
  return out;
}

// ---- one cluster chaos session --------------------------------------------

/// Draws a failpoint schedule for the sharded coordinator: always at
/// least one cluster.* site (dropped dispatches, worker deaths eating
/// un-acked replies, truncated shard ingests), optionally mixed with
/// worker-side solver/admission faults. Every site is count-driven, so
/// cluster schedules are wall-clock-free by construction.
std::string make_cluster_schedule(Rng& rng) {
  const auto num = [&rng](std::uint64_t lo, std::uint64_t hi) {
    return std::to_string(lo + rng.below(hi - lo + 1));
  };
  const std::vector<std::string> cluster_pool = {
      "cluster.dispatch.drop=once",
      "cluster.dispatch.drop=nth:" + num(1, 4),
      "cluster.dispatch.drop=prob:0.2:" + num(1, 1u << 20),
      "cluster.worker.eof=once",
      "cluster.worker.eof=nth:" + num(1, 3),
      "cluster.merge.partial=once",
      "cluster.merge.partial=nth:" + num(1, 3),
      "cluster.merge.partial=prob:0.2:" + num(1, 1u << 20),
  };
  const std::vector<std::string> worker_pool = {
      "sat.solver.alloc=nth:" + num(1, 8),
      "sat.solver.spurious_budget=prob:0.5:" + num(1, 1u << 20),
      "svc.queue.full=once",
      "svc.server.execute.throw=once",
  };
  std::map<std::string, std::string> by_site;
  const std::string first = cluster_pool[rng.below(cluster_pool.size())];
  by_site.emplace(first.substr(0, first.find('=')), first);
  const std::size_t extras = rng.below(3);
  for (std::size_t i = 0; i < extras; ++i) {
    const std::string item =
        rng.below(2) == 0 ? cluster_pool[rng.below(cluster_pool.size())]
                          : worker_pool[rng.below(worker_pool.size())];
    by_site.emplace(item.substr(0, item.find('=')), item);
  }
  std::string schedule;
  for (const auto& [site, item] : by_site) {
    (void)site;
    if (!schedule.empty()) schedule += ';';
    schedule += item;
  }
  return schedule;
}

/// One chaos session against a 2-worker sharded cluster: same workload
/// and same zero-lost-jobs invariant as the single-server sessions —
/// every submitted job must reach exactly one terminal response no matter
/// which shards were dropped, truncated, or died with their worker.
SessionResult run_cluster_session(const std::string& schedule,
                                  const Workload& w) {
  SessionResult out;
  fp::Registry::instance().reset();
  {
    fp::ScheduleScope fps(schedule);

    std::vector<std::unique_ptr<svc::Server>> servers;
    std::vector<std::unique_ptr<svc::Transport>> server_sides;
    std::vector<std::thread> server_loops;
    std::vector<svc::Cluster::WorkerEndpoint> endpoints;
    for (std::size_t i = 0; i < 2; ++i) {
      svc::DuplexPair pair = svc::make_duplex();
      svc::ServerOptions sopts;
      sopts.threads = 1;
      sopts.queue_capacity = 8;
      servers.push_back(std::make_unique<svc::Server>(sopts));
      svc::Server* server = servers.back().get();
      svc::Transport* side = pair.server.get();
      server_sides.push_back(std::move(pair.server));
      server_loops.emplace_back([server, side] { server->serve(*side); });
      svc::Cluster::WorkerEndpoint e;
      e.transport = std::move(pair.client);
      e.name = "w" + std::to_string(i);
      endpoints.push_back(std::move(e));
    }

    svc::ClusterOptions copts;
    copts.shard_size = 3;  // several shards per job: real fan-out
    copts.client.max_attempts = 4;
    copts.client.sleep_fn = [](double) {};
    svc::Cluster cluster(std::move(endpoints), copts);
    svc::DuplexPair front = svc::make_duplex();
    std::thread cluster_loop([&] { cluster.serve(*front.server); });

    {
      svc::Client client(*front.client, copts.client);
      std::string key = "never-loaded";
      try {
        obs::Json params = obs::Json::object();
        params["name"] = "chaos";
        params["text"] = w.bench_text;
        const obs::Json resp = client.call("load_circuit", params);
        if (const obs::Json* ok = resp.find("ok");
            ok != nullptr && ok->is_bool() && ok->as_bool())
          key = resp.at("result").at("circuit").at("key").as_string();
      } catch (const std::exception&) {
        out.torn = true;
      }

      std::vector<std::uint64_t> ids;
      for (std::size_t j = 0; j < w.jobs && !out.torn; ++j) {
        obs::Json params = obs::Json::object();
        params["circuit"] = key;
        params["seed"] = static_cast<std::uint64_t>(j) * 7919 + 13;
        params["random_blocks"] =
            static_cast<std::uint64_t>(j % 2 == 0 ? 0 : 2);
        try {
          ids.push_back(client.submit("run_atpg", std::move(params)));
        } catch (const std::exception&) {
          out.torn = true;
        }
      }
      for (const std::uint64_t id : ids) {
        if (out.torn) {
          out.outcomes[id] = "unresolved";
          continue;
        }
        const std::optional<obs::Json> resp = client.await(id);
        if (!resp.has_value()) {
          out.torn = true;
          out.outcomes[id] = "unresolved";
        } else {
          out.outcomes[id] = outcome_of(*resp);
        }
      }
      if (!out.torn) {
        try {
          client.call("shutdown");
        } catch (const std::exception&) {
          out.torn = true;
        }
      }
      out.stats = client.stats();
    }
    front.client->close();
    cluster_loop.join();
    for (std::thread& t : server_loops) t.join();

    for (const auto& [site, c] : fp::Registry::instance().counts())
      out.counts_dump += site + "=" + std::to_string(c.hits) + "/" +
                         std::to_string(c.fires) + ";";
  }

  check_invariants(out);
  return out;
}

std::string summary_of(const SessionResult& r) {
  std::string s;
  for (const auto& [id, outcome] : r.outcomes)
    s += std::to_string(id) + ":" + outcome + ";";
  s += "|sent=" + std::to_string(r.stats.requests_sent);
  s += ",resp=" + std::to_string(r.stats.responses);
  s += ",over=" + std::to_string(r.stats.overloaded);
  s += ",retry=" + std::to_string(r.stats.retries);
  s += ",dup=" + std::to_string(r.stats.duplicate_rejects);
  s += ",serr=" + std::to_string(r.stats.session_errors);
  s += ",torn=" + std::to_string(r.torn ? 1 : 0);
  s += "|" + r.counts_dump;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const ChaosArgs args = parse_chaos_args(argc, argv);
  if (!fp::kEnabled) {
    std::printf("bench_chaos: built with CWATPG_FAILPOINTS=OFF — nothing "
                "to inject, reporting success\n");
    return 0;
  }

  Workload base;
  {
    const net::Network n = net::decompose(gen::comparator(3));
    std::ostringstream text;
    net::write_bench(text, n);
    base.bench_text = text.str();
    base.num_inputs = n.inputs().size();
  }
  base.jobs = args.jobs;

  std::printf("=== bench_chaos: %zu schedules, seed %llu, %zu jobs/session "
              "===\n",
              args.schedules, static_cast<unsigned long long>(args.seed),
              args.jobs);

  std::size_t failures = 0, torn_sessions = 0, unresolved_jobs = 0;
  std::map<std::string, std::size_t> outcome_histogram;

  for (std::size_t s = 0; s < args.schedules; ++s) {
    Rng rng(split_seed(args.seed, s));
    Workload w = base;
    w.watchdog = false;
    const bool timing_ok = s % 4 == 1;
    const bool tear_ok = s % 5 == 3;
    const std::string schedule = make_schedule(
        rng, timing_ok, tear_ok, /*byte_io_ok=*/true, &w.watchdog);
    const SessionResult r = run_session(schedule, w);
    torn_sessions += r.torn ? 1 : 0;
    for (const auto& [id, outcome] : r.outcomes) {
      (void)id;
      ++outcome_histogram[outcome];
      unresolved_jobs += outcome == "unresolved" ? 1 : 0;
    }
    if (!r.violation.empty()) {
      ++failures;
      std::printf("FAIL schedule %zu [%s]: %s\n", s, schedule.c_str(),
                  r.violation.c_str());
    }
  }

  // Cluster campaign: the same lossless invariant with the sharded
  // coordinator in the middle — dropped dispatches, workers dying with
  // un-acked shards, truncated shard replies. A lost or double-counted
  // shard would surface here as an unresolved job or an unknown outcome.
  const std::size_t cluster_schedules =
      std::max<std::size_t>(8, args.schedules / 4);
  std::size_t cluster_torn = 0, cluster_unresolved = 0;
  for (std::size_t s = 0; s < cluster_schedules; ++s) {
    Rng rng(split_seed(args.seed ^ 0xc105'7e12u, s));
    Workload w = base;
    const std::string schedule = make_cluster_schedule(rng);
    const SessionResult r = run_cluster_session(schedule, w);
    cluster_torn += r.torn ? 1 : 0;
    for (const auto& [id, outcome] : r.outcomes) {
      (void)id;
      ++outcome_histogram[outcome];
      cluster_unresolved += outcome == "unresolved" ? 1 : 0;
    }
    if (!r.violation.empty()) {
      ++failures;
      std::printf("FAIL cluster schedule %zu [%s]: %s\n", s,
                  schedule.c_str(), r.violation.c_str());
    }
  }

  // TCP campaign: the same lossless-or-cleanly-torn invariant with the
  // netio::NetServer event loop and a real loopback socket in the middle —
  // short reads, stalled flushes, injected resets and accept failures at
  // the net.* sites. A response lost in the outbox/flush path, or a tear
  // that hangs instead of surfacing as end-of-stream, fails here.
  const std::size_t tcp_schedules =
      std::max<std::size_t>(8, args.schedules / 4);
  std::size_t tcp_torn = 0, tcp_unresolved = 0;
  for (std::size_t s = 0; s < tcp_schedules; ++s) {
    Rng rng(split_seed(args.seed ^ 0x7c9a11e7u, s));
    Workload w = base;
    const std::string schedule = make_net_schedule(rng);
    const SessionResult r = run_tcp_session(schedule, w);
    tcp_torn += r.torn ? 1 : 0;
    for (const auto& [id, outcome] : r.outcomes) {
      (void)id;
      ++outcome_histogram[outcome];
      tcp_unresolved += outcome == "unresolved" ? 1 : 0;
    }
    if (!r.violation.empty()) {
      ++failures;
      std::printf("FAIL net schedule %zu [%s]: %s\n", s, schedule.c_str(),
                  r.violation.c_str());
    }
  }

  // Determinism replay: same schedule + serial workload, twice, compared
  // byte for byte.
  std::size_t replay_mismatches = 0;
  for (std::size_t k = 0; k < args.replay; ++k) {
    Rng rng_a(split_seed(args.seed ^ 0x9e3779b9, k));
    Rng rng_b = rng_a;
    Workload w = base;
    w.serial = true;
    bool unused = false;
    const std::string schedule_a =
        make_schedule(rng_a, /*timing_ok=*/false, /*tear_ok=*/false,
                      /*byte_io_ok=*/false, &unused);
    const std::string schedule_b =
        make_schedule(rng_b, false, false, false, &unused);
    const std::string a = summary_of(run_session(schedule_a, w));
    const std::string b = summary_of(run_session(schedule_b, w));
    if (schedule_a != schedule_b || a != b) {
      ++replay_mismatches;
      std::printf("REPLAY MISMATCH %zu [%s]\n  a: %s\n  b: %s\n", k,
                  schedule_a.c_str(), a.c_str(), b.c_str());
    }
  }

  std::printf("\nsessions: %zu  torn: %zu  unresolved(torn-only): %zu\n",
              args.schedules, torn_sessions, unresolved_jobs);
  std::printf("cluster sessions: %zu  torn: %zu  unresolved(torn-only): "
              "%zu\n",
              cluster_schedules, cluster_torn, cluster_unresolved);
  std::printf("tcp sessions: %zu  torn: %zu  unresolved(torn-only): %zu\n",
              tcp_schedules, tcp_torn, tcp_unresolved);
  for (const auto& [outcome, count] : outcome_histogram)
    std::printf("  %-22s %zu\n", outcome.c_str(), count);
  std::printf("determinism replays: %zu  mismatches: %zu\n", args.replay,
              replay_mismatches);

  if (!args.json.empty()) {
    obs::Json j = obs::Json::object();
    j["schema"] = "cwatpg.chaos_report/1";
    j["schedules"] = static_cast<std::uint64_t>(args.schedules);
    j["seed"] = args.seed;
    j["torn_sessions"] = static_cast<std::uint64_t>(torn_sessions);
    j["unresolved_jobs"] = static_cast<std::uint64_t>(unresolved_jobs);
    j["cluster_sessions"] = static_cast<std::uint64_t>(cluster_schedules);
    j["cluster_torn_sessions"] = static_cast<std::uint64_t>(cluster_torn);
    j["cluster_unresolved_jobs"] =
        static_cast<std::uint64_t>(cluster_unresolved);
    j["tcp_sessions"] = static_cast<std::uint64_t>(tcp_schedules);
    j["tcp_torn_sessions"] = static_cast<std::uint64_t>(tcp_torn);
    j["tcp_unresolved_jobs"] = static_cast<std::uint64_t>(tcp_unresolved);
    j["replays"] = static_cast<std::uint64_t>(args.replay);
    j["replay_mismatches"] =
        static_cast<std::uint64_t>(replay_mismatches);
    j["invariant_failures"] = static_cast<std::uint64_t>(failures);
    obs::Json hist = obs::Json::object();
    for (const auto& [outcome, count] : outcome_histogram)
      hist[outcome] = static_cast<std::uint64_t>(count);
    j["outcomes"] = std::move(hist);
    std::ofstream out(args.json);
    out << j.dump(2) << "\n";
  }

  if (failures > 0 || replay_mismatches > 0) {
    std::printf("bench_chaos: FAILED (%zu invariant failures, %zu replay "
                "mismatches)\n",
                failures, replay_mismatches);
    return 1;
  }
  std::printf("bench_chaos: all invariants held — zero lost responses\n");
  return 0;
}
