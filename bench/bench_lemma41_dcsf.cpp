// Lemma 4.1: distinct consistent sub-formulas per cut, measured.
//
// The engine room of the paper: assigning the first i variables of the
// order can generate at most 2^(2*k_fo*cut_i) distinct consistent
// sub-formulas, however many (2^i) assignments there are. This harness
// prints the full per-level table — naive 2^i, measured DCSF count, and
// the Lemma 4.1 bound — for the worked example and for circuit families
// under good and bad orderings, making visible *why* a small cut-width
// keeps the backtracking tree (and hence ATPG) small.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/mla.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "sat/cache_sat.hpp"
#include "sat/encode.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cwatpg;
  bench::parse_args(argc, argv);
  bench::banner("Lemma 4.1: DCSF counts vs cut profile",
                "paper Lemma 4.1 + the Cut Z illustration of §4.2");

  // --- the worked example ----------------------------------------------------
  {
    const sat::Cnf f = gen::formula41();
    const auto h = gen::fig4a_ordering_a();
    const std::vector<sat::Var> order(h.begin(), h.end());
    sat::CacheSatConfig cfg;
    cfg.track_dcsf = true;
    cfg.use_cache = false;
    cfg.early_sat = false;
    const auto r = sat::cache_sat(f, order, cfg);
    const auto profile =
        core::cut_profile(gen::fig4a_hypergraph(), h);
    const char* names = "abcdefghi";
    std::cout << "Formula 4.1 under ordering A (k_fo = 1):\n";
    Table t({"after", "naive 2^i", "DCSF", "bound 2^(2*cut)"});
    for (std::size_t i = 0; i < r.stats.dcsf_per_level.size(); ++i) {
      const std::uint32_t cut =
          i < profile.size() ? profile[i] : 0;
      t.add_row({std::string(1, names[h[i]]),
                 cell(static_cast<std::size_t>(1) << (i + 1)),
                 cell(r.stats.dcsf_per_level[i]),
                 cell(static_cast<std::size_t>(1) << (2 * cut))});
    }
    t.print(std::cout);
    std::cout << "paper (§4.2): after {b,c,f,a,h} only the h-i net is cut, "
                 "so at most 2^2 sub-formulas exist — row 'h' above.\n\n";
  }

  // --- circuit families: max DCSF/bound slack per ordering --------------------
  Table t({"circuit", "ordering", "W", "max log2 DCSF", "max log2 bound",
           "tree nodes"});
  auto measure = [&](const net::Network& n, const core::Ordering& h,
                     const std::string& label) {
    const sat::Cnf f = sat::encode_circuit_sat(n);
    const std::vector<sat::Var> order(h.begin(), h.end());
    sat::CacheSatConfig cfg;
    cfg.track_dcsf = true;
    cfg.use_cache = false;
    cfg.early_sat = false;
    cfg.max_nodes = 20'000'000;
    const auto r = sat::cache_sat(f, order, cfg);
    if (r.status == sat::SolveStatus::kUnknown) {
      t.add_row({n.name(), label, cell(core::cut_width(n, h)), ">budget",
                 "-", ">2e7"});
      return;
    }
    const auto profile = core::cut_profile(net::to_hypergraph(n), h);
    double max_dcsf = 0, max_bound = 0;
    for (std::size_t i = 0; i < r.stats.dcsf_per_level.size(); ++i) {
      max_dcsf = std::max(
          max_dcsf,
          std::log2(static_cast<double>(r.stats.dcsf_per_level[i])));
      const std::uint32_t cut = i < profile.size() ? profile[i] : 0;
      max_bound =
          std::max(max_bound, core::lemma41_log2_bound(n.max_fanout(), cut));
    }
    t.add_row({n.name(), label, cell(core::cut_width(n, h)),
               cell(max_dcsf, 1), cell(max_bound, 1), cell(r.stats.nodes)});
  };

  for (const net::Network& n :
       {gen::c17(), gen::and_or_tree(20, 2),
        net::decompose(gen::ripple_carry_adder(3)),
        net::decompose(gen::parity_tree(7))}) {
    measure(n, core::mla(n).order, "MLA");
    core::Ordering rev = core::identity_ordering(n.node_count());
    std::reverse(rev.begin(), rev.end());
    measure(n, rev, "reverse");
  }
  t.print(std::cout);
  std::cout << "\nreading: measured DCSF counts respect the bound "
               "everywhere; low-width orderings compress exponentially "
               "many assignments into handfuls of sub-formulas, which is "
               "exactly what the cache exploits.\n";
  return 0;
}
