// Figure 1: "Results of TEGUS on ATPG-SAT instances".
//
// The paper ran TEGUS over all faults of the MCNC91 + ISCAS85 suites
// (~11,000 SAT instances, some over 15,000 variables) and scatter-plotted
// per-instance solve time against instance size: over 90% of instances
// solved in under 1/100th of a second, with the remainder growing roughly
// cubically. This harness regenerates that experiment on the synthetic
// suites: it prints the percentile table behind the ">90% under 10 ms"
// claim, a size-bucketed mean/max-time table (the scatter's shape), and
// the fit comparison on the slow tail.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "bench_report.hpp"
#include "fault/parallel_atpg.hpp"
#include "fault/tegus.hpp"
#include "gen/suites.hpp"
#include "obs/report.hpp"
#include "util/curvefit.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cwatpg;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Figure 1: SAT-based ATPG instance times",
                "paper Fig. 1 — time vs instance size, percentile claim");

  gen::SuiteOptions suite_opts;
  suite_opts.scale = args.scale;
  suite_opts.seed = args.seed;

  std::vector<double> vars, times_ms;
  std::size_t total_faults = 0;
  std::size_t sat_instances = 0, unsat_instances = 0;
  std::vector<obs::RunReport> reports;  ///< one RunReport per circuit

  // --threads=N (N > 1; 0 = auto) runs the fault-parallel engine; the
  // per-instance scatter (sat_vars, statuses) is byte-identical to the
  // serial engine, only the wall clock changes. Per-worker CDCL counters
  // aggregate back into the same per-outcome SolverStats either way.
  // --engine=incremental swaps in the shared-miter engine: same
  // classifications, but the scatter's instance "size" becomes the one
  // shared miter's and solve times reflect learnt-clause reuse — the
  // reuse-on-vs-off headline comparison.
  const bool incremental = args.engine == "incremental";
  auto run_suite = [&](const std::vector<net::Network>& suite,
                       const char* name) {
    for (const net::Network& n : suite) {
      fault::AtpgOptions opts;
      // Disable dropping: the paper's datapoints are one SAT instance per
      // fault.
      opts.random_blocks = 0;
      opts.drop_by_simulation = false;
      if (incremental) opts.engine = fault::AtpgEngine::kIncremental;
      fault::AtpgResult r;
      fault::ParallelStats pstats;
      obs::ReportOptions ropts;
      ropts.label = name;
      ropts.seed = args.seed;
      ropts.engine = args.engine == "per-fault" ? "serial" : args.engine;
      if (args.threads > 1) {
        fault::ParallelAtpgOptions popts;
        popts.base = opts;
        popts.num_threads = args.threads;
        r = fault::run_atpg_parallel(n, popts, &pstats);
        ropts.engine = incremental ? "parallel-incremental" : "parallel";
        ropts.threads = args.threads;
        ropts.parallel = &pstats;
      } else {
        r = fault::run_atpg(n, opts);
      }
      reports.push_back(obs::build_run_report(n, r, ropts));
      total_faults += r.outcomes.size();
      for (const auto& o : r.outcomes) {
        if (o.sat_vars == 0) continue;
        vars.push_back(static_cast<double>(o.sat_vars));
        times_ms.push_back(o.solve_seconds * 1e3);
        if (o.status == fault::FaultStatus::kDetected)
          ++sat_instances;
        else if (o.status == fault::FaultStatus::kUntestable)
          ++unsat_instances;
      }
    }
    std::cout << "suite " << name << " done: cumulative instances "
              << vars.size() << "\n";
  };

  run_suite(gen::mcnc_like_suite(suite_opts), "MCNC91-like");
  run_suite(gen::iscas85_like_suite(suite_opts), "ISCAS85-like");

  std::cout << "\nATPG-SAT instances: " << vars.size() << " (from "
            << total_faults << " collapsed faults; " << sat_instances
            << " SAT / " << unsat_instances << " UNSAT)\n";
  const Summary size_summary = summarize(vars);
  std::cout << "instance size (vars): median " << size_summary.median
            << ", p90 " << size_summary.p90 << ", max " << size_summary.max
            << "\n\n";

  // The paper's headline: fraction solved under 10 ms.
  Table pct({"threshold (ms)", "fraction solved below"});
  for (double t : {0.1, 1.0, 10.0, 100.0})
    pct.add_row({cell(t, 1), cell(fraction_below(times_ms, t), 4)});
  pct.print(std::cout);
  std::cout << "paper claim: >90% of instances below 10 ms\n\n";

  // Scatter shape: size-bucketed solve time.
  Table scatter({"mean vars", "mean ms", "max ms", "instances"});
  for (const Bucket& b : bucketize(vars, times_ms, 10))
    scatter.add_row({cell(b.x_mean, 0), cell(b.y_mean, 4), cell(b.y_max, 3),
                     cell(b.count)});
  scatter.print(std::cout);

  // Tail growth: fit time-vs-size on the slowest decile, compare against
  // cubic (the paper's Williams-Parker O(n^3) reference).
  std::vector<double> tail_x, tail_y;
  {
    std::vector<double> sorted(times_ms);
    std::sort(sorted.begin(), sorted.end());
    const double cutoff = percentile_sorted(sorted, 90.0);
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if (times_ms[i] >= cutoff && times_ms[i] > 0) {
        tail_x.push_back(vars[i]);
        tail_y.push_back(times_ms[i]);
      }
    }
  }
  if (!bench::write_csv(args.csv, "sat_vars", "solve_ms", vars, times_ms))
    return 1;
  obs::Json extra = obs::Json::object();
  extra["instances"] = static_cast<std::uint64_t>(vars.size());
  extra["sat_instances"] = static_cast<std::uint64_t>(sat_instances);
  extra["unsat_instances"] = static_cast<std::uint64_t>(unsat_instances);
  extra["fraction_below_10ms"] = fraction_below(times_ms, 10.0);
  if (!bench::emit_report("bench_fig1_tegus", args, reports,
                          std::move(extra)))
    return 1;
  std::cout << "\nslow-tail (top decile, " << tail_x.size()
            << " instances) growth fits:\n";
  if (tail_x.size() >= 8) {
    for (const Fit& f : fit_all(tail_x, tail_y))
      std::cout << "  " << to_string(f.model) << ": " << f.describe()
                << "  (RSS " << f.rss << ", R2 " << f.r_squared << ")\n";
    const Fit power = fit_curve(tail_x, tail_y, FitModel::kPower);
    std::cout << "  power-law exponent " << power.b
              << " (paper: tail roughly cubic, exponent <= ~3)\n";
  } else {
    std::cout << "  (tail too small at this scale)\n";
  }
  return 0;
}
