// Which topology metric predicts ATPG effort: SCOAP or cut-width?
//
// §3.2 cites Fujiwara's controllability/observability complexity work; the
// pre-cut-width practice was to predict fault difficulty with SCOAP
// scores. This harness measures, per fault of the suite circuits: the
// SCOAP detect cost, the C_psi^sub cut-width estimate, and the actual
// solver effort (CDCL conflicts + solve time) — then reports effort
// bucketed by each predictor and simple log-log correlations. The paper's
// thesis in comparative form: on SAT-based ATPG the cut-width tracks
// solver effort while SCOAP barely registers — structure beats local
// heuristics.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/mla.hpp"
#include "fault/tegus.hpp"
#include "fault/testability.hpp"
#include "gen/suites.hpp"
#include "netlist/cone.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

double correlation(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  const std::size_t n = xs.size();
  if (n < 3) return 0.0;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  return sxx > 0 && syy > 0 ? sxy / std::sqrt(sxx * syy) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cwatpg;
  bench::BenchArgs defaults;
  defaults.stride = 5;
  const bench::BenchArgs args = bench::parse_args(argc, argv, defaults);
  bench::banner("Testability predictors: SCOAP vs cut-width vs reality",
                "extends §3.2/§5.2 — difficulty prediction compared");

  gen::SuiteOptions opts;
  opts.scale = args.scale;
  opts.seed = args.seed;

  core::MlaConfig mla_cfg;
  mla_cfg.partition.fm.num_starts = 2;
  mla_cfg.partition.fm.max_passes = 8;

  std::vector<double> scoap_scores, widths, conflicts, micros;
  for (const net::Network& n : gen::iscas85_like_suite(opts)) {
    const fault::Scoap scoap = fault::compute_scoap(n);
    const auto faults = fault::collapsed_fault_list(n);
    for (std::size_t i = 0; i < faults.size(); i += args.stride) {
      const std::uint32_t cost = scoap.detect_cost(n, faults[i]);
      if (cost == fault::Scoap::kUnreachable) continue;
      fault::Pattern test;
      const fault::FaultOutcome outcome =
          fault::generate_test(n, faults[i], {}, test);
      if (outcome.sat_vars == 0) continue;
      try {
        const net::SubCircuit cone =
            net::fault_cone(n, fault::fault_cone_root(faults[i]));
        widths.push_back(
            static_cast<double>(core::mla(cone.circuit, mla_cfg).width));
      } catch (const std::invalid_argument&) {
        continue;
      }
      scoap_scores.push_back(static_cast<double>(cost));
      conflicts.push_back(
          static_cast<double>(outcome.solver_stats.conflicts + 1));
      micros.push_back(outcome.solve_seconds * 1e6);
    }
  }

  std::cout << scoap_scores.size() << " faults measured\n\n";

  std::cout << "solver conflicts bucketed by SCOAP detect cost:\n";
  Table by_scoap({"mean SCOAP", "mean conflicts", "mean us", "faults"});
  {
    const auto buckets = bucketize(scoap_scores, conflicts, 6);
    const auto time_buckets = bucketize(scoap_scores, micros, 6);
    for (std::size_t i = 0; i < buckets.size(); ++i)
      by_scoap.add_row({cell(buckets[i].x_mean, 0),
                        cell(buckets[i].y_mean - 1, 2),
                        cell(time_buckets[i].y_mean, 0),
                        cell(buckets[i].count)});
  }
  by_scoap.print(std::cout);

  std::cout << "\nsolver conflicts bucketed by cone cut-width:\n";
  Table by_width({"mean W", "mean conflicts", "mean us", "faults"});
  {
    const auto buckets = bucketize(widths, conflicts, 6);
    const auto time_buckets = bucketize(widths, micros, 6);
    for (std::size_t i = 0; i < buckets.size(); ++i)
      by_width.add_row({cell(buckets[i].x_mean, 1),
                        cell(buckets[i].y_mean - 1, 2),
                        cell(time_buckets[i].y_mean, 0),
                        cell(buckets[i].count)});
  }
  by_width.print(std::cout);

  // Log-space correlations.
  auto logged = [](std::vector<double> v) {
    for (double& x : v) x = std::log2(x + 1);
    return v;
  };
  std::cout << "\nlog-log Pearson correlation with solver conflicts:\n"
            << "  SCOAP detect cost: "
            << cell(correlation(logged(scoap_scores), logged(conflicts)), 3)
            << "\n  cone cut-width:    "
            << cell(correlation(logged(widths), logged(conflicts)), 3)
            << "\n";
  std::cout << "\nreading: on SAT-based ATPG the classical SCOAP score "
               "carries almost no signal about solver effort, while the "
               "cone cut-width tracks it cleanly — empirical support for "
               "the paper's move from per-fault heuristics to the "
               "structural, provable quantity of Theorem 4.1.\n";
  return 0;
}
