// Ablation: which mechanism makes ATPG-SAT easy — the cache, the ordering,
// or both?
//
// The paper's tractability argument needs two ingredients: the sub-formula
// cache (Algorithm 1) and a low-cut-width static variable order. This
// ablation crosses {cache on, cache off} x {MLA order, topological order,
// reverse order, random order} on CIRCUIT-SAT instances and reports
// backtracking-tree sizes: only cache+low-width achieves the polynomial
// behaviour the paper predicts.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/mla.hpp"
#include "gen/hutton.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "sat/cache_sat.hpp"
#include "sat/encode.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cwatpg;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Ablation: cache x variable order",
                "supports §4 — both ingredients of Theorem 4.1");

  const auto s = [&](double v) {
    return std::max<std::size_t>(4, static_cast<std::size_t>(v * args.scale));
  };

  std::vector<std::pair<std::string, net::Network>> circuits;
  circuits.emplace_back("tree", gen::and_or_tree(s(64), 2));
  circuits.emplace_back("adder",
                        net::decompose(gen::ripple_carry_adder(s(8))));
  circuits.emplace_back("parity", net::decompose(gen::parity_tree(s(16))));
  {
    gen::HuttonParams p;
    p.num_gates = s(70);
    p.num_inputs = 10;
    p.num_outputs = 4;
    p.seed = args.seed;
    circuits.emplace_back("random", net::decompose(gen::hutton_random(p)));
  }

  for (const auto& [name, n] : circuits) {
    const core::MlaResult m = core::mla(n);
    const sat::Cnf f = sat::encode_circuit_sat(n);

    std::vector<std::pair<std::string, core::Ordering>> orders;
    orders.emplace_back(
        "MLA (W=" + std::to_string(m.width) + ")", m.order);
    orders.emplace_back(
        "topological (W=" +
            std::to_string(core::cut_width(
                n, core::identity_ordering(n.node_count()))) +
            ")",
        core::identity_ordering(n.node_count()));
    {
      core::Ordering rev = core::identity_ordering(n.node_count());
      std::reverse(rev.begin(), rev.end());
      orders.emplace_back(
          "reverse (W=" + std::to_string(core::cut_width(n, rev)) + ")",
          rev);
    }
    {
      Rng rng(args.seed);
      core::Ordering rnd = core::identity_ordering(n.node_count());
      for (std::size_t i = rnd.size(); i > 1; --i)
        std::swap(rnd[i - 1], rnd[rng.below(i)]);
      orders.emplace_back(
          "random (W=" + std::to_string(core::cut_width(n, rnd)) + ")",
          rnd);
    }

    std::cout << name << " (n=" << n.node_count() << "):\n";
    Table t({"order", "cache nodes", "no-cache nodes", "cache hits"});
    for (const auto& [order_name, h] : orders) {
      const std::vector<sat::Var> order(h.begin(), h.end());
      sat::CacheSatConfig with, without;
      with.early_sat = without.early_sat = false;
      with.max_nodes = 20'000'000;
      without.use_cache = false;
      without.max_nodes = 20'000'000;
      const auto a = sat::cache_sat(f, order, with);
      const auto b = sat::cache_sat(f, order, without);
      auto nodes_cell = [](const sat::CacheSatResult& r) {
        return r.status == sat::SolveStatus::kUnknown
                   ? std::string(">2e7 (aborted)")
                   : cell(r.stats.nodes);
      };
      t.add_row({order_name, nodes_cell(a), nodes_cell(b),
                 cell(a.stats.cache_hits)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "reading: low-width orders shrink trees dramatically; the "
               "cache compounds the effect (Theorem 4.1 needs both).\n";
  return 0;
}
