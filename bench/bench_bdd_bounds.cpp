// §6: BDDs vs CIRCUIT-SAT backtracking — width bounds compared.
//
// Both a BDD and a backtracking tree carve up the Boolean space; the paper
// contrasts McMillan's BDD bound n*2^(w_f*2^(w_r)) (exponential in the
// forward width, DOUBLE exponential in the reverse width, on a *directed*
// arrangement) with its own single-exponential 2^(2*k_fo*W) bound on an
// *undirected* arrangement. This harness measures, per circuit:
// actual BDD sizes (good and bad input orders), directed widths and the
// McMillan bound under a topological arrangement (w_r = 0), the undirected
// cut-width and the Theorem 4.1 bound, and the measured Algorithm 1 tree.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bdd/bdd.hpp"
#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/mla.hpp"
#include "gen/hutton.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "sat/cache_sat.hpp"
#include "sat/encode.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cwatpg;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("BDD size bounds vs backtracking bounds (§6)",
                "paper §6 — Berman/McMillan vs cut-width");

  const auto s = [&](double v) {
    return std::max<std::size_t>(3, static_cast<std::size_t>(v * args.scale));
  };

  Table t({"circuit", "n", "#PI", "BDD (PI order)", "BDD (MLA order)",
           "w_f/w_r topo", "log2 McM", "W", "log2 Thm4.1",
           "log2 Alg1 tree"});

  auto measure = [&](const net::Network& n, const std::string& name) {
    const std::size_t pis = n.inputs().size();

    // BDD under natural PI order.
    std::string bdd_natural = "-";
    try {
      bdd::Manager m(static_cast<std::uint32_t>(pis), 2'000'000);
      const auto outs = bdd::build_output_bdds(m, n);
      std::size_t total = 0;
      for (auto r : outs) total = std::max(total, m.size(r));
      bdd_natural = cell(total);
    } catch (const bdd::Manager::NodeLimitExceeded&) {
      bdd_natural = ">2e6";
    }

    // BDD under an MLA-derived PI order (PIs in MLA arrangement order).
    const core::MlaResult mla = core::mla(n);
    std::string bdd_mla = "-";
    {
      std::vector<std::uint32_t> level_of_pi(pis);
      std::vector<std::uint32_t> pi_rank(n.node_count(),
                                         static_cast<std::uint32_t>(-1));
      std::uint32_t next = 0;
      for (net::NodeId v : mla.order)
        if (n.type(v) == net::GateType::kInput) pi_rank[v] = next++;
      for (std::size_t i = 0; i < pis; ++i)
        level_of_pi[i] = pi_rank[n.inputs()[i]];
      try {
        bdd::Manager m(static_cast<std::uint32_t>(pis), 2'000'000);
        const auto outs = bdd::build_output_bdds(m, n, level_of_pi);
        std::size_t total = 0;
        for (auto r : outs) total = std::max(total, m.size(r));
        bdd_mla = cell(total);
      } catch (const bdd::Manager::NodeLimitExceeded&) {
        bdd_mla = ">2e6";
      }
    }

    // Directed widths under the topological (id) arrangement: w_r = 0.
    const auto topo = core::identity_ordering(n.node_count());
    const bdd::DirectedWidths dw = bdd::directed_widths(n, topo);
    const double mcm = bdd::mcmillan_log2_bound(n.inputs().size(), dw);

    // Cut-width bound and measured Algorithm 1 tree under MLA order.
    const std::uint32_t w = mla.width;
    const double thm41 =
        core::theorem41_log2_bound(n.node_count(), n.max_fanout(), w);
    const sat::Cnf f = sat::encode_circuit_sat(n);
    sat::CacheSatConfig cfg;
    cfg.early_sat = false;
    cfg.max_nodes = 4'000'000;
    const std::vector<sat::Var> order(mla.order.begin(), mla.order.end());
    const auto run = sat::cache_sat(f, order, cfg);
    const std::string tree =
        run.status == sat::SolveStatus::kUnknown
            ? std::string(">22")
            : cell(std::log2(static_cast<double>(
                       std::max<std::uint64_t>(run.stats.nodes, 1))),
                   1);

    t.add_row({name, cell(n.node_count()), cell(pis), bdd_natural, bdd_mla,
               cell(dw.forward) + "/" + cell(dw.reverse), cell(mcm, 0),
               cell(w), cell(thm41, 0), tree});
  };

  measure(gen::c17(), "c17");
  measure(gen::fig4a_network(), "fig4a");
  measure(net::decompose(gen::ripple_carry_adder(s(12))), "adder");
  measure(net::decompose(gen::parity_tree(s(24))), "parity");
  measure(gen::and_or_tree(s(48), 2), "tree");
  measure(net::decompose(gen::comparator(s(10))), "comparator");
  {
    gen::HuttonParams p;
    p.num_gates = s(120);
    p.num_inputs = std::max<std::size_t>(6, s(14));
    p.num_outputs = 4;
    p.seed = args.seed;
    measure(net::decompose(gen::hutton_random(p)), "random");
  }
  // The classic BDD blowup: multipliers have exponential BDDs regardless
  // of order — and correspondingly large cut-width (the paper excluded
  // C6288 from its MLA runs).
  measure(net::decompose(gen::array_multiplier(
              std::clamp<std::size_t>(s(8), 4, 10))),
          "multiplier");
  t.print(std::cout);

  std::cout <<
      "\nreading: both bounds are driven by a width, but differently —\n"
      "McMillan's is double-exponential in the reverse width (and needs a\n"
      "good *directed* arrangement; topological gives w_r = 0), while\n"
      "Theorem 4.1 is single-exponential in the undirected cut-width.\n"
      "BDD sizes track function structure (multipliers blow up even when\n"
      "cut-width is moderate); backtracking trees track the topology.\n";
  return 0;
}
