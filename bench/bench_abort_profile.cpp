// Abort profile under budgets: what the engine gives up on, and what the
// escalation ladder buys back.
//
// Two experiments on array multipliers — the family whose XOR-heavy carry
// structure produces the hardest ATPG-SAT instances in this repo (the
// outliers of the paper's Figure 1 scatter):
//
//   1. Conflict-cap sweep. Run ATPG with per-solve conflict caps from 1 to
//      256, first with the escalation ladder disabled (what a bare
//      budgeted solver aborts), then with the ladder + PODEM fallback on
//      (what survives after geometric retries and the structural engine).
//      The gap between the two "aborted" columns is the ladder's yield.
//
//   2. Deadline sweep. Run the whole flow under wall-clock deadlines from
//      50 ms up on a harder multiplier and report how much of the fault
//      list is classified before the budget fires — the anytime-behaviour
//      curve of the engine (processed faults and coverage vs. deadline),
//      with `interrupted` confirming the run was cut, not finished.
//
// --threads=N (N > 1; 0 = auto) runs the deadline sweep on the parallel
// engine instead of the serial one (same budget plumbing, same
// partial-result contract).
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "bench_report.hpp"
#include "fault/parallel_atpg.hpp"
#include "fault/tegus.hpp"
#include "gen/structured.hpp"
#include "netlist/decompose.hpp"
#include "obs/report.hpp"
#include "util/budget.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace cwatpg;

/// Runs the configured engine and appends a labelled RunReport.
fault::AtpgResult run(const net::Network& circuit,
                      const fault::AtpgOptions& base, std::size_t threads,
                      std::uint64_t seed, const std::string& label,
                      std::vector<obs::RunReport>& reports) {
  obs::ReportOptions ropts;
  ropts.label = label;
  ropts.seed = seed;
  fault::AtpgResult result;
  fault::ParallelStats pstats;
  if (threads <= 1) {
    result = fault::run_atpg(circuit, base);
  } else {
    fault::ParallelAtpgOptions popts;
    popts.base = base;
    popts.num_threads = threads;
    result = fault::run_atpg_parallel(circuit, popts, &pstats);
    ropts.engine = "parallel";
    ropts.threads = threads;
    ropts.parallel = &pstats;
  }
  reports.push_back(obs::build_run_report(circuit, result, ropts));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Abort profile: conflict caps, deadlines, escalation",
                "beyond the paper — graceful degradation on the Figure-1 "
                "outliers");

  // scale 0.35 (default) -> a 5-bit multiplier for the cap sweep; the
  // deadline sweep uses a wider one so a sub-second deadline really bites.
  const int width = std::clamp(
      static_cast<int>(std::lround(args.scale * 14.0)), 3, 8);
  const net::Network circuit = net::decompose(gen::array_multiplier(width));
  std::cout << "cap sweep circuit: " << circuit.name() << " ("
            << circuit.gate_count() << " gates)\n\n";

  // ---- 1. conflict-cap sweep: bare caps vs. the escalation ladder ----
  std::vector<obs::RunReport> reports;
  Table caps({"max_conflicts", "aborted", "coverage%", "s", "aborted+ladder",
              "escalated", "coverage%+ladder", "s+ladder"});
  std::vector<double> xs, ys;
  for (std::uint64_t cap : {1ull, 4ull, 16ull, 64ull, 256ull}) {
    fault::AtpgOptions bare;
    bare.random_blocks = 0;  // make the SAT phase carry every fault
    bare.solver.max_conflicts = cap;
    bare.escalation_rounds = 0;
    bare.podem_fallback = false;
    bare.seed = args.seed;
    Timer bare_timer;
    const fault::AtpgResult plain =
        run(circuit, bare, args.threads, args.seed,
            "cap=" + std::to_string(cap) + "/bare", reports);
    const double bare_s = bare_timer.seconds();

    fault::AtpgOptions ladder = bare;
    ladder.escalation_rounds = 3;
    ladder.podem_fallback = true;
    Timer ladder_timer;
    const fault::AtpgResult rescued =
        run(circuit, ladder, args.threads, args.seed,
            "cap=" + std::to_string(cap) + "/ladder", reports);
    const double ladder_s = ladder_timer.seconds();

    caps.add_row({cell(cap), cell(plain.num_aborted),
                  cell(plain.fault_coverage() * 100, 2), cell(bare_s, 3),
                  cell(rescued.num_aborted), cell(rescued.num_escalated),
                  cell(rescued.fault_coverage() * 100, 2),
                  cell(ladder_s, 3)});
    xs.push_back(static_cast<double>(cap));
    ys.push_back(rescued.fault_coverage() * 100);
  }
  caps.print(std::cout);
  std::cout << "\n";
  if (!bench::write_csv(args.csv, "max_conflicts", "ladder_coverage_pct", xs,
                        ys))
    return 1;

  // ---- 2. deadline sweep: the anytime curve --------------------------
  const net::Network hard =
      net::decompose(gen::array_multiplier(std::min(width + 3, 8)));
  std::cout << "deadline sweep circuit: " << hard.name() << " ("
            << hard.gate_count() << " gates), engine: "
            << (args.threads <= 1
                    ? std::string("serial")
                    : std::to_string(args.threads) + " threads")
            << "\n\n";

  Table deadlines({"deadline_s", "processed", "undetermined", "coverage%",
                   "interrupted", "wall_s"});
  for (double deadline : {0.05, 0.1, 0.2, 0.5, 1.0}) {
    Budget budget;
    budget.set_deadline_after(deadline);
    fault::AtpgOptions opts;
    opts.budget = &budget;
    opts.seed = args.seed;
    // No random phase: the SAT pass carries all faults, so the deadline
    // truncates the fault list instead of just the last hard solve and
    // the anytime curve (processed vs deadline) is actually visible.
    opts.random_blocks = 0;
    Timer timer;
    const fault::AtpgResult r =
        run(hard, opts, args.threads, args.seed,
            "deadline=" + std::to_string(deadline), reports);
    const double wall = timer.seconds();
    deadlines.add_row(
        {cell(deadline, 2), cell(r.outcomes.size() - r.num_undetermined),
         cell(r.num_undetermined), cell(r.fault_coverage() * 100, 2),
         r.interrupted ? "yes" : "no", cell(wall, 3)});
  }
  deadlines.print(std::cout);
  std::cout << "\nreading: the processed count grows with the deadline while"
               "\nevery partial result stays internally consistent; a row"
               "\nwith interrupted=no finished before its deadline.\n";
  if (!bench::emit_report("bench_abort_profile", args, reports)) return 1;
  return 0;
}
