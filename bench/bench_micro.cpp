// google-benchmark microbenchmarks for the performance-critical kernels:
// CNF encoding, CDCL solving of ATPG-SAT miters, unit propagation load,
// fault simulation, FM bisection, cut-profile evaluation, and the
// Algorithm 1 engine. These guard the constants behind the experiment
// harnesses.
#include <benchmark/benchmark.h>

#include "core/bounds.hpp"
#include "core/cutwidth.hpp"
#include "core/mla.hpp"
#include "fault/fsim.hpp"
#include "fault/tegus.hpp"
#include "gen/hutton.hpp"
#include "gen/structured.hpp"
#include "netlist/decompose.hpp"
#include "partition/multilevel.hpp"
#include "sat/cache_sat.hpp"
#include "sat/encode.hpp"
#include "util/rng.hpp"

namespace {

using namespace cwatpg;

net::Network test_circuit(std::size_t gates) {
  gen::HuttonParams p;
  p.num_gates = gates;
  p.num_inputs = std::max<std::size_t>(8, gates / 10);
  p.num_outputs = std::max<std::size_t>(4, gates / 20);
  p.seed = 42;
  return net::decompose(gen::hutton_random(p));
}

void BM_EncodeCircuitSat(benchmark::State& state) {
  const net::Network n = test_circuit(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(sat::encode_circuit_sat(n));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n.node_count()));
}
BENCHMARK(BM_EncodeCircuitSat)->Arg(200)->Arg(1000)->Arg(4000);

void BM_CdclCircuitSat(benchmark::State& state) {
  const net::Network n = test_circuit(static_cast<std::size_t>(state.range(0)));
  const sat::Cnf f = sat::encode_circuit_sat(n);
  for (auto _ : state) {
    const auto r = sat::solve_cnf(f);
    benchmark::DoNotOptimize(r.status);
  }
}
BENCHMARK(BM_CdclCircuitSat)->Arg(200)->Arg(1000)->Arg(4000);

void BM_AtpgSingleFault(benchmark::State& state) {
  const net::Network n = test_circuit(static_cast<std::size_t>(state.range(0)));
  const auto faults = fault::collapsed_fault_list(n);
  const fault::StuckAtFault f = faults[faults.size() / 2];
  for (auto _ : state) {
    fault::Pattern test;
    const auto outcome = fault::generate_test(n, f, {}, test);
    benchmark::DoNotOptimize(outcome.status);
  }
}
BENCHMARK(BM_AtpgSingleFault)->Arg(200)->Arg(1000);

void BM_FaultSimulate64(benchmark::State& state) {
  const net::Network n = test_circuit(static_cast<std::size_t>(state.range(0)));
  const auto faults = fault::collapsed_fault_list(n);
  Rng rng(7);
  std::vector<fault::Pattern> patterns;
  for (int i = 0; i < 64; ++i) {
    fault::Pattern p(n.inputs().size());
    for (auto&& b : p) b = rng.chance(0.5);
    patterns.push_back(std::move(p));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::fault_simulate(n, faults, patterns));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(faults.size()) * 64);
}
BENCHMARK(BM_FaultSimulate64)->Arg(200)->Arg(1000);

void BM_MultilevelBisect(benchmark::State& state) {
  const net::Network n = test_circuit(static_cast<std::size_t>(state.range(0)));
  const net::Hypergraph hg = net::to_hypergraph(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(part::multilevel_bisect(hg));
  }
}
BENCHMARK(BM_MultilevelBisect)->Arg(500)->Arg(2000);

void BM_CutProfile(benchmark::State& state) {
  const net::Network n = test_circuit(static_cast<std::size_t>(state.range(0)));
  const net::Hypergraph hg = net::to_hypergraph(n);
  const auto order = core::identity_ordering(hg.num_vertices);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::cut_profile(hg, order));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(hg.num_edges()));
}
BENCHMARK(BM_CutProfile)->Arg(1000)->Arg(10000);

void BM_Mla(benchmark::State& state) {
  const net::Network n = test_circuit(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::mla(n));
  }
}
BENCHMARK(BM_Mla)->Arg(300)->Arg(1200);

void BM_CacheSatTree(benchmark::State& state) {
  const net::Network n =
      gen::and_or_tree(static_cast<std::size_t>(state.range(0)), 2);
  const sat::Cnf f = sat::encode_circuit_sat(n);
  const auto h = core::tree_ordering(n);
  const std::vector<sat::Var> order(h.begin(), h.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sat::cache_sat(f, order));
  }
}
BENCHMARK(BM_CacheSatTree)->Arg(32)->Arg(128);

void BM_Decompose(benchmark::State& state) {
  const net::Network n = gen::array_multiplier(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::decompose(n));
  }
}
BENCHMARK(BM_Decompose)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
