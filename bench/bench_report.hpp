// Shared --json=FILE emission for the bench harness.
//
// Every bench binary that performs ATPG runs funnels its results through
// emit_report(): one obs::RunReport per (circuit, configuration) run, all
// wrapped in a single "cwatpg.bench_report/1" JSON object together with
// the parsed BenchArgs and an aggregate produced by obs::merge_runs().
// The point is comparability — every bench emits the same shape, so a CI
// job (or EXPERIMENTS.md's perf-trajectory recipe) can diff artifacts
// across commits without per-bench parsers.
//
// Layout:
//   {
//     "schema":    "cwatpg.bench_report/1",
//     "bench":     "bench_fig1_tegus",
//     "scale":     0.35, "stride": 1, "seed": 99, "threads": 1,
//     "aggregate": { <cwatpg.run_report/1> },   // merge_runs over "runs"
//     "runs":      [ { <cwatpg.run_report/1> }, ... ],
//     "extra":     { ... }                      // bench-specific numbers
//   }
#pragma once

#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <string_view>

#include "bench_common.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"

namespace cwatpg::bench {

inline constexpr const char* kBenchReportSchema = "cwatpg.bench_report/1";

/// Builds the bench_report JSON object (see header comment for layout).
inline obs::Json build_bench_report(std::string_view bench_name,
                                    const BenchArgs& args,
                                    std::span<const obs::RunReport> runs,
                                    obs::Json extra = obs::Json::object()) {
  obs::Json j = obs::Json::object();
  j["schema"] = kBenchReportSchema;
  j["bench"] = bench_name;
  j["scale"] = args.scale;
  j["stride"] = static_cast<std::uint64_t>(args.stride);
  j["seed"] = args.seed;
  j["threads"] = static_cast<std::uint64_t>(args.threads);
  j["aggregate"] = obs::merge_runs(runs).to_json();
  obs::Json run_array = obs::Json::array();
  for (const obs::RunReport& r : runs) run_array.push_back(r.to_json());
  j["runs"] = std::move(run_array);
  j["extra"] = std::move(extra);
  return j;
}

/// Writes the canonical bench report to args.json. Returns false (after
/// reporting to stderr) when the file cannot be opened or the write fails;
/// trivially succeeds when --json= was not given. Benches turn a false
/// return into a nonzero exit — a requested artifact that cannot be
/// produced must not look like success to the caller collecting it.
inline bool emit_report(std::string_view bench_name, const BenchArgs& args,
                        std::span<const obs::RunReport> runs,
                        obs::Json extra = obs::Json::object()) {
  if (args.json.empty()) return true;
  const obs::Json report =
      build_bench_report(bench_name, args, runs, std::move(extra));
  std::ofstream out(args.json);
  if (!out) {
    std::cerr << "cannot write json report: " << args.json << "\n";
    return false;
  }
  out << report.dump(2) << "\n";
  out.flush();
  if (!out) {
    std::cerr << "write failed for json report: " << args.json << "\n";
    return false;
  }
  std::cout << "(json report written to " << args.json << ")\n";
  return true;
}

}  // namespace cwatpg::bench
