// Figure 7 / Lemmas 4.2 and 4.3: cut-width of the ATPG circuit.
//
// The paper derives ordering A' for the ATPG miter of the s-a-1 fault on
// net f of the example circuit, achieving width 4 <= 2*3+2. This harness
// (a) reproduces that example via the transfer construction, and (b)
// sweeps the Lemma 4.2 inequality W(C_psi^ATPG, h_psi) <= 2 W(C,h) + 2
// over every collapsed fault of several circuit families, reporting the
// worst observed ratio.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/mla.hpp"
#include "fault/atpg_circuit.hpp"
#include "gen/hutton.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cwatpg;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Figure 7: cut-width of C_psi^ATPG (Lemma 4.2/4.3)",
                "paper Fig. 7 — transferred ordering A', W <= 2W+2");

  // --- the worked example: s-a-1 on net f of Figure 4(a) --------------------
  {
    const net::Network n = gen::fig4a_network();
    const net::NodeId f_net = *n.find("f");
    const fault::StuckAtFault psi{f_net, fault::StuckAtFault::kStem, true};
    const core::MlaResult m = core::mla(n);
    const fault::AtpgCircuit atpg = fault::build_atpg_circuit(n, psi);
    const auto h_psi = fault::transfer_ordering(n, atpg, m.order);
    const auto w = core::cut_width(n, m.order);
    const auto w_psi = core::cut_width(atpg.miter, h_psi);
    std::cout << "example: fault f s-a-1 on Fig. 4(a)\n"
              << "  W(C,h)           = " << w << "\n"
              << "  W(C_psi^ATPG,h') = " << w_psi << "  (paper: 4)\n"
              << "  bound 2W+2       = " << core::lemma42_rhs(w) << "\n\n";
  }

  // --- family sweep -----------------------------------------------------------
  Table t({"circuit", "faults", "W(C,h)", "max W(ATPG)", "bound 2W+2",
           "violations"});
  auto sweep = [&](const net::Network& n, const std::string& name) {
    const core::MlaResult m = core::mla(n);
    const auto w = core::cut_width(n, m.order);
    std::uint32_t worst = 0;
    std::size_t count = 0, violations = 0;
    const auto faults = fault::collapsed_fault_list(n);
    for (std::size_t i = 0; i < faults.size(); i += args.stride) {
      fault::AtpgCircuit atpg = [&]() -> fault::AtpgCircuit {
        return fault::build_atpg_circuit(n, faults[i]);
      }();
      const auto h_psi = fault::transfer_ordering(n, atpg, m.order);
      const auto w_psi = core::cut_width(atpg.miter, h_psi);
      worst = std::max(worst, w_psi);
      if (w_psi > core::lemma42_rhs(w)) ++violations;
      ++count;
    }
    t.add_row({name, cell(count), cell(w), cell(worst),
               cell(core::lemma42_rhs(w)), cell(violations)});
  };

  sweep(gen::c17(), "c17");
  sweep(gen::fig4a_network(), "fig4a");
  sweep(net::decompose(gen::ripple_carry_adder(
            std::max<std::size_t>(4, static_cast<std::size_t>(16 * args.scale)))),
        "adder");
  sweep(net::decompose(gen::parity_tree(
            std::max<std::size_t>(4, static_cast<std::size_t>(24 * args.scale)))),
        "parity");
  sweep(net::decompose(gen::comparator(
            std::max<std::size_t>(3, static_cast<std::size_t>(12 * args.scale)))),
        "comparator");
  {
    gen::HuttonParams p;
    p.num_gates = std::max<std::size_t>(30,
        static_cast<std::size_t>(150 * args.scale));
    p.num_inputs = 12;
    p.num_outputs = 6;
    p.seed = args.seed;
    sweep(net::decompose(gen::hutton_random(p)), "random");
  }
  t.print(std::cout);
  std::cout << "\nLemma 4.2 holds iff the violations column is all zero.\n";
  return 0;
}
