// Fault-parallel TEGUS scaling: wall-clock speedup at 1/2/4/8 workers.
//
// Runs the serial engine and run_atpg_parallel on the largest member of
// the ISCAS85-like suite in two configurations:
//   * figure-1 config (no random phase, no dropping): one independent SAT
//     instance per fault — the embarrassingly-parallel upper bound;
//   * dropping config (no random phase, simulation-based dropping on):
//     the speculative engine's hard shape, where the commit frontier and
//     fault dropping bound the achievable overlap.
// Every parallel run is checked byte-identical to the serial one (same
// statuses, same test_index attribution, same test patterns) — the
// determinism contract of fault/parallel_atpg.hpp — before any speedup is
// reported. Expect near-linear scaling in the figure-1 config up to the
// physical core count and a visibly flatter curve beyond it; a machine
// with fewer cores than workers cannot speed up past its core count.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_report.hpp"
#include "fault/parallel_atpg.hpp"
#include "fault/tegus.hpp"
#include "gen/suites.hpp"
#include "obs/report.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace {

using namespace cwatpg;

bool byte_identical(const fault::AtpgResult& a, const fault::AtpgResult& b) {
  if (a.outcomes.size() != b.outcomes.size()) return false;
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const fault::FaultOutcome& x = a.outcomes[i];
    const fault::FaultOutcome& y = b.outcomes[i];
    if (!(x.fault == y.fault) || x.status != y.status ||
        x.engine != y.engine || x.attempts != y.attempts ||
        x.test_index != y.test_index || x.sat_vars != y.sat_vars ||
        x.sat_clauses != y.sat_clauses)
      return false;
  }
  return a.tests == b.tests && a.num_detected == b.num_detected &&
         a.num_untestable == b.num_untestable &&
         a.num_aborted == b.num_aborted &&
         a.num_unreachable == b.num_unreachable &&
         a.num_undetermined == b.num_undetermined &&
         a.num_escalated == b.num_escalated &&
         a.interrupted == b.interrupted;
}

/// Returns false when a requested --csv= artifact could not be written.
bool run_config(const net::Network& circuit, const fault::AtpgOptions& base,
                const char* label, const std::string& csv,
                std::uint64_t seed, std::vector<obs::RunReport>& reports) {
  Timer serial_timer;
  const fault::AtpgResult serial = fault::run_atpg(circuit, base);
  const double serial_s = serial_timer.seconds();
  {
    obs::ReportOptions ropts;
    ropts.label = std::string(label) + "/serial";
    ropts.seed = seed;
    reports.push_back(obs::build_run_report(circuit, serial, ropts));
  }

  std::cout << label << ": " << serial.outcomes.size()
            << " collapsed faults, coverage "
            << cell(serial.fault_coverage() * 100, 2) << "%, serial "
            << cell(serial_s, 3) << " s\n";

  Table table({"threads", "seconds", "speedup", "efficiency", "dispatched",
               "wasted", "identical"});
  std::vector<double> xs, ys;
  for (std::size_t threads : {1, 2, 4, 8}) {
    fault::ParallelAtpgOptions popts;
    popts.base = base;
    popts.num_threads = threads;
    fault::ParallelStats stats;
    Timer timer;
    const fault::AtpgResult parallel =
        fault::run_atpg_parallel(circuit, popts, &stats);
    const double secs = timer.seconds();
    const bool identical = byte_identical(serial, parallel);
    const double speedup = secs > 0 ? serial_s / secs : 0.0;
    {
      obs::ReportOptions ropts;
      ropts.label =
          std::string(label) + "/threads=" + std::to_string(threads);
      ropts.engine = "parallel";
      ropts.threads = threads;
      ropts.seed = seed;
      ropts.parallel = &stats;
      reports.push_back(obs::build_run_report(circuit, parallel, ropts));
    }
    table.add_row({cell(threads), cell(secs, 3), cell(speedup, 2),
                   cell(speedup / static_cast<double>(threads), 2),
                   cell(stats.dispatched), cell(stats.wasted),
                   identical ? "yes" : "NO"});
    xs.push_back(static_cast<double>(threads));
    ys.push_back(speedup);
    if (!identical)
      std::cout << "ERROR: parallel run at " << threads
                << " threads diverged from the serial classification\n";
  }
  table.print(std::cout);
  std::cout << "\n";
  return bench::write_csv(csv, "threads", "speedup", xs, ys);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Parallel fault-parallel TEGUS scaling",
                "beyond the paper — wall-clock speedup of the 1999 flow");

  gen::SuiteOptions suite_opts;
  suite_opts.scale = args.scale;
  suite_opts.seed = args.seed;
  const std::vector<net::Network> suite = gen::iscas85_like_suite(suite_opts);
  std::size_t largest = 0;
  for (std::size_t i = 1; i < suite.size(); ++i)
    if (suite[i].gate_count() > suite[largest].gate_count()) largest = i;
  const net::Network& circuit = suite[largest];

  std::cout << "circuit: " << circuit.name() << " ("
            << circuit.gate_count() << " gates, "
            << circuit.inputs().size() << " PIs)\n"
            << "hardware threads: " << ThreadPool::default_thread_count()
            << " (speedup saturates at the physical core count)\n\n";

  // Figure-1 configuration: every fault is one independent SAT instance.
  // Test verification is off because it serializes one fault-simulation
  // per found test on the commit thread in BOTH engines — it is exercised
  // by the test suite, not a scaling axis.
  std::vector<obs::RunReport> reports;
  fault::AtpgOptions fig1;
  fig1.random_blocks = 0;
  fig1.drop_by_simulation = false;
  fig1.verify_tests = false;
  fig1.seed = args.seed;
  if (!run_config(circuit, fig1, "figure-1 config (independent instances)",
                  args.csv, args.seed, reports))
    return 1;

  // Dropping configuration: no random phase, so the SAT phase carries the
  // whole fault list and simulation-based dropping (plus speculative
  // waste at the commit frontier) is exercised for real. With the random
  // phase on, 256 patterns detect nearly every fault of these circuits and
  // the SAT phase degenerates to a handful of instances.
  fault::AtpgOptions dropping;
  dropping.random_blocks = 0;
  dropping.seed = args.seed;
  if (!run_config(circuit, dropping, "dropping config (SAT phase + drops)",
                  {}, args.seed, reports))
    return 1;
  if (!bench::emit_report("bench_parallel_scaling", args, reports))
    return 1;
  return 0;
}
