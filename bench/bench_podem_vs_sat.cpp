// Baseline comparison: structural ATPG (PODEM) vs SAT-based ATPG (TEGUS).
//
// The paper's subject is the SAT route; the pre-existing baseline is
// direct structural search. This harness runs both engines over the same
// collapsed fault lists and reports per-fault effort (PODEM backtracks vs
// CDCL conflicts), agreement on testability, runtimes, and abort rates —
// and shows that *both* are easy on low-cut-width circuits: the paper's
// topological explanation is engine-agnostic.
#include <iostream>

#include "bench_common.hpp"
#include "fault/podem.hpp"
#include "fault/tegus.hpp"
#include "gen/suites.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace cwatpg;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("PODEM vs SAT-based ATPG",
                "baseline comparison supporting the paper's Fig. 1 setting");

  gen::SuiteOptions opts;
  opts.scale = args.scale;
  opts.seed = args.seed;

  Table t({"circuit", "faults", "agree", "PODEM med bt", "PODEM p99 bt",
           "PODEM abort", "SAT med cf", "SAT p99 cf", "PODEM ms", "SAT ms"});

  std::size_t disagreements = 0;
  for (const net::Network& n : gen::iscas85_like_suite(opts)) {
    const auto faults = fault::collapsed_fault_list(n);
    std::vector<double> backtracks, conflicts;
    std::size_t agree = 0, total = 0, aborted = 0;
    double podem_seconds = 0, sat_seconds = 0;
    fault::PodemOptions podem_opts;
    podem_opts.max_backtracks = 20'000;

    for (std::size_t i = 0; i < faults.size(); i += args.stride) {
      ++total;
      Timer timer;
      const fault::PodemResult structural =
          fault::podem(n, faults[i], podem_opts);
      podem_seconds += timer.seconds();

      timer.reset();
      fault::Pattern test;
      const fault::FaultOutcome sat_based =
          fault::generate_test(n, faults[i], {}, test);
      sat_seconds += timer.seconds();

      backtracks.push_back(static_cast<double>(structural.backtracks));
      conflicts.push_back(
          static_cast<double>(sat_based.solver_stats.conflicts));
      if (structural.status == fault::PodemStatus::kAborted) {
        ++aborted;
      } else {
        const bool podem_testable =
            structural.status == fault::PodemStatus::kDetected;
        const bool sat_testable =
            sat_based.status == fault::FaultStatus::kDetected;
        if (podem_testable == sat_testable)
          ++agree;
        else
          ++disagreements;
      }
    }

    t.add_row({n.name(), cell(total),
               cell(agree) + "/" + cell(total - aborted),
               cell(summarize(backtracks).median, 0),
               cell(summarize(backtracks).p99, 0), cell(aborted),
               cell(summarize(conflicts).median, 0),
               cell(summarize(conflicts).p99, 0),
               cell(podem_seconds * 1e3, 0), cell(sat_seconds * 1e3, 0)});
  }
  t.print(std::cout);
  std::cout << "\ndisagreements on testability (excluding aborts): "
            << disagreements << " (must be 0 — both engines are exact)\n";
  std::cout << "\nreading: on these low-cut-width circuits both engines "
               "finish with tiny search effort; the SAT route additionally "
               "benefits from learning on the rare hard (redundant) "
               "faults. The easiness is a property of the circuits, not of "
               "one algorithm.\n";
  return 0;
}
