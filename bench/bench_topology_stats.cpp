// Topological statistics of the synthetic suites (substitution audit).
//
// DESIGN.md replaces ISCAS85/MCNC91 with synthetic suites on the claim of
// topological resemblance. This harness prints the statistics that claim
// is about — published reference ranges for the real decomposed suites
// (fanin <= 3 by construction; fanout-1 fractions around 0.6-0.8; modest
// reconvergence; depths tens of levels) next to the measured values — and
// is also the tool for §5.2.3's "parameterized to topologically resemble"
// step: the Hutton generator's knobs were tuned against this table.
#include <iostream>

#include "bench_common.hpp"
#include "gen/suites.hpp"
#include "netlist/topo_stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cwatpg;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Topology statistics of the synthetic suites",
                "supports DESIGN.md substitution + §5.2.3 parameterization");

  gen::SuiteOptions opts;
  opts.scale = args.scale;
  opts.seed = args.seed;

  for (const bool iscas : {true, false}) {
    std::cout << (iscas ? "ISCAS85-like suite:" : "MCNC91-like suite:")
              << "\n";
    Table t({"circuit", "nodes", "PI", "PO", "depth", "fanin", "fanout",
             "fo=1 frac", "reconv frac", "lvl span"});
    const auto suite =
        iscas ? gen::iscas85_like_suite(opts) : gen::mcnc_like_suite(opts);
    double reconv_sum = 0, fo1_sum = 0;
    for (const net::Network& n : suite) {
      const net::TopoStats s = net::topo_stats(n);
      reconv_sum += s.reconvergent_stem_fraction;
      fo1_sum += s.fanout1_fraction;
      t.add_row({n.name(), cell(s.nodes), cell(s.inputs), cell(s.outputs),
                 cell(s.depth), cell(s.mean_fanin, 2),
                 cell(s.mean_fanout, 2), cell(s.fanout1_fraction, 2),
                 cell(s.reconvergent_stem_fraction, 2),
                 cell(s.mean_level_span, 2)});
    }
    t.print(std::cout);
    std::cout << "suite means: fanout-1 fraction "
              << cell(fo1_sum / static_cast<double>(suite.size()), 2)
              << ", reconvergent-stem fraction "
              << cell(reconv_sum / static_cast<double>(suite.size()), 2)
              << "\n\n";
  }

  std::cout << "reference (real decomposed suites, from the literature): "
               "fanin <= 3, mean fanout ~1.2-1.8, fanout-1 fraction "
               "~0.6-0.85, depth growing slowly with size, reconvergence "
               "common but LOCAL — note the small mean level spans: stems "
               "reconverge within a few levels (full-adder diamonds, mux "
               "cells), which is exactly the k-bounded-style locality the "
               "paper's log-bounded-width property generalizes.\n";
  return 0;
}
