// Shared implementation of the Figure 8 experiment (§5.2.2).
//
// For every (sampled) fault site of every suite circuit: extract
// C_psi^sub (TFI of the TFO of the site), estimate its cut-width by the
// recursive-MLA procedure, and record (|C_psi^sub|, width). The harness
// prints per-circuit summaries, the size-bucketed scatter, and the
// least-squares comparison of linear / logarithmic / power fits — the
// paper's model-selection step, where logarithmic wins.
#pragma once

#include <iostream>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "core/mla.hpp"
#include "fault/fault.hpp"
#include "netlist/cone.hpp"
#include "util/curvefit.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace cwatpg::bench {

/// Returns false when a requested --csv= artifact could not be written
/// (callers propagate this as a nonzero exit status).
inline bool run_fig8(const std::vector<net::Network>& suite,
                     const std::string& suite_name, std::size_t stride,
                     const std::string& csv_path = {}) {
  core::MlaConfig mla_cfg;
  mla_cfg.partition.fm.num_starts = 2;
  mla_cfg.partition.fm.max_passes = 8;

  std::vector<double> sizes, widths;
  Table per_circuit({"circuit", "nodes", "sites", "median |sub|",
                     "median W", "max W", "sec"});

  for (const net::Network& n : suite) {
    Timer timer;
    // One data point per distinct fault site (s-a-0/1 share C_psi^sub, so
    // the paper's two points per site have identical coordinates; we keep
    // one per site and weigh nothing twice).
    std::vector<bool> seen(n.node_count(), false);
    std::vector<net::NodeId> sites;
    for (const auto& f : fault::all_faults(n)) {
      const net::NodeId root = fault::fault_cone_root(f);
      if (!seen[root]) {
        seen[root] = true;
        sites.push_back(root);
      }
    }
    std::vector<double> circuit_sizes, circuit_widths;
    for (std::size_t i = 0; i < sites.size(); i += stride) {
      try {
        const net::SubCircuit cone = net::fault_cone(n, sites[i]);
        const core::MlaResult r = core::mla(cone.circuit, mla_cfg);
        circuit_sizes.push_back(
            static_cast<double>(cone.circuit.node_count()));
        circuit_widths.push_back(static_cast<double>(r.width));
      } catch (const std::invalid_argument&) {
        // site reaches no output: excluded, as in the paper
      }
    }
    sizes.insert(sizes.end(), circuit_sizes.begin(), circuit_sizes.end());
    widths.insert(widths.end(), circuit_widths.begin(),
                  circuit_widths.end());
    const Summary ss = summarize(circuit_sizes);
    const Summary ws = summarize(circuit_widths);
    per_circuit.add_row({n.name(), cell(n.node_count()),
                         cell(circuit_sizes.size()), cell(ss.median, 0),
                         cell(ws.median, 1), cell(ws.max, 0),
                         cell(timer.seconds(), 1)});
  }

  per_circuit.print(std::cout);
  std::cout << "\n"
            << suite_name << ": " << sizes.size()
            << " datapoints (paper: " << (suite_name[0] == 'M' ? 11315 : 7389)
            << " on the real suite)\n\n";

  Table scatter({"mean |C_psi_sub|", "mean W", "max W", "points"});
  for (const Bucket& b : bucketize(sizes, widths, 12))
    scatter.add_row(
        {cell(b.x_mean, 0), cell(b.y_mean, 2), cell(b.y_max, 0),
         cell(b.count)});
  scatter.print(std::cout);

  std::cout << "\nleast-squares fits (best first, scored in y space):\n";
  for (const Fit& f : fit_all(sizes, widths))
    std::cout << "  " << to_string(f.model) << ": " << f.describe()
              << "  (RSS " << cell(f.rss, 1) << ", R2 "
              << cell(f.r_squared, 4) << ")\n";
  std::cout << "paper: the logarithmic family gives the best fit — "
               "cut-width grows ~log(size), so these circuits are "
               "log-bounded-width and easily testable.\n";
  return write_csv(csv_path, "cone_size", "cut_width", sizes, widths);
}

}  // namespace cwatpg::bench
