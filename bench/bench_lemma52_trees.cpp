// Lemma 5.2 and Theorem 5.1: trees and k-bounded circuits are
// log-bounded-width.
//
// Lemma 5.2: a k-ary tree admits an ordering with W <= (k-1) log2(n); we
// build the ordering constructively and measure. Theorem 5.1: k-bounded
// circuits are log-bounded-width; we order generator-witnessed k-bounded
// circuits (ripple adders, cellular arrays, random block forests) by the
// block-tree rule and show width growing ~log while size grows
// geometrically.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/kbounded.hpp"
#include "gen/kbounded_gen.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cwatpg;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Lemma 5.2 / Theorem 5.1: trees and k-bounded circuits",
                "paper §5.1");

  std::cout << "Lemma 5.2 — k-ary trees, constructed ordering:\n";
  Table trees({"arity", "leaves", "n", "W(T,h)", "(k-1)log2(n)", "holds"});
  for (std::size_t arity : {2u, 3u, 4u, 5u}) {
    for (std::size_t leaves :
         {64u, 256u, 1024u,
          static_cast<unsigned>(4096 * std::max(args.scale, 0.1))}) {
      const net::Network t = gen::and_or_tree(leaves, arity);
      const auto order = core::tree_ordering(t);
      const std::uint32_t w = core::cut_width(t, order);
      const double rhs = core::lemma52_rhs(arity, t.node_count());
      trees.add_row({cell(arity), cell(leaves), cell(t.node_count()),
                     cell(w), cell(rhs, 1), w <= rhs + 1 ? "yes" : "NO"});
    }
  }
  trees.print(std::cout);

  std::cout << "\nRandom trees (mixed arity <= 3):\n";
  Table rtrees({"gates", "n", "W(T,h)", "2*log2(n)", "holds"});
  for (std::size_t gates : {50u, 200u, 800u, 3200u}) {
    const net::Network t = gen::random_tree(
        static_cast<std::size_t>(gates * std::max(args.scale, 0.1) * 3), 3,
        args.seed);
    const auto order = core::tree_ordering(t);
    const std::uint32_t w = core::cut_width(t, order);
    const double rhs = core::lemma52_rhs(3, t.node_count());
    rtrees.add_row({cell(gates), cell(t.node_count()), cell(w),
                    cell(rhs, 1), w <= rhs + 1 ? "yes" : "NO"});
  }
  rtrees.print(std::cout);

  std::cout << "\nTheorem 5.1 — k-bounded circuits under the block-tree "
               "ordering:\n";
  Table kb({"family", "n", "k", "W", "W/log2(n)"});
  auto measure = [&](const gen::KBoundedInstance& inst,
                     const std::string& name) {
    const core::BlockPartition part{inst.block_of, inst.num_blocks};
    const auto order = core::kbounded_ordering(inst.circuit, part, inst.k);
    const std::uint32_t w = core::cut_width(inst.circuit, order);
    const double logn =
        std::log2(static_cast<double>(inst.circuit.node_count()));
    kb.add_row({name, cell(inst.circuit.node_count()), cell(inst.k),
                cell(w), cell(w / logn, 2)});
  };
  for (std::size_t bits : {8u, 32u, 128u, 512u})
    measure(gen::kbounded_adder(static_cast<std::size_t>(
                bits * std::max(args.scale, 0.1) * 3)),
            "adder" + std::to_string(bits));
  for (std::size_t cells : {16u, 64u, 256u})
    measure(gen::kbounded_cellular(static_cast<std::size_t>(
                cells * std::max(args.scale, 0.1) * 3)),
            "cell" + std::to_string(cells));
  for (std::size_t blocks : {32u, 128u, 512u})
    measure(gen::kbounded_random(
                static_cast<std::size_t>(blocks * std::max(args.scale, 0.1) * 3),
                5, 3, args.seed),
            "randkb" + std::to_string(blocks));
  kb.print(std::cout);

  std::cout << "\npaper: W/log2(n) flat across geometric size growth — "
               "k-bounded subsumed by log-bounded-width (Thm 5.1), which "
               "also covers non-local reconvergence the k-bounded class "
               "excludes.\n";
  return 0;
}
