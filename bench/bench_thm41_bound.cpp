// Theorem 4.1: measured backtracking-tree size vs the 2^(2 k_fo W) bound.
//
// The theorem bounds Algorithm 1's tree by O(n * 2^(2*k_fo*W(C,h))). This
// harness runs Algorithm 1 on CIRCUIT-SAT instances across families, with
// MLA/tree orderings, and reports measured log2(tree size) against the
// bound — both that the bound holds and by how much it overshoots (the
// bound is loose; the point is polynomiality when W ~ log n).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/kbounded.hpp"
#include "core/mla.hpp"
#include "gen/hutton.hpp"
#include "gen/kbounded_gen.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "sat/cache_sat.hpp"
#include "sat/encode.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cwatpg;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Theorem 4.1: tree size vs 2^(2 k_fo W) bound",
                "paper Thm 4.1 / Eq. 4.5");

  Table t({"circuit", "n", "k_fo", "W(C,h)", "log2(nodes)", "log2(bound)",
           "holds"});

  auto measure = [&](const net::Network& n, const core::Ordering& h,
                     const std::string& name) {
    const std::uint32_t w = core::cut_width(n, h);
    const sat::Cnf f = sat::encode_circuit_sat(n);
    const std::vector<sat::Var> order(h.begin(), h.end());
    sat::CacheSatConfig cfg;
    cfg.early_sat = false;  // the theorem models the full tree
    cfg.max_nodes = 50'000'000;
    const auto r = sat::cache_sat(f, order, cfg);
    const double measured =
        std::log2(static_cast<double>(std::max<std::uint64_t>(
            r.stats.nodes, 1)));
    const double bound =
        core::theorem41_log2_bound(n.node_count(), n.max_fanout(), w);
    t.add_row({name, cell(n.node_count()), cell(n.max_fanout()), cell(w),
               cell(measured, 1), cell(bound, 1),
               measured <= bound ? "yes" : "NO"});
  };

  const auto s = [&](double v) {
    return std::max<std::size_t>(4, static_cast<std::size_t>(v * args.scale));
  };

  measure(gen::fig4a_network(),
          core::mla(gen::fig4a_network()).order, "fig4a");
  measure(gen::c17(), core::mla(gen::c17()).order, "c17");
  for (std::size_t leaves : {16u, 32u, 64u}) {
    const net::Network tree = gen::and_or_tree(leaves, 2);
    measure(tree, core::tree_ordering(tree),
            "tree" + std::to_string(leaves));
  }
  {
    const net::Network n = net::decompose(gen::ripple_carry_adder(s(10)));
    measure(n, core::mla(n).order, "adder");
  }
  {
    const auto inst = gen::kbounded_adder(s(8));
    measure(inst.circuit,
            core::kbounded_ordering(
                inst.circuit,
                core::BlockPartition{inst.block_of, inst.num_blocks},
                inst.k),
            "kb-adder (Thm 5.1 order)");
  }
  {
    gen::HuttonParams p;
    p.num_gates = s(60);
    p.num_inputs = 10;
    p.num_outputs = 4;
    p.seed = args.seed;
    const net::Network n = net::decompose(gen::hutton_random(p));
    measure(n, core::mla(n).order, "random");
  }
  t.print(std::cout);

  std::cout << "\nInterpretation: log2(nodes) <= log2(n) + 2*k_fo*W always; "
               "when W = O(log n) the bound — and hence the runtime — is "
               "polynomial in n (Lemma 5.1).\n";
  return 0;
}
