// Ablation: the three conflict-reduction mechanisms of §4.1.
//
// "Most popular backtracking based algorithms ... provide some feature to
// reduce conflicts": TEGUS preprocesses *global implications*, GRASP
// *learns conflict-induced clauses*, and the paper models both with the
// *sub-formula cache* of Algorithm 1. This harness runs all three on the
// same CIRCUIT-SAT instances (SAT and forced-UNSAT variants):
//   backtracking alone | + static implications | + cache | CDCL (learning)
// and reports search effort, showing they attack the same redundancy.
#include <iostream>

#include "bench_common.hpp"
#include "core/mla.hpp"
#include "gen/hutton.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "sat/cache_sat.hpp"
#include "sat/encode.hpp"
#include "sat/implications.hpp"
#include "sat/solver.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cwatpg;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Ablation: conflict-reduction mechanisms (§4.1)",
                "TEGUS implications vs GRASP learning vs Algorithm 1 cache");

  const auto s = [&](double v) {
    return std::max<std::size_t>(4, static_cast<std::size_t>(v * args.scale));
  };

  std::vector<std::pair<std::string, net::Network>> circuits;
  circuits.emplace_back("adder", net::decompose(gen::ripple_carry_adder(s(8))));
  circuits.emplace_back("parity", net::decompose(gen::parity_tree(s(14))));
  circuits.emplace_back("tree", gen::and_or_tree(s(48), 2));
  {
    gen::HuttonParams p;
    p.num_gates = s(60);
    p.num_inputs = 10;
    p.num_outputs = 4;
    p.seed = args.seed;
    circuits.emplace_back("random", net::decompose(gen::hutton_random(p)));
  }

  Table t({"instance", "plain nodes", "+implications", "+cache", "both",
           "CDCL conflicts"});
  for (const auto& [name, n] : circuits) {
    const core::MlaResult m = core::mla(n);
    const std::vector<sat::Var> order(m.order.begin(), m.order.end());
    for (const bool unsat_variant : {false, true}) {
      sat::Cnf f = sat::encode_circuit_sat(n);
      if (unsat_variant)
        for (net::NodeId po : n.outputs()) f.add_clause({sat::neg(po)});
      sat::ImplicationStats istats;
      const sat::Cnf aug = sat::add_static_implications(f, &istats);

      auto run = [&](const sat::Cnf& formula, bool cache) {
        sat::CacheSatConfig cfg;
        cfg.use_cache = cache;
        cfg.early_sat = false;
        cfg.max_nodes = 30'000'000;
        const auto r = sat::cache_sat(formula, order, cfg);
        return r.status == sat::SolveStatus::kUnknown
                   ? std::string(">3e7")
                   : cell(r.stats.nodes);
      };
      const auto cdcl = sat::solve_cnf(f);

      t.add_row({name + (unsat_variant ? " (unsat)" : " (sat)"),
                 run(f, false), run(aug, false), run(f, true),
                 run(aug, true), cell(cdcl.stats.conflicts)});
    }
  }
  t.print(std::cout);
  std::cout << "\nreading: implications and the cache both prune repeated "
               "unsatisfiable subspaces; combined they compound. CDCL's "
               "conflict clauses achieve the same end dynamically — the "
               "paper's cache is a faithful *model* of all of these.\n";
  return 0;
}
