// Figure 5 / §4.1: caching-based backtracking on Formula 4.1.
//
// Reproduces the paper's worked example — the backtracking tree for the
// CIRCUIT-SAT formula of Figure 4(a) under ordering A — and quantifies the
// pruning the sub-formula cache provides, including the concrete prune the
// paper narrates (the residual after b=0,c=0,f=0,a=1,h=0 repeating the one
// after b=0,c=0,f=0,a=0,h=0). Then sweeps the same measurement across
// circuit families to show caching's effect is generic.
#include <iostream>

#include "bench_common.hpp"
#include "core/cutwidth.hpp"
#include "core/mla.hpp"
#include "gen/hutton.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "sat/cache_sat.hpp"
#include "sat/encode.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cwatpg;
  bench::parse_args(argc, argv);
  bench::banner("Figure 5: caching-based backtracking",
                "paper Fig. 5 + the §4.1 prune example on Formula 4.1");

  // --- the worked example ---------------------------------------------------
  const sat::Cnf f41 = gen::formula41();
  const auto order_a = gen::fig4a_ordering_a();
  const std::vector<sat::Var> vars_a(order_a.begin(), order_a.end());

  Table example({"configuration", "tree nodes", "cache hits",
                 "cache insertions", "result"});
  for (const bool use_cache : {true, false}) {
    sat::CacheSatConfig cfg;
    cfg.use_cache = use_cache;
    cfg.early_sat = false;  // the paper draws the full tree
    const auto r = sat::cache_sat(f41, vars_a, cfg);
    example.add_row({use_cache ? "cache (Algorithm 1)" : "plain backtracking",
                     cell(r.stats.nodes), cell(r.stats.cache_hits),
                     cell(r.stats.cache_insertions),
                     r.status == sat::SolveStatus::kSat ? "SAT" : "UNSAT"});
  }
  std::cout << "Formula 4.1 under ordering A (b,c,f,a,h,d,e,g,i):\n";
  example.print(std::cout);
  std::cout << "\n";

  // --- sweep across families -------------------------------------------------
  std::cout << "Tree-size reduction from caching (early-sat off, MLA "
               "orderings):\n";
  Table sweep({"circuit", "vars", "W(C,h)", "no-cache nodes", "cache nodes",
               "reduction", "hits"});

  auto measure = [&](const net::Network& n, const std::string& name) {
    const core::MlaResult m = core::mla(n);
    const std::vector<sat::Var> order(m.order.begin(), m.order.end());
    // Two variants: the plain CIRCUIT-SAT instance (usually SAT, found
    // fast) and an UNSAT twin with every output additionally forced to 0 —
    // the search must then certify the whole space, which is where the
    // sub-formula cache earns its keep.
    for (const bool unsat_variant : {false, true}) {
      sat::Cnf f = sat::encode_circuit_sat(n);
      if (unsat_variant)
        for (net::NodeId po : n.outputs()) f.add_clause({sat::neg(po)});
      sat::CacheSatConfig with, without;
      with.early_sat = without.early_sat = false;
      without.use_cache = false;
      without.max_nodes = 40'000'000;
      const auto cached = sat::cache_sat(f, order, with);
      const auto plain = sat::cache_sat(f, order, without);
      const double reduction =
          plain.stats.nodes > 0
              ? static_cast<double>(plain.stats.nodes) /
                    static_cast<double>(std::max<std::uint64_t>(
                        cached.stats.nodes, 1))
              : 1.0;
      sweep.add_row({name + (unsat_variant ? " (unsat)" : " (sat)"),
                     cell(f.num_vars()), cell(m.width),
                     cell(plain.stats.nodes), cell(cached.stats.nodes),
                     cell(reduction, 1) + "x",
                     cell(cached.stats.cache_hits)});
    }
  };

  measure(gen::fig4a_network(), "fig4a");
  measure(gen::c17(), "c17");
  measure(gen::and_or_tree(20, 2), "tree20");
  measure(net::decompose(gen::ripple_carry_adder(3)), "add3");
  measure(net::decompose(gen::parity_tree(6)), "par6");
  {
    gen::HuttonParams p;
    p.num_gates = 24;
    p.num_inputs = 7;
    p.num_outputs = 3;
    p.seed = 5;
    measure(net::decompose(gen::hutton_random(p)), "rand24");
  }
  sweep.print(std::cout);
  std::cout << "\npaper: caching prunes repeated unsatisfiable sub-formulas; "
               "the reduction grows with circuit size.\n";
  return 0;
}
