// Ablation: how much does the MLA machinery matter to the cut-width
// estimate?
//
// The paper's Figure 8 numbers are *estimates* produced by recursive
// min-cut bisection (hMETIS) + exact leaf MLA. This ablation compares,
// across circuits, the width estimates obtained from: multilevel FM
// bisection (the default), flat FM (no coarsening), plain topological
// order, and the best of random orders — quantifying how much of the
// "circuits have small cut-width" observation depends on arrangement
// quality.
#include <iostream>

#include "bench_common.hpp"
#include "core/mla.hpp"
#include "gen/hutton.hpp"
#include "gen/structured.hpp"
#include "gen/suites.hpp"
#include "netlist/decompose.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace cwatpg;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Ablation: arrangement quality vs width estimate",
                "supports §5.2.1's choice of recursive-bisection MLA");

  gen::SuiteOptions opts;
  opts.scale = args.scale * 0.7;
  opts.seed = args.seed;
  std::vector<net::Network> circuits = gen::iscas85_like_suite(opts);

  Table t({"circuit", "nodes", "W multilevel", "W no-refine", "W flat-FM",
           "W topo", "W best-random", "sec"});
  for (const net::Network& n : circuits) {
    Timer timer;
    // Default: multilevel bisection + adjacent-swap refinement.
    const core::MlaResult ml = core::mla(n);

    // Without the refinement post-pass.
    core::MlaConfig no_refine_cfg;
    no_refine_cfg.refine_passes = 0;
    const core::MlaResult no_refine = core::mla(n, no_refine_cfg);

    // Flat FM: disable coarsening by setting the threshold huge.
    core::MlaConfig flat_cfg;
    flat_cfg.partition.coarsest_size = 1u << 30;
    const core::MlaResult flat = core::mla(n, flat_cfg);

    const std::uint32_t topo =
        core::cut_width(n, core::identity_ordering(n.node_count()));

    Rng rng(args.seed);
    std::uint32_t best_random = static_cast<std::uint32_t>(-1);
    for (int trial = 0; trial < 5; ++trial) {
      core::Ordering rnd = core::identity_ordering(n.node_count());
      for (std::size_t i = rnd.size(); i > 1; --i)
        std::swap(rnd[i - 1], rnd[rng.below(i)]);
      best_random = std::min(best_random, core::cut_width(n, rnd));
    }

    t.add_row({n.name(), cell(n.node_count()), cell(ml.width),
               cell(no_refine.width), cell(flat.width), cell(topo),
               cell(best_random), cell(timer.seconds(), 1)});
  }
  t.print(std::cout);
  std::cout << "\nreading: random orders give near-linear widths — the "
               "small-cut-width phenomenon is a property of circuits *under "
               "good arrangements*, which the multilevel MLA finds and "
               "naive orders do not.\n";
  return 0;
}
